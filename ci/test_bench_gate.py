"""Unit tests for ci/bench_gate.py (run with: python3 -m unittest discover ci)."""

import copy
import unittest

import bench_gate
from bench_gate import GateError


def pr2_cell(graph="g", algo="a", runtime="sequential", wall_ms=100.0,
             rounds=10, messages=1000, n=2500, valid=True):
    return {
        "graph": graph, "algo": algo, "runtime": runtime, "wall_ms": wall_ms,
        "rounds": rounds, "messages": messages, "messages_per_round": 100.0,
        "messages_per_sec": 10000.0, "phases": [], "palette": 5,
        "valid": valid, "n": n, "delta": 4, "work_estimate": 10000,
    }


def pr2_doc():
    """12 shared cells: 3 graphs x 2 algos x 2 runtimes, plus auto."""
    cells = []
    for g in ("g1", "g2", "g3"):
        for a in ("a1", "a2"):
            cells.append(pr2_cell(g, a, "sequential", wall_ms=100.0))
            cells.append(pr2_cell(g, a, "parallel-4", wall_ms=150.0))
            cells.append(pr2_cell(g, a, "auto", wall_ms=100.0))
    return {"bench": "BENCH_PR2", "cells": cells}


def pr3_cell(family="gnp_capped", n=10_000, runtime="sequential",
             mode="coloring", build_ms=50.0, rounds=100, messages=5000,
             valid=True):
    return {
        "family": family, "graph": f"{family}-n{n}", "n": n, "m": 6 * n,
        "delta": 16, "mode": mode, "algo": "det-small(T1.2)" if mode == "coloring" else "-",
        "runtime": runtime, "build_ms": build_ms, "wall_ms": 500.0,
        "rounds": rounds, "messages": messages, "messages_per_sec": 1e6,
        "palette": 250, "work_estimate": 13 * n, "valid": valid,
        "peak_rss_mb": 100.0,
    }


def pr3_doc():
    cells = []
    for family in sorted(bench_gate.PR3_FAMILIES):
        for n in (10_000, 100_000):
            for runtime in ("sequential", "parallel-4", "auto"):
                cells.append(pr3_cell(family, n, runtime))
        cells.append(pr3_cell(family, 1_000_000, "-", mode="build",
                              rounds=0, messages=0, build_ms=2000.0))
    return {"bench": "BENCH_PR3", "cells": cells}


class Pr2GateTests(unittest.TestCase):
    def test_valid_doc_passes(self):
        doc = pr2_doc()
        bench_gate.validate_pr2(doc, copy.deepcopy(doc), log=lambda *_: None)

    def test_invalid_coloring_fails(self):
        doc = pr2_doc()
        doc["cells"][0]["valid"] = False
        with self.assertRaisesRegex(GateError, "invalid coloring"):
            bench_gate.check_pr2_shape(doc)

    def test_missing_key_fails(self):
        doc = pr2_doc()
        del doc["cells"][0]["rounds"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.check_pr2_shape(doc)

    def test_duplicate_cells_fail(self):
        doc = pr2_doc()
        doc["cells"].append(copy.deepcopy(doc["cells"][0]))
        with self.assertRaisesRegex(GateError, "duplicate"):
            bench_gate.check_pr2_shape(doc)

    def test_rounds_drift_fails(self):
        base, new = pr2_doc(), pr2_doc()
        new["cells"][0]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "rounds drifted"):
            bench_gate.check_shared_cells_bit_exact(base, new)

    def test_message_drift_fails(self):
        base, new = pr2_doc(), pr2_doc()
        new["cells"][1]["messages"] += 7
        with self.assertRaisesRegex(GateError, "messages drifted"):
            bench_gate.check_shared_cells_bit_exact(base, new)

    def test_too_few_shared_cells_fails(self):
        base = pr2_doc()
        new = {"bench": "BENCH_PR2", "cells": base["cells"][:4]}
        with self.assertRaisesRegex(GateError, "shared cells"):
            bench_gate.check_shared_cells_bit_exact(base, new)

    def test_overhead_regression_fails(self):
        base, new = pr2_doc(), pr2_doc()
        for c in new["cells"]:
            if c["runtime"] == "parallel-4":
                c["wall_ms"] = 400.0  # 1.5x -> 4x: relative and absolute trip
        with self.assertRaisesRegex(GateError, "overhead"):
            bench_gate.check_overhead_ratios(base, new, log=lambda *_: None)

    def test_noise_floor_exempts_fast_cells(self):
        base, new = pr2_doc(), pr2_doc()
        for c in new["cells"]:
            c["wall_ms"] = c["wall_ms"] / 100.0  # everything under 20 ms
            if c["runtime"] == "parallel-4":
                c["wall_ms"] *= 10  # terrible ratio, but in the noise
        bench_gate.check_overhead_ratios(base, new, log=lambda *_: None)


class Pr3GateTests(unittest.TestCase):
    def test_valid_doc_passes(self):
        bench_gate.validate_pr3(pr3_doc(), log=lambda *_: None)

    def test_wrong_bench_tag_fails(self):
        doc = pr3_doc()
        doc["bench"] = "BENCH_PR2"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR3"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_invalid_cell_fails(self):
        doc = pr3_doc()
        doc["cells"][3]["valid"] = False
        with self.assertRaisesRegex(GateError, "invalid cell"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_missing_column_fails(self):
        doc = pr3_doc()
        del doc["cells"][0]["peak_rss_mb"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_too_few_coloring_cells_fails(self):
        doc = pr3_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if c["mode"] == "build" or c["runtime"] == "sequential"]
        with self.assertRaisesRegex(GateError, ">= 9"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_missing_big_coloring_fails(self):
        doc = pr3_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if c["mode"] == "build" or c["n"] < 100_000]
        with self.assertRaisesRegex(GateError, "n >= 10\\^5"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_zero_round_coloring_fails(self):
        doc = pr3_doc()
        coloring = [c for c in doc["cells"] if c["mode"] == "coloring"]
        coloring[0]["rounds"] = 0
        with self.assertRaisesRegex(GateError, "0 rounds"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_missing_family_fails(self):
        doc = pr3_doc()
        doc["cells"] = [c for c in doc["cells"] if c["family"] != "grid"]
        with self.assertRaisesRegex(GateError, "missing families"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_build_budget_violation_fails(self):
        doc = pr3_doc()
        for c in doc["cells"]:
            if c["mode"] == "build":
                c["build_ms"] = 60_000.0
        with self.assertRaisesRegex(GateError, "budget"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_missing_huge_build_family_fails(self):
        doc = pr3_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if not (c["mode"] == "build" and c["family"] == "grid")]
        with self.assertRaisesRegex(GateError, "build cells missing"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)


def pr4_cell(family="gnp_capped", graph="gnp_capped-n100000", n=100_000,
             algo="det-small(T1.2)", runtime="sequential", wall_ms=15_000.0,
             rounds=4654, messages=17_060_200, allocs_per_round=350.0,
             valid=True, peak_rss_mb=1000.0):
    return {
        "family": family, "graph": graph, "n": n, "m": 6 * n, "delta": 16,
        "algo": algo, "runtime": runtime, "build_ms": 150.0,
        "wall_ms": wall_ms, "rounds": rounds, "messages": messages,
        "messages_per_sec": 1e6, "allocs_per_round": allocs_per_round,
        "palette": 257, "valid": valid, "peak_rss_mb": peak_rss_mb,
    }


def pr4_doc():
    return {
        "bench": "BENCH_PR4",
        "pre_change": {"allocs_per_round_det_1e5": 3902.5,
                       "rand_gnp_1e5_wall_ms": 185_900.0},
        "cells": [
            pr4_cell(),
            pr4_cell(algo="rand-improved(T1.1)", wall_ms=1200.0, rounds=213,
                     messages=5_405_868, allocs_per_round=2347.5),
            pr4_cell(family="random_regular",
                     graph="random_regular-d16-n100000-stressed-c0-1",
                     algo="rand-improved(T1.1)", wall_ms=58_000.0,
                     rounds=5317, messages=18_742_572,
                     allocs_per_round=3561.5, peak_rss_mb=8000.0),
            pr4_cell(family="random_regular",
                     graph="random_regular-d8-n1000000", n=1_000_000,
                     wall_ms=60_000.0, rounds=1170, messages=114_000_000,
                     allocs_per_round=400.0),
        ],
    }


class Pr4GateTests(unittest.TestCase):
    def test_valid_doc_passes(self):
        doc = pr4_doc()
        bench_gate.validate_pr4(copy.deepcopy(doc), doc, log=lambda *_: None)

    def test_wrong_bench_tag_fails(self):
        doc = pr4_doc()
        doc["bench"] = "BENCH_PR3"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR4"):
            bench_gate.check_pr4_shape(doc)

    def test_missing_pre_change_fails(self):
        doc = pr4_doc()
        del doc["pre_change"]["allocs_per_round_det_1e5"]
        with self.assertRaisesRegex(GateError, "pre_change"):
            bench_gate.check_pr4_shape(doc)

    def test_missing_huge_cell_fails(self):
        doc = pr4_doc()
        doc["cells"] = [c for c in doc["cells"] if c["n"] < 1_000_000]
        with self.assertRaisesRegex(GateError, "10\\^6"):
            bench_gate.check_pr4_shape(doc)

    def test_missing_rand_cells_fail(self):
        doc = pr4_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if not c["algo"].startswith("rand-improved")]
        with self.assertRaisesRegex(GateError, "rand-improved"):
            bench_gate.check_pr4_shape(doc)

    def test_alloc_reduction_acceptance(self):
        doc = pr4_doc()
        doc["cells"][0]["allocs_per_round"] = 3902.5 / 5  # only 5x better
        with self.assertRaisesRegex(GateError, "allocs/round"):
            bench_gate.check_pr4_acceptance(doc)

    def test_unmeasured_allocs_fail_acceptance(self):
        doc = pr4_doc()
        doc["cells"][0]["allocs_per_round"] = -1.0
        with self.assertRaisesRegex(GateError, "count-allocs"):
            bench_gate.check_pr4_acceptance(doc)

    def test_rand_speedup_acceptance(self):
        doc = pr4_doc()
        doc["cells"][1]["wall_ms"] = 100_000.0  # < 3x faster than 185.9 s
        with self.assertRaisesRegex(GateError, "rand wall"):
            bench_gate.check_pr4_acceptance(doc)

    def test_alloc_regression_fails(self):
        rec, new = pr4_doc(), pr4_doc()
        new["cells"][0]["allocs_per_round"] = 350.0 * 1.5
        with self.assertRaisesRegex(GateError, "regressed"):
            bench_gate.check_allocs_per_round(rec, new, log=lambda *_: None)

    def test_alloc_within_tolerance_passes(self):
        rec, new = pr4_doc(), pr4_doc()
        new["cells"][0]["allocs_per_round"] = 350.0 * 1.05
        bench_gate.check_allocs_per_round(rec, new, log=lambda *_: None)

    def test_fresh_run_without_counting_fails_diff(self):
        rec, new = pr4_doc(), pr4_doc()
        for c in new["cells"]:
            c["allocs_per_round"] = -1.0
        with self.assertRaisesRegex(GateError, "count-allocs"):
            bench_gate.check_allocs_per_round(rec, new, log=lambda *_: None)

    def test_rounds_drift_fails_diff(self):
        rec, new = pr4_doc(), pr4_doc()
        new["cells"][2]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "rounds drifted"):
            bench_gate.validate_pr4(new, rec, log=lambda *_: None)


def pr5_cell(graph=bench_gate.PR5_STRESSED_GRAPH, n=100_000, delta=16,
             rounds=5317, messages=18_742_572, peak_rss_mb=1500.0,
             rss_cumulative=False, valid=True):
    return {
        "family": "random_regular", "graph": graph, "n": n, "m": 8 * n,
        "delta": delta, "algo": "rand-improved(T1.1)",
        "runtime": "sequential", "build_ms": 175.0, "wall_ms": 50_000.0,
        "rounds": rounds, "messages": messages, "messages_per_sec": 6e5,
        "palette": 257, "valid": valid, "peak_rss_mb": peak_rss_mb,
        "rss_cumulative": rss_cumulative,
    }


def pr5_doc():
    """Stressed 1e5 cell (matching pr4_doc's recording bit-exactly) plus
    the 1e6 randomized cell."""
    return {
        "bench": "BENCH_PR5",
        "cells": [
            pr5_cell(),
            pr5_cell(graph="random_regular-d8-n1000000-stressed-c0-1",
                     n=1_000_000, delta=8, rounds=646,
                     messages=128_000_000, peak_rss_mb=9000.0),
        ],
    }


class Pr5GateTests(unittest.TestCase):
    def _validate(self, fresh, recorded, pr4):
        bench_gate.validate_pr5(fresh, recorded, pr4, log=lambda *_: None)

    def test_valid_doc_passes(self):
        doc = pr5_doc()
        self._validate(copy.deepcopy(doc), doc, pr4_doc())

    def test_wrong_bench_tag_fails(self):
        doc = pr5_doc()
        doc["bench"] = "BENCH_PR4"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR5"):
            bench_gate.check_pr5_shape(doc)

    def test_missing_rss_cumulative_key_fails(self):
        doc = pr5_doc()
        del doc["cells"][0]["rss_cumulative"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.check_pr5_shape(doc)

    def test_missing_stressed_cell_fails(self):
        doc = pr5_doc()
        doc["cells"] = doc["cells"][1:]
        with self.assertRaisesRegex(GateError, "stressed"):
            bench_gate.check_pr5_shape(doc)

    def test_missing_huge_rand_cell_fails(self):
        doc = pr5_doc()
        doc["cells"] = doc["cells"][:1]
        with self.assertRaisesRegex(GateError, "10\\^6"):
            bench_gate.check_pr5_shape(doc)

    def test_insufficient_rss_reduction_fails(self):
        doc = pr5_doc()
        doc["cells"][0]["peak_rss_mb"] = 8000.0 / 3  # only 3x below PR4
        with self.assertRaisesRegex(GateError, "peak RSS"):
            bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "recorded",
                                               log=lambda *_: None)

    def test_exact_factor_passes(self):
        doc = pr5_doc()
        doc["cells"][0]["peak_rss_mb"] = 8000.0 / 4
        bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "recorded",
                                           log=lambda *_: None)

    def test_cumulative_rss_skips_reduction_check_on_fresh(self):
        doc = pr5_doc()
        doc["cells"][0]["peak_rss_mb"] = 50_000.0
        doc["cells"][0]["rss_cumulative"] = True
        notices = []
        bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "fresh",
                                           allow_cumulative_skip=True,
                                           log=notices.append)
        self.assertTrue(any("cumulative" in n for n in notices))

    def test_cumulative_rss_on_recorded_report_is_a_hard_failure(self):
        doc = pr5_doc()
        doc["cells"][0]["rss_cumulative"] = True
        with self.assertRaisesRegex(GateError, "re-record"):
            bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "recorded",
                                               log=lambda *_: None)
        with self.assertRaisesRegex(GateError, "re-record"):
            bench_gate.validate_pr5(pr5_doc(), doc, pr4_doc(),
                                    log=lambda *_: None)

    def test_fresh_tolerance_is_looser_than_recorded(self):
        doc = pr5_doc()
        doc["cells"][0]["peak_rss_mb"] = 8000.0 / 4 * 1.1
        with self.assertRaisesRegex(GateError, "peak RSS"):
            bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "recorded",
                                               log=lambda *_: None)
        bench_gate.check_pr5_rss_reduction(
            doc, pr4_doc(), "fresh",
            tolerance=bench_gate.RSS_FRESH_TOLERANCE, log=lambda *_: None)

    def test_pr4_continuity_rounds_drift_fails(self):
        doc = pr5_doc()
        doc["cells"][0]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "drifted from the PR4"):
            bench_gate.check_pr5_pr4_continuity(doc, pr4_doc())

    def test_pr4_continuity_messages_drift_fails(self):
        doc = pr5_doc()
        doc["cells"][0]["messages"] -= 1
        with self.assertRaisesRegex(GateError, "drifted from the PR4"):
            bench_gate.check_pr5_pr4_continuity(doc, pr4_doc())

    def test_fresh_vs_recorded_drift_fails(self):
        fresh, rec = pr5_doc(), pr5_doc()
        fresh["cells"][1]["messages"] += 1
        with self.assertRaisesRegex(GateError, "messages drifted"):
            self._validate(fresh, rec, pr4_doc())

    def test_invalid_cell_fails(self):
        doc = pr5_doc()
        doc["cells"][1]["valid"] = False
        with self.assertRaisesRegex(GateError, "invalid cell"):
            bench_gate.check_pr5_shape(doc)

    def test_zero_round_cell_fails(self):
        doc = pr5_doc()
        doc["cells"][1]["rounds"] = 0
        with self.assertRaisesRegex(GateError, "0 rounds"):
            bench_gate.check_pr5_shape(doc)


class CliTests(unittest.TestCase):
    def test_unknown_gate_is_usage_error(self):
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr9"]), 2)

    def test_missing_args_is_usage_error(self):
        self.assertEqual(bench_gate.main(["bench_gate.py"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr2", "x"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr3"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr4", "x"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr5", "x", "y"]), 2)


if __name__ == "__main__":
    unittest.main()
