"""Unit tests for ci/bench_gate.py (run with: python3 -m unittest discover ci)."""

import copy
import unittest

import bench_gate
from bench_gate import GateError


def pr2_cell(graph="g", algo="a", runtime="sequential", wall_ms=100.0,
             rounds=10, messages=1000, n=2500, valid=True):
    return {
        "graph": graph, "algo": algo, "runtime": runtime, "wall_ms": wall_ms,
        "rounds": rounds, "messages": messages, "messages_per_round": 100.0,
        "messages_per_sec": 10000.0, "phases": [], "palette": 5,
        "valid": valid, "n": n, "delta": 4, "work_estimate": 10000,
    }


def pr2_doc():
    """12 shared cells: 3 graphs x 2 algos x 2 runtimes, plus auto."""
    cells = []
    for g in ("g1", "g2", "g3"):
        for a in ("a1", "a2"):
            cells.append(pr2_cell(g, a, "sequential", wall_ms=100.0))
            cells.append(pr2_cell(g, a, "parallel-4", wall_ms=150.0))
            cells.append(pr2_cell(g, a, "auto", wall_ms=100.0))
    return {"bench": "BENCH_PR2", "cells": cells}


def pr3_cell(family="gnp_capped", n=10_000, runtime="sequential",
             mode="coloring", build_ms=50.0, rounds=100, messages=5000,
             valid=True):
    return {
        "family": family, "graph": f"{family}-n{n}", "n": n, "m": 6 * n,
        "delta": 16, "mode": mode, "algo": "det-small(T1.2)" if mode == "coloring" else "-",
        "runtime": runtime, "build_ms": build_ms, "wall_ms": 500.0,
        "rounds": rounds, "messages": messages, "messages_per_sec": 1e6,
        "palette": 250, "work_estimate": 13 * n, "valid": valid,
        "peak_rss_mb": 100.0,
    }


def pr3_doc():
    cells = []
    for family in sorted(bench_gate.PR3_FAMILIES):
        for n in (10_000, 100_000):
            for runtime in ("sequential", "parallel-4", "auto"):
                cells.append(pr3_cell(family, n, runtime))
        cells.append(pr3_cell(family, 1_000_000, "-", mode="build",
                              rounds=0, messages=0, build_ms=2000.0))
    return {"bench": "BENCH_PR3", "cells": cells}


class Pr2GateTests(unittest.TestCase):
    def test_valid_doc_passes(self):
        doc = pr2_doc()
        bench_gate.validate_pr2(doc, copy.deepcopy(doc), log=lambda *_: None)

    def test_invalid_coloring_fails(self):
        doc = pr2_doc()
        doc["cells"][0]["valid"] = False
        with self.assertRaisesRegex(GateError, "invalid coloring"):
            bench_gate.check_pr2_shape(doc)

    def test_missing_key_fails(self):
        doc = pr2_doc()
        del doc["cells"][0]["rounds"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.check_pr2_shape(doc)

    def test_duplicate_cells_fail(self):
        doc = pr2_doc()
        doc["cells"].append(copy.deepcopy(doc["cells"][0]))
        with self.assertRaisesRegex(GateError, "duplicate"):
            bench_gate.check_pr2_shape(doc)

    def test_rounds_drift_fails(self):
        base, new = pr2_doc(), pr2_doc()
        new["cells"][0]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "rounds drifted"):
            bench_gate.check_shared_cells_bit_exact(base, new)

    def test_message_drift_fails(self):
        base, new = pr2_doc(), pr2_doc()
        new["cells"][1]["messages"] += 7
        with self.assertRaisesRegex(GateError, "messages drifted"):
            bench_gate.check_shared_cells_bit_exact(base, new)

    def test_too_few_shared_cells_fails(self):
        base = pr2_doc()
        new = {"bench": "BENCH_PR2", "cells": base["cells"][:4]}
        with self.assertRaisesRegex(GateError, "shared cells"):
            bench_gate.check_shared_cells_bit_exact(base, new)

    def test_overhead_regression_fails(self):
        base, new = pr2_doc(), pr2_doc()
        for c in new["cells"]:
            if c["runtime"] == "parallel-4":
                c["wall_ms"] = 400.0  # 1.5x -> 4x: relative and absolute trip
        with self.assertRaisesRegex(GateError, "overhead"):
            bench_gate.check_overhead_ratios(base, new, log=lambda *_: None)

    def test_noise_floor_exempts_fast_cells(self):
        base, new = pr2_doc(), pr2_doc()
        for c in new["cells"]:
            c["wall_ms"] = c["wall_ms"] / 100.0  # everything under 20 ms
            if c["runtime"] == "parallel-4":
                c["wall_ms"] *= 10  # terrible ratio, but in the noise
        bench_gate.check_overhead_ratios(base, new, log=lambda *_: None)


class Pr3GateTests(unittest.TestCase):
    def test_valid_doc_passes(self):
        bench_gate.validate_pr3(pr3_doc(), log=lambda *_: None)

    def test_wrong_bench_tag_fails(self):
        doc = pr3_doc()
        doc["bench"] = "BENCH_PR2"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR3"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_invalid_cell_fails(self):
        doc = pr3_doc()
        doc["cells"][3]["valid"] = False
        with self.assertRaisesRegex(GateError, "invalid cell"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_missing_column_fails(self):
        doc = pr3_doc()
        del doc["cells"][0]["peak_rss_mb"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_too_few_coloring_cells_fails(self):
        doc = pr3_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if c["mode"] == "build" or c["runtime"] == "sequential"]
        with self.assertRaisesRegex(GateError, ">= 9"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_missing_big_coloring_fails(self):
        doc = pr3_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if c["mode"] == "build" or c["n"] < 100_000]
        with self.assertRaisesRegex(GateError, "n >= 10\\^5"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_zero_round_coloring_fails(self):
        doc = pr3_doc()
        coloring = [c for c in doc["cells"] if c["mode"] == "coloring"]
        coloring[0]["rounds"] = 0
        with self.assertRaisesRegex(GateError, "0 rounds"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_missing_family_fails(self):
        doc = pr3_doc()
        doc["cells"] = [c for c in doc["cells"] if c["family"] != "grid"]
        with self.assertRaisesRegex(GateError, "missing families"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_build_budget_violation_fails(self):
        doc = pr3_doc()
        for c in doc["cells"]:
            if c["mode"] == "build":
                c["build_ms"] = 60_000.0
        with self.assertRaisesRegex(GateError, "budget"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)

    def test_missing_huge_build_family_fails(self):
        doc = pr3_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if not (c["mode"] == "build" and c["family"] == "grid")]
        with self.assertRaisesRegex(GateError, "build cells missing"):
            bench_gate.validate_pr3(doc, log=lambda *_: None)


def pr4_cell(family="gnp_capped", graph="gnp_capped-n100000", n=100_000,
             algo="det-small(T1.2)", runtime="sequential", wall_ms=15_000.0,
             rounds=4654, messages=17_060_200, allocs_per_round=350.0,
             valid=True, peak_rss_mb=1000.0):
    return {
        "family": family, "graph": graph, "n": n, "m": 6 * n, "delta": 16,
        "algo": algo, "runtime": runtime, "build_ms": 150.0,
        "wall_ms": wall_ms, "rounds": rounds, "messages": messages,
        "messages_per_sec": 1e6, "allocs_per_round": allocs_per_round,
        "palette": 257, "valid": valid, "peak_rss_mb": peak_rss_mb,
    }


def pr4_doc():
    return {
        "bench": "BENCH_PR4",
        "pre_change": {"allocs_per_round_det_1e5": 3902.5,
                       "rand_gnp_1e5_wall_ms": 185_900.0},
        "cells": [
            pr4_cell(),
            pr4_cell(algo="rand-improved(T1.1)", wall_ms=1200.0, rounds=213,
                     messages=5_405_868, allocs_per_round=2347.5),
            pr4_cell(family="random_regular",
                     graph="random_regular-d16-n100000-stressed-c0-1",
                     algo="rand-improved(T1.1)", wall_ms=58_000.0,
                     rounds=5317, messages=18_742_572,
                     allocs_per_round=3561.5, peak_rss_mb=8000.0),
            pr4_cell(family="random_regular",
                     graph="random_regular-d8-n1000000", n=1_000_000,
                     wall_ms=60_000.0, rounds=1170, messages=114_000_000,
                     allocs_per_round=400.0),
        ],
    }


class Pr4GateTests(unittest.TestCase):
    def test_valid_doc_passes(self):
        doc = pr4_doc()
        bench_gate.validate_pr4(copy.deepcopy(doc), doc, log=lambda *_: None)

    def test_wrong_bench_tag_fails(self):
        doc = pr4_doc()
        doc["bench"] = "BENCH_PR3"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR4"):
            bench_gate.check_pr4_shape(doc)

    def test_missing_pre_change_fails(self):
        doc = pr4_doc()
        del doc["pre_change"]["allocs_per_round_det_1e5"]
        with self.assertRaisesRegex(GateError, "pre_change"):
            bench_gate.check_pr4_shape(doc)

    def test_missing_huge_cell_fails(self):
        doc = pr4_doc()
        doc["cells"] = [c for c in doc["cells"] if c["n"] < 1_000_000]
        with self.assertRaisesRegex(GateError, "10\\^6"):
            bench_gate.check_pr4_shape(doc)

    def test_missing_rand_cells_fail(self):
        doc = pr4_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if not c["algo"].startswith("rand-improved")]
        with self.assertRaisesRegex(GateError, "rand-improved"):
            bench_gate.check_pr4_shape(doc)

    def test_alloc_reduction_acceptance(self):
        doc = pr4_doc()
        doc["cells"][0]["allocs_per_round"] = 3902.5 / 5  # only 5x better
        with self.assertRaisesRegex(GateError, "allocs/round"):
            bench_gate.check_pr4_acceptance(doc)

    def test_unmeasured_allocs_fail_acceptance(self):
        doc = pr4_doc()
        doc["cells"][0]["allocs_per_round"] = -1.0
        with self.assertRaisesRegex(GateError, "count-allocs"):
            bench_gate.check_pr4_acceptance(doc)

    def test_rand_speedup_acceptance(self):
        doc = pr4_doc()
        doc["cells"][1]["wall_ms"] = 100_000.0  # < 3x faster than 185.9 s
        with self.assertRaisesRegex(GateError, "rand wall"):
            bench_gate.check_pr4_acceptance(doc)

    def test_alloc_regression_fails(self):
        rec, new = pr4_doc(), pr4_doc()
        new["cells"][0]["allocs_per_round"] = 350.0 * 1.5
        with self.assertRaisesRegex(GateError, "regressed"):
            bench_gate.check_allocs_per_round(rec, new, log=lambda *_: None)

    def test_alloc_within_tolerance_passes(self):
        rec, new = pr4_doc(), pr4_doc()
        new["cells"][0]["allocs_per_round"] = 350.0 * 1.05
        bench_gate.check_allocs_per_round(rec, new, log=lambda *_: None)

    def test_fresh_run_without_counting_fails_diff(self):
        rec, new = pr4_doc(), pr4_doc()
        for c in new["cells"]:
            c["allocs_per_round"] = -1.0
        with self.assertRaisesRegex(GateError, "count-allocs"):
            bench_gate.check_allocs_per_round(rec, new, log=lambda *_: None)

    def test_rounds_drift_fails_diff(self):
        rec, new = pr4_doc(), pr4_doc()
        new["cells"][2]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "rounds drifted"):
            bench_gate.validate_pr4(new, rec, log=lambda *_: None)


def pr5_cell(graph=bench_gate.PR5_STRESSED_GRAPH, n=100_000, delta=16,
             rounds=5317, messages=18_742_572, peak_rss_mb=1500.0,
             rss_cumulative=False, valid=True):
    return {
        "family": "random_regular", "graph": graph, "n": n, "m": 8 * n,
        "delta": delta, "algo": "rand-improved(T1.1)",
        "runtime": "sequential", "build_ms": 175.0, "wall_ms": 50_000.0,
        "rounds": rounds, "messages": messages, "messages_per_sec": 6e5,
        "palette": 257, "valid": valid, "peak_rss_mb": peak_rss_mb,
        "rss_cumulative": rss_cumulative,
    }


def pr5_doc():
    """Stressed 1e5 cell (matching pr4_doc's recording bit-exactly) plus
    the 1e6 randomized cell."""
    return {
        "bench": "BENCH_PR5",
        "cells": [
            pr5_cell(),
            pr5_cell(graph="random_regular-d8-n1000000-stressed-c0-1",
                     n=1_000_000, delta=8, rounds=646,
                     messages=128_000_000, peak_rss_mb=9000.0),
        ],
    }


class Pr5GateTests(unittest.TestCase):
    def _validate(self, fresh, recorded, pr4):
        bench_gate.validate_pr5(fresh, recorded, pr4, log=lambda *_: None)

    def test_valid_doc_passes(self):
        doc = pr5_doc()
        self._validate(copy.deepcopy(doc), doc, pr4_doc())

    def test_wrong_bench_tag_fails(self):
        doc = pr5_doc()
        doc["bench"] = "BENCH_PR4"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR5"):
            bench_gate.check_pr5_shape(doc)

    def test_missing_rss_cumulative_key_fails(self):
        doc = pr5_doc()
        del doc["cells"][0]["rss_cumulative"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.check_pr5_shape(doc)

    def test_missing_stressed_cell_fails(self):
        doc = pr5_doc()
        doc["cells"] = doc["cells"][1:]
        with self.assertRaisesRegex(GateError, "stressed"):
            bench_gate.check_pr5_shape(doc)

    def test_missing_huge_rand_cell_fails(self):
        doc = pr5_doc()
        doc["cells"] = doc["cells"][:1]
        with self.assertRaisesRegex(GateError, "10\\^6"):
            bench_gate.check_pr5_shape(doc)

    def test_insufficient_rss_reduction_fails(self):
        doc = pr5_doc()
        doc["cells"][0]["peak_rss_mb"] = 8000.0 / 3  # only 3x below PR4
        with self.assertRaisesRegex(GateError, "peak RSS"):
            bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "recorded",
                                               log=lambda *_: None)

    def test_exact_factor_passes(self):
        doc = pr5_doc()
        doc["cells"][0]["peak_rss_mb"] = 8000.0 / 4
        bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "recorded",
                                           log=lambda *_: None)

    def test_cumulative_rss_skips_reduction_check_on_fresh(self):
        doc = pr5_doc()
        doc["cells"][0]["peak_rss_mb"] = 50_000.0
        doc["cells"][0]["rss_cumulative"] = True
        notices = []
        bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "fresh",
                                           allow_cumulative_skip=True,
                                           log=notices.append)
        self.assertTrue(any("cumulative" in n for n in notices))

    def test_cumulative_rss_on_recorded_report_is_a_hard_failure(self):
        doc = pr5_doc()
        doc["cells"][0]["rss_cumulative"] = True
        with self.assertRaisesRegex(GateError, "re-record"):
            bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "recorded",
                                               log=lambda *_: None)
        with self.assertRaisesRegex(GateError, "re-record"):
            bench_gate.validate_pr5(pr5_doc(), doc, pr4_doc(),
                                    log=lambda *_: None)

    def test_fresh_tolerance_is_looser_than_recorded(self):
        doc = pr5_doc()
        doc["cells"][0]["peak_rss_mb"] = 8000.0 / 4 * 1.1
        with self.assertRaisesRegex(GateError, "peak RSS"):
            bench_gate.check_pr5_rss_reduction(doc, pr4_doc(), "recorded",
                                               log=lambda *_: None)
        bench_gate.check_pr5_rss_reduction(
            doc, pr4_doc(), "fresh",
            tolerance=bench_gate.RSS_FRESH_TOLERANCE, log=lambda *_: None)

    def test_pr4_continuity_rounds_drift_fails(self):
        doc = pr5_doc()
        doc["cells"][0]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "drifted from the PR4"):
            bench_gate.check_pr5_pr4_continuity(doc, pr4_doc())

    def test_pr4_continuity_messages_drift_fails(self):
        doc = pr5_doc()
        doc["cells"][0]["messages"] -= 1
        with self.assertRaisesRegex(GateError, "drifted from the PR4"):
            bench_gate.check_pr5_pr4_continuity(doc, pr4_doc())

    def test_fresh_vs_recorded_drift_fails(self):
        fresh, rec = pr5_doc(), pr5_doc()
        fresh["cells"][1]["messages"] += 1
        with self.assertRaisesRegex(GateError, "messages drifted"):
            self._validate(fresh, rec, pr4_doc())

    def test_invalid_cell_fails(self):
        doc = pr5_doc()
        doc["cells"][1]["valid"] = False
        with self.assertRaisesRegex(GateError, "invalid cell"):
            bench_gate.check_pr5_shape(doc)

    def test_zero_round_cell_fails(self):
        doc = pr5_doc()
        doc["cells"][1]["rounds"] = 0
        with self.assertRaisesRegex(GateError, "0 rounds"):
            bench_gate.check_pr5_shape(doc)


def pr6_repair_cell(batch, events=800, messages=10_000, rounds=20,
                    valid=True):
    return {
        "batch": batch, "events": events, "inserted": events // 2,
        "deleted": events - events // 2, "touched": 2 * events,
        "damaged": events // 4, "rounds": rounds, "messages": messages,
        "wall_ms": 500.0, "palette_drift": 2, "valid": valid,
    }


def pr6_chaos_cell(algo="det-small(T1.2)", drop_ppm=1000, rounds=1000,
                   messages=100_000, faults_dropped=100, identical=True):
    return {
        "graph": "gnp_capped-d8-n2000", "algo": algo, "drop_ppm": drop_ppm,
        "rounds": rounds, "messages": messages,
        "faults_dropped": faults_dropped, "engines_identical": identical,
    }


def pr6_doc():
    """Fresh n=10^5 baseline, 5 repair batches (4000 events = 1% of m,
    well under the messages/10 bound), 2 algos x 2 drop rates of chaos."""
    cells = [pr6_repair_cell(b) for b in range(5)]
    chaos = [pr6_chaos_cell(algo, ppm)
             for algo in ("det-small(T1.2)", "rand-improved(T1.1)")
             for ppm in (1000, 50_000)]
    return {
        "bench": "BENCH_PR6",
        "description": "churn repair + chaos determinism",
        "fresh": {
            "graph": "random_regular-d8-n100000", "n": 100_000, "m": 400_000,
            "delta": 8, "algo": "det-small(T1.2)", "runtime": "sequential",
            "build_ms": 100.0, "wall_ms": 20_000.0, "rounds": 1170,
            "messages": 1_000_000, "palette": 65, "valid": True,
            "peak_rss_mb": 385.0, "rss_cumulative": False,
        },
        "churn": {
            "events": 4000, "batches": 5, "churn_fraction": 0.01,
            "total_repair_messages": 50_000, "messages_ratio": 0.05,
            "total_palette_drift": 10, "final_valid": True, "cells": cells,
        },
        "chaos": {"cells": chaos},
    }


class Pr6GateTests(unittest.TestCase):
    def _validate(self, fresh, recorded):
        bench_gate.validate_pr6(fresh, recorded, log=lambda *_: None)

    def test_valid_doc_passes(self):
        doc = pr6_doc()
        self._validate(copy.deepcopy(doc), doc)

    def test_wrong_bench_tag_fails(self):
        doc = pr6_doc()
        doc["bench"] = "BENCH_PR5"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR6"):
            bench_gate.check_pr6_shape(doc)

    def test_missing_fresh_key_fails(self):
        doc = pr6_doc()
        del doc["fresh"]["rss_cumulative"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.check_pr6_shape(doc)

    def test_invalid_fresh_baseline_fails(self):
        doc = pr6_doc()
        doc["fresh"]["valid"] = False
        with self.assertRaisesRegex(GateError, "baseline coloring invalid"):
            bench_gate.check_pr6_shape(doc)

    def test_fresh_below_scaling_tier_fails(self):
        doc = pr6_doc()
        doc["fresh"]["n"] = 10_000
        with self.assertRaisesRegex(GateError, "10\\^5 tier"):
            bench_gate.check_pr6_shape(doc)

    def test_missing_repair_cell_key_fails(self):
        doc = pr6_doc()
        del doc["churn"]["cells"][2]["palette_drift"]
        with self.assertRaisesRegex(GateError, "repair cell missing"):
            bench_gate.check_pr6_shape(doc)

    def test_invalid_repair_batch_fails(self):
        doc = pr6_doc()
        doc["churn"]["cells"][3]["valid"] = False
        with self.assertRaisesRegex(GateError, "invalid coloring"):
            bench_gate.check_pr6_shape(doc)

    def test_final_invalid_fails(self):
        doc = pr6_doc()
        doc["churn"]["final_valid"] = False
        with self.assertRaisesRegex(GateError, "final coloring invalid"):
            bench_gate.check_pr6_shape(doc)

    def test_batches_cells_mismatch_fails(self):
        doc = pr6_doc()
        doc["churn"]["batches"] = 6
        with self.assertRaisesRegex(GateError, "!= 5 cells"):
            bench_gate.check_pr6_shape(doc)

    def test_too_few_batches_fails(self):
        doc = pr6_doc()
        doc["churn"]["cells"] = doc["churn"]["cells"][:4]
        doc["churn"]["batches"] = 4
        with self.assertRaisesRegex(GateError, ">= 5 churn batches"):
            bench_gate.check_pr6_shape(doc)

    def test_insufficient_churn_fraction_fails(self):
        doc = pr6_doc()
        doc["churn"]["events"] = 100  # 0.025% of m = 400k
        with self.assertRaisesRegex(GateError, "churn trace covers only"):
            bench_gate.check_pr6_shape(doc)

    def test_total_repair_messages_mismatch_fails(self):
        doc = pr6_doc()
        doc["churn"]["total_repair_messages"] += 1
        with self.assertRaisesRegex(GateError, "sum of cells"):
            bench_gate.check_pr6_shape(doc)

    def test_repair_over_tenth_of_fresh_fails(self):
        doc = pr6_doc()
        # 5 x 25_000 = 125_000 > 1_000_000 / 10.
        for c in doc["churn"]["cells"]:
            c["messages"] = 25_000
        doc["churn"]["total_repair_messages"] = 125_000
        with self.assertRaisesRegex(GateError, "over fresh"):
            bench_gate.check_pr6_shape(doc)

    def test_exact_repair_bound_passes(self):
        doc = pr6_doc()
        for c in doc["churn"]["cells"]:
            c["messages"] = 20_000
        doc["churn"]["total_repair_messages"] = 100_000  # == fresh / 10
        bench_gate.check_pr6_shape(doc)

    def test_too_few_chaos_cells_fails(self):
        doc = pr6_doc()
        doc["chaos"]["cells"] = doc["chaos"]["cells"][:3]
        with self.assertRaisesRegex(GateError, ">= 4 chaos cells"):
            bench_gate.check_pr6_shape(doc)

    def test_duplicate_chaos_cells_fail(self):
        doc = pr6_doc()
        doc["chaos"]["cells"][1] = copy.deepcopy(doc["chaos"]["cells"][0])
        with self.assertRaisesRegex(GateError, "duplicate chaos"):
            bench_gate.check_pr6_shape(doc)

    def test_engine_divergence_fails(self):
        doc = pr6_doc()
        doc["chaos"]["cells"][2]["engines_identical"] = False
        with self.assertRaisesRegex(GateError, "engines diverged"):
            bench_gate.check_pr6_shape(doc)

    def test_silent_fault_plane_fails(self):
        doc = pr6_doc()
        doc["chaos"]["cells"][0]["faults_dropped"] = 0
        with self.assertRaisesRegex(GateError, "never fired"):
            bench_gate.check_pr6_shape(doc)

    def test_single_algo_chaos_fails(self):
        doc = pr6_doc()
        for c in doc["chaos"]["cells"]:
            c["algo"] = "det-small(T1.2)"
        # Dedup the (graph, algo, ppm) keys by varying drop rates.
        for i, c in enumerate(doc["chaos"]["cells"]):
            c["drop_ppm"] = 1000 * (i + 1)
        with self.assertRaisesRegex(GateError, ">= 2 pipelines"):
            bench_gate.check_pr6_shape(doc)

    def test_single_drop_rate_fails(self):
        doc = pr6_doc()
        doc["chaos"]["cells"] = [
            pr6_chaos_cell(algo=f"a{i}", drop_ppm=1000) for i in range(4)
        ]
        with self.assertRaisesRegex(GateError, ">= 2 drop rates"):
            bench_gate.check_pr6_shape(doc)

    def test_fresh_baseline_drift_fails(self):
        fresh, rec = pr6_doc(), pr6_doc()
        fresh["fresh"]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "fresh baseline rounds"):
            self._validate(fresh, rec)

    def test_repair_batch_drift_fails(self):
        fresh, rec = pr6_doc(), pr6_doc()
        fresh["churn"]["cells"][1]["messages"] -= 10
        fresh["churn"]["total_repair_messages"] -= 10
        with self.assertRaisesRegex(GateError, "churn batch 1: messages"):
            self._validate(fresh, rec)

    def test_churn_batch_set_drift_fails(self):
        fresh, rec = pr6_doc(), pr6_doc()
        fresh["churn"]["cells"][4]["batch"] = 9
        with self.assertRaisesRegex(GateError, "batch sets differ"):
            self._validate(fresh, rec)

    def test_chaos_metric_drift_fails(self):
        fresh, rec = pr6_doc(), pr6_doc()
        fresh["chaos"]["cells"][3]["faults_dropped"] += 1
        with self.assertRaisesRegex(GateError, "faults_dropped drifted"):
            self._validate(fresh, rec)

    def test_wall_clock_drift_is_tolerated(self):
        fresh, rec = pr6_doc(), pr6_doc()
        fresh["fresh"]["wall_ms"] *= 3.0
        fresh["fresh"]["peak_rss_mb"] += 50.0
        for c in fresh["churn"]["cells"]:
            c["wall_ms"] *= 2.0
        self._validate(fresh, rec)


def pr7_doc():
    """Straggler cell matching pr6_doc's fresh recording, scale cell
    matching pr5_doc's 1e6 recording; frontier 20x under always-step
    and well below 5% of n."""
    return {
        "bench": "BENCH_PR7",
        "description": "active-set frontier economics",
        "straggler": {
            "graph": "random_regular-d8-n100000", "n": 100_000, "m": 400_000,
            "delta": 8, "algo": "det-small(T1.2)", "runtime": "sequential",
            "build_ms": 300.0, "wall_ms": 9_000.0, "rounds": 1170,
            "messages": 1_000_000, "palette": 65, "valid": True,
            "stepped_nodes": 5_850_000, "stepped_per_round": 5000.0,
            "wall_ms_reference": 21_000.0,
            "stepped_nodes_reference": 117_000_000, "steps_ratio": 20.0,
            "reference_identical": True,
        },
        "scale": {
            "graph": "random_regular-d8-n1000000-stressed-c0-1",
            "n": 1_000_000, "m": 8_000_000, "delta": 8,
            "algo": "rand-improved(T1.1)", "runtime": "sequential",
            "build_ms": 3_000.0, "wall_ms": 120_000.0, "rounds": 646,
            "messages": 128_000_000, "palette": 257, "valid": True,
            "stepped_nodes": 200_000_000, "stepped_per_round": 309_597.5,
        },
    }


class Pr7GateTests(unittest.TestCase):
    def _validate(self, fresh, recorded):
        bench_gate.validate_pr7(fresh, recorded, pr6_doc(), pr5_doc(),
                                log=lambda *_: None)

    def test_valid_doc_passes(self):
        doc = pr7_doc()
        self._validate(copy.deepcopy(doc), doc)

    def test_wrong_bench_tag_fails(self):
        doc = pr7_doc()
        doc["bench"] = "BENCH_PR6"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR7"):
            bench_gate.check_pr7_shape(doc)

    def test_missing_straggler_key_fails(self):
        doc = pr7_doc()
        del doc["straggler"]["steps_ratio"]
        with self.assertRaisesRegex(GateError, "straggler cell missing"):
            bench_gate.check_pr7_shape(doc)

    def test_missing_scale_key_fails(self):
        doc = pr7_doc()
        del doc["scale"]["stepped_per_round"]
        with self.assertRaisesRegex(GateError, "scale cell missing"):
            bench_gate.check_pr7_shape(doc)

    def test_schedule_divergence_fails(self):
        doc = pr7_doc()
        doc["straggler"]["reference_identical"] = False
        with self.assertRaisesRegex(GateError, "schedules diverged"):
            bench_gate.check_pr7_shape(doc)

    def test_insufficient_step_reduction_fails(self):
        doc = pr7_doc()
        doc["straggler"]["steps_ratio"] = 4.9
        with self.assertRaisesRegex(GateError, "fewer nodes"):
            bench_gate.check_pr7_shape(doc)

    def test_exact_step_reduction_passes(self):
        doc = pr7_doc()
        doc["straggler"]["steps_ratio"] = bench_gate.PR7_STEP_REDUCTION
        bench_gate.check_pr7_shape(doc)

    def test_oversized_frontier_fails(self):
        doc = pr7_doc()
        doc["straggler"]["stepped_per_round"] = 5001.0
        with self.assertRaisesRegex(GateError, "steady-state frontier"):
            bench_gate.check_pr7_shape(doc)

    def test_exact_frontier_bound_passes(self):
        doc = pr7_doc()
        doc["straggler"]["stepped_per_round"] = (
            bench_gate.PR7_STEPPED_ROUND_FRACTION
            * doc["straggler"]["n"])
        bench_gate.check_pr7_shape(doc)

    def test_invalid_straggler_coloring_fails(self):
        doc = pr7_doc()
        doc["straggler"]["valid"] = False
        with self.assertRaisesRegex(GateError, "straggler coloring invalid"):
            bench_gate.check_pr7_shape(doc)

    def test_scale_below_tier_fails(self):
        doc = pr7_doc()
        doc["scale"]["n"] = 999_999
        with self.assertRaisesRegex(GateError, "below the 10\\^6 tier"):
            bench_gate.check_pr7_shape(doc)

    def test_pr6_continuity_rounds_drift_fails(self):
        fresh, rec = pr7_doc(), pr7_doc()
        fresh["straggler"]["rounds"] = 1171
        with self.assertRaisesRegex(GateError, "drifted from the PR6"):
            self._validate(fresh, rec)

    def test_pr6_continuity_workload_mismatch_fails(self):
        doc = pr7_doc()
        doc["straggler"]["graph"] = "random_regular-d16-n100000"
        with self.assertRaisesRegex(GateError, "not BENCH_PR6's fresh"):
            bench_gate.check_pr7_pr6_continuity(doc, pr6_doc())

    def test_pr5_continuity_messages_drift_fails(self):
        doc = pr7_doc()
        doc["scale"]["messages"] += 1
        with self.assertRaisesRegex(GateError, "drifted from the PR5"):
            bench_gate.check_pr7_pr5_continuity(doc, pr5_doc())

    def test_pr5_missing_workload_fails(self):
        doc = pr7_doc()
        doc["scale"]["graph"] = "random_regular-d8-n2000000-stressed-c0-1"
        with self.assertRaisesRegex(GateError, "no cell for workload"):
            bench_gate.check_pr7_pr5_continuity(doc, pr5_doc())

    def test_fresh_vs_recorded_stepped_drift_fails(self):
        fresh, rec = pr7_doc(), pr7_doc()
        fresh["straggler"]["stepped_nodes"] += 1
        with self.assertRaisesRegex(GateError, "stepped_nodes drifted"):
            bench_gate.check_pr7_bit_exact(rec, fresh)

    def test_wall_clock_drift_is_tolerated(self):
        fresh, rec = pr7_doc(), pr7_doc()
        fresh["straggler"]["wall_ms"] *= 3.0
        fresh["straggler"]["wall_ms_reference"] *= 2.0
        fresh["scale"]["wall_ms"] *= 0.5
        self._validate(fresh, rec)


def pr8_cell(graph="det-small-gnp-n200-d5-g11-s42", algo="det-small",
             processes=2, rounds=465, messages=8190, total_bits=70_000,
             palette=26):
    return {
        "graph": graph, "algo": algo, "n": 200, "delta": 5,
        "processes": processes, "wall_ms_sequential": 12.0,
        "wall_ms_net": 40.0, "rounds": rounds, "messages": messages,
        "total_bits": total_bits, "palette": palette,
        "identical": True, "valid": True,
    }


def pr8_doc():
    """Both pipelines on both families, each at 2 and 4 processes."""
    cells = []
    for graph, algo in [
        ("det-small-gnp-n200-d5-g11-s42", "det-small"),
        ("det-small-regular-n160-d4-g12-s42", "det-small"),
        ("rand-improved-gnp-n200-d6-g13-s42", "rand-improved"),
        ("rand-improved-regular-n160-d6-g14-s42", "rand-improved"),
    ]:
        for k in (2, 4):
            cells.append(pr8_cell(graph=graph, algo=algo, processes=k))
    return {
        "bench": "BENCH_PR8",
        "description": "netplane multi-process equivalence",
        "cells": cells,
    }


class Pr8GateTests(unittest.TestCase):
    def _validate(self, fresh, recorded):
        bench_gate.validate_pr8(fresh, recorded, log=lambda *_: None)

    def test_valid_doc_passes(self):
        doc = pr8_doc()
        self._validate(copy.deepcopy(doc), doc)

    def test_wrong_bench_tag_fails(self):
        doc = pr8_doc()
        doc["bench"] = "BENCH_PR7"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR8"):
            bench_gate.check_pr8_shape(doc)

    def test_empty_report_fails(self):
        doc = pr8_doc()
        doc["cells"] = []
        with self.assertRaisesRegex(GateError, "no cells"):
            bench_gate.check_pr8_shape(doc)

    def test_missing_key_fails(self):
        doc = pr8_doc()
        del doc["cells"][0]["total_bits"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.check_pr8_shape(doc)

    def test_divergent_cell_fails(self):
        doc = pr8_doc()
        doc["cells"][3]["identical"] = False
        with self.assertRaisesRegex(GateError, "diverged from the "
                                    "sequential reference"):
            bench_gate.check_pr8_shape(doc)

    def test_invalid_coloring_fails(self):
        doc = pr8_doc()
        doc["cells"][5]["valid"] = False
        with self.assertRaisesRegex(GateError, "coloring invalid"):
            bench_gate.check_pr8_shape(doc)

    def test_zero_round_cell_fails(self):
        doc = pr8_doc()
        doc["cells"][0]["rounds"] = 0
        with self.assertRaisesRegex(GateError, "ran 0 rounds"):
            bench_gate.check_pr8_shape(doc)

    def test_missing_pipeline_fails(self):
        doc = pr8_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if c["algo"] != "rand-improved"]
        with self.assertRaisesRegex(GateError, "both pipelines"):
            bench_gate.check_pr8_shape(doc)

    def test_missing_family_fails(self):
        doc = pr8_doc()
        doc["cells"] = [c for c in doc["cells"] if "-gnp-" in c["graph"]]
        with self.assertRaisesRegex(GateError, "no regular workload"):
            bench_gate.check_pr8_shape(doc)

    def test_missing_process_count_fails(self):
        doc = pr8_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if not (c["processes"] == 4
                                and c["algo"] == "det-small")]
        with self.assertRaisesRegex(GateError, "not exercised at"):
            bench_gate.check_pr8_shape(doc)

    def test_rounds_drift_fails(self):
        fresh, rec = pr8_doc(), pr8_doc()
        fresh["cells"][2]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "rounds drifted"):
            bench_gate.check_pr8_bit_exact(rec, fresh)

    def test_message_drift_fails(self):
        fresh, rec = pr8_doc(), pr8_doc()
        fresh["cells"][6]["messages"] -= 1
        with self.assertRaisesRegex(GateError, "messages drifted"):
            bench_gate.check_pr8_bit_exact(rec, fresh)

    def test_unrecorded_cell_fails(self):
        fresh, rec = pr8_doc(), pr8_doc()
        fresh["cells"][1]["graph"] = "det-small-gnp-n300-d5-g11-s42"
        with self.assertRaisesRegex(GateError, "no .*recorded counterpart"):
            bench_gate.check_pr8_bit_exact(rec, fresh)

    def test_wall_clock_drift_is_tolerated(self):
        fresh, rec = pr8_doc(), pr8_doc()
        for c in fresh["cells"]:
            c["wall_ms_sequential"] *= 3.0
            c["wall_ms_net"] *= 0.25
        self._validate(fresh, rec)


def pr9_cell(graph="det-small-gnp-n200-d5-g11-s42", algo="det-small",
             chaos=False, rounds=465, messages=8190, total_bits=70_000,
             palette=26):
    return {
        "graph": graph, "algo": algo, "n": 200, "delta": 5,
        "processes": 4, "wall_ms_sequential": 12.0,
        "wall_ms_net": 80.0, "rounds": rounds, "messages": messages,
        "total_bits": total_bits, "palette": palette,
        "identical": True, "valid": True,
        "chaos": chaos,
        "chaos_seed": 29 if chaos else 0,
        "killed_shard": 2 if chaos else 0,
        "kill_sync": 5 if chaos else 0,
        "respawned": chaos,
    }


def pr9_doc():
    """One workload per pipeline, each with a control and a chaos cell."""
    cells = []
    for graph, algo in [
        ("det-small-gnp-n200-d5-g11-s42", "det-small"),
        ("rand-improved-regular-n160-d6-g14-s42", "rand-improved"),
    ]:
        for chaos in (False, True):
            cells.append(pr9_cell(graph=graph, algo=algo, chaos=chaos))
    return {
        "bench": "BENCH_PR9",
        "description": "netplane chaos recovery",
        "cells": cells,
    }


def pr9_pr8_doc():
    """A BENCH_PR8 recording whose 4-process cells match pr9_doc's
    controls (pr8_cell and pr9_cell share the same model numbers)."""
    return pr8_doc()


class Pr9GateTests(unittest.TestCase):
    def _validate(self, fresh, recorded, pr8=None):
        bench_gate.validate_pr9(fresh, recorded, pr8 or pr9_pr8_doc(),
                                log=lambda *_: None)

    def test_valid_doc_passes(self):
        doc = pr9_doc()
        self._validate(copy.deepcopy(doc), doc)

    def test_wrong_bench_tag_fails(self):
        doc = pr9_doc()
        doc["bench"] = "BENCH_PR8"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR9"):
            bench_gate.check_pr9_shape(doc)

    def test_missing_chaos_key_fails(self):
        doc = pr9_doc()
        del doc["cells"][1]["respawned"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.check_pr9_shape(doc)

    def test_divergent_chaos_cell_fails(self):
        doc = pr9_doc()
        doc["cells"][1]["identical"] = False
        with self.assertRaisesRegex(GateError, "diverged"):
            bench_gate.check_pr9_shape(doc)

    def test_unfired_kill_fails(self):
        doc = pr9_doc()
        doc["cells"][1]["respawned"] = False
        with self.assertRaisesRegex(GateError, "kill never fired"):
            bench_gate.check_pr9_shape(doc)

    def test_control_with_chaos_provenance_fails(self):
        doc = pr9_doc()
        doc["cells"][0]["killed_shard"] = 1
        with self.assertRaisesRegex(GateError, "control cell carries"):
            bench_gate.check_pr9_shape(doc)

    def test_wrong_process_count_fails(self):
        doc = pr9_doc()
        doc["cells"][2]["processes"] = 2
        with self.assertRaisesRegex(GateError, "unexpected process count"):
            bench_gate.check_pr9_shape(doc)

    def test_workload_without_control_fails(self):
        doc = pr9_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if c["chaos"] or c["algo"] != "det-small"]
        with self.assertRaisesRegex(GateError, "both a control and a "
                                    "chaos cell"):
            bench_gate.check_pr9_shape(doc)

    def test_chaos_control_metric_mismatch_fails(self):
        doc = pr9_doc()
        doc["cells"][1]["messages"] += 1
        with self.assertRaisesRegex(GateError, "recovery is observable"):
            bench_gate.check_pr9_chaos_vs_control(doc)

    def test_control_drift_from_pr8_fails(self):
        doc = pr9_doc()
        doc["cells"][0]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "drifted from BENCH_PR8"):
            bench_gate.check_pr9_against_pr8(doc, pr9_pr8_doc())

    def test_control_without_pr8_counterpart_fails(self):
        doc = pr9_doc()
        doc["cells"][0]["graph"] = "det-small-gnp-n999-d5-g11-s42"
        with self.assertRaisesRegex(GateError, "no BENCH_PR8 counterpart"):
            bench_gate.check_pr9_against_pr8(doc, pr9_pr8_doc())

    def test_schedule_drift_fails(self):
        fresh, rec = pr9_doc(), pr9_doc()
        fresh["cells"][1]["kill_sync"] += 1
        with self.assertRaisesRegex(GateError, "kill_sync drifted"):
            bench_gate.check_pr9_bit_exact(rec, fresh)

    def test_model_drift_fails(self):
        fresh, rec = pr9_doc(), pr9_doc()
        fresh["cells"][3]["total_bits"] -= 1
        with self.assertRaisesRegex(GateError, "total_bits drifted"):
            bench_gate.check_pr9_bit_exact(rec, fresh)

    def test_wall_clock_drift_is_tolerated(self):
        fresh, rec = pr9_doc(), pr9_doc()
        for c in fresh["cells"]:
            c["wall_ms_net"] *= 4.0
        self._validate(fresh, rec)


def pr10_cell(graph="det-small-gnp-n400-d5-g21-s42", algo="det-small",
              scheduling="always-step", n=400, delta=5, rounds=465,
              messages=15_847, total_bits=120_000, palette=26,
              stepped_nodes=186_000):
    return {
        "graph": graph, "algo": algo, "n": n, "delta": delta,
        "processes": 4, "scheduling": scheduling,
        "wall_ms_sequential": 12.0, "wall_ms_net": 80.0,
        "rounds": rounds, "messages": messages,
        "total_bits": total_bits, "palette": palette,
        "stepped_nodes": stepped_nodes,
        "identical": True, "valid": True,
    }


def pr10_doc():
    """Two always-step controls (the PR9 workloads, model numbers
    matching pr9_cell) plus the straggler under both schedules, with a
    comfortable frontier reduction."""
    controls = [
        pr10_cell(graph="det-small-gnp-n200-d5-g11-s42", algo="det-small",
                  n=200, rounds=465, messages=8190, total_bits=70_000,
                  stepped_nodes=93_000),
        pr10_cell(graph="rand-improved-regular-n160-d6-g14-s42",
                  algo="rand-improved", n=200, rounds=465, messages=8190,
                  total_bits=70_000, stepped_nodes=74_400),
    ]
    straggler = [
        pr10_cell(scheduling="always-step", stepped_nodes=186_000),
        pr10_cell(scheduling="active-set", stepped_nodes=11_119),
    ]
    return {
        "bench": "BENCH_PR10",
        "description": "netplane active-set frontier economics",
        "cells": controls + straggler,
    }


def pr10_pr9_doc():
    """A BENCH_PR9 recording whose control cells match pr10_doc's
    always-step controls on the PR9 model keys (pr9_cell and the
    pr10_doc controls share the same model numbers)."""
    return pr9_doc()


class Pr10GateTests(unittest.TestCase):
    def _validate(self, fresh, recorded, pr9=None):
        bench_gate.validate_pr10(fresh, recorded, pr9 or pr10_pr9_doc(),
                                 log=lambda *_: None)

    def test_valid_doc_passes(self):
        doc = pr10_doc()
        self._validate(copy.deepcopy(doc), doc)

    def test_wrong_bench_tag_fails(self):
        doc = pr10_doc()
        doc["bench"] = "BENCH_PR9"
        with self.assertRaisesRegex(GateError, "not a BENCH_PR10"):
            bench_gate.check_pr10_shape(doc)

    def test_missing_scheduling_key_fails(self):
        doc = pr10_doc()
        del doc["cells"][0]["scheduling"]
        with self.assertRaisesRegex(GateError, "missing"):
            bench_gate.check_pr10_shape(doc)

    def test_unknown_schedule_fails(self):
        doc = pr10_doc()
        doc["cells"][3]["scheduling"] = "sometimes"
        with self.assertRaisesRegex(GateError, "unknown scheduling"):
            bench_gate.check_pr10_shape(doc)

    def test_duplicate_cell_fails(self):
        doc = pr10_doc()
        doc["cells"].append(copy.deepcopy(doc["cells"][3]))
        with self.assertRaisesRegex(GateError, "duplicate cell"):
            bench_gate.check_pr10_shape(doc)

    def test_divergent_cell_fails(self):
        doc = pr10_doc()
        doc["cells"][3]["identical"] = False
        with self.assertRaisesRegex(GateError, "diverged"):
            bench_gate.check_pr10_shape(doc)

    def test_active_cell_without_twin_fails(self):
        doc = pr10_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if not (c["scheduling"] == "always-step"
                                and c["graph"].endswith("g21-s42"))]
        with self.assertRaisesRegex(GateError, "no always-step twin"):
            bench_gate.check_pr10_shape(doc)

    def test_matrix_without_active_cell_fails(self):
        doc = pr10_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if c["scheduling"] == "always-step"]
        with self.assertRaisesRegex(GateError, "no active-set cell"):
            bench_gate.check_pr10_shape(doc)

    def test_observable_scheduling_fails(self):
        doc = pr10_doc()
        doc["cells"][3]["messages"] += 1
        with self.assertRaisesRegex(GateError, "scheduling is observable"):
            bench_gate.check_pr10_frontier(doc)

    def test_weak_frontier_reduction_fails(self):
        doc = pr10_doc()
        doc["cells"][3]["stepped_nodes"] = 80_000  # under 3x of 186k
        with self.assertRaisesRegex(GateError, "active-set stepped"):
            bench_gate.check_pr10_frontier(doc)

    def test_control_drift_from_pr9_fails(self):
        doc = pr10_doc()
        doc["cells"][0]["rounds"] += 1
        with self.assertRaisesRegex(GateError, "drifted from BENCH_PR9"):
            bench_gate.check_pr10_against_pr9(doc, pr10_pr9_doc())

    def test_straggler_is_not_required_in_pr9(self):
        # The straggler workload is new in PR10 — only shared labels are
        # diffed, and two controls must remain shared.
        bench_gate.check_pr10_against_pr9(pr10_doc(), pr10_pr9_doc())

    def test_too_few_shared_controls_fails(self):
        doc = pr10_doc()
        doc["cells"][1]["graph"] = "rand-improved-regular-n999-d6-g14-s42"
        with self.assertRaisesRegex(GateError, ">= 2 control cells"):
            bench_gate.check_pr10_against_pr9(doc, pr10_pr9_doc())

    def test_stepped_node_drift_fails(self):
        fresh, rec = pr10_doc(), pr10_doc()
        fresh["cells"][3]["stepped_nodes"] -= 1
        with self.assertRaisesRegex(GateError, "stepped_nodes drifted"):
            bench_gate.check_pr10_bit_exact(rec, fresh)

    def test_wall_clock_drift_is_tolerated(self):
        fresh, rec = pr10_doc(), pr10_doc()
        for c in fresh["cells"]:
            c["wall_ms_net"] *= 4.0
        self._validate(fresh, rec)


class CliTests(unittest.TestCase):
    def test_unknown_gate_is_usage_error(self):
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr9"]), 2)

    def test_missing_args_is_usage_error(self):
        self.assertEqual(bench_gate.main(["bench_gate.py"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr2", "x"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr3"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr4", "x"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr5", "x", "y"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr7", "x", "y"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr6", "x"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr8", "x"]), 2)
        self.assertEqual(bench_gate.main(["bench_gate.py", "pr10", "x", "y"]), 2)


if __name__ == "__main__":
    unittest.main()
