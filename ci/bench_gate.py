#!/usr/bin/env python3
"""Benchmark-report gates for CI.

Validates the JSON reports the harness emits and diffs them against
checked-in baselines on machine-portable invariants only:

* ``pr2``: validates ``BENCH_PR2.json`` and diffs its shared cells
  against the checked-in ``BENCH_PR1.json`` — model metrics (rounds,
  messages) must be bit-exact, and parallel-overhead ratios must not
  regress (see ``check_overhead_ratios`` for the exact rule).
* ``pr3``: validates ``BENCH_PR3.json``, the n up to 10^6 scaling
  matrix — coverage of the (family, scale, runtime) grid, validity of
  every cell, and the 10-second build budget for the 10^6-node cells.
* ``pr4``: validates a freshly emitted ``BENCH_PR4.json`` (zero-
  allocation message plane + the first 10^6 coloring tier) and diffs it
  against the checked-in report: model metrics bit-exact, and the
  allocations/round column must not regress (``check_allocs_per_round``).
* ``pr5``: validates a freshly emitted ``BENCH_PR5.json`` (streaming
  similarity fold + the first 10^6 randomized coloring tier) against the
  checked-in BENCH_PR5 *and* BENCH_PR4 reports: model metrics bit-exact
  on shared cells, the stressed n = 10^5 rand cell's rounds/messages
  bit-exact with the PR4 recording (the fold is receiver-side only), and
  its per-cell peak RSS >= RSS_REDUCTION_FACTOR below PR4's — skipped
  only for cells marked ``rss_cumulative`` (high-water mark not
  resettable on that host).
* ``pr6``: validates a freshly emitted ``BENCH_PR6.json`` (churn →
  2-hop local repair economics + fault-plane determinism) against the
  checked-in report: the churn trace must cover >= ~1% of the base
  graph's edges, total repair messages must sit at or below 1 /
  PR6_REPAIR_FACTOR of the fresh det-small run's messages, every
  repair batch and the final coloring must verify, every chaos cell
  must report engine-identical results with its fault plane actually
  firing, and all model metrics (fresh run, per-batch repair, chaos
  cells) must be bit-exact with the recording — the entire matrix is
  seeded, so any drift is an engine or protocol change.
* ``pr7``: validates a freshly emitted ``BENCH_PR7.json`` (active-set
  frontier economics) against the checked-in BENCH_PR7, BENCH_PR6 and
  BENCH_PR5 reports: the straggler cell must be schedule-identical
  (active-set vs always-step colorings and model metrics bit-equal),
  step >= PR7_STEP_REDUCTION x fewer nodes than the always-step
  reference with a steady-state frontier <= PR7_STEPPED_ROUND_FRACTION
  of n, and reproduce BENCH_PR6's fresh-cell rounds/messages/palette
  bit for bit; the scale cell must reproduce BENCH_PR5's stressed
  n = 10^6 cell the same way. Stepped-node counts are seeded and
  engine-deterministic, so they too must be bit-exact with the
  recording.
* ``pr8``: validates a freshly emitted ``BENCH_PR8.json`` (netplane
  multi-process equivalence matrix) against the checked-in report:
  every (workload, process count) cell must report the distributed
  coloring bit-identical to the sequential reference (``identical``)
  and valid against the d2 oracle, both pipelines and both graph
  families must appear, every workload must be exercised at 2 and 4
  processes, and all model metrics (rounds, messages, total bits,
  palette) must be bit-exact with the recording — the transport must
  be unobservable at the model level.
* ``pr9``: validates a freshly emitted ``BENCH_PR9.json`` (netplane
  chaos recovery) against the checked-in recording *and* the checked-in
  ``BENCH_PR8.json``: every workload must carry a control cell (clean
  4-process run) and a chaos cell (one shard killed mid-phase by the
  seeded schedule, respawned by the supervisor, recovered via
  rejoin-with-replay), both bit-identical to the sequential reference;
  chaos and control model metrics must be equal (recovery is
  unobservable), control cells must be bit-exact with BENCH_PR8's
  4-process cells, and model metrics plus the seeded kill schedule
  (victim, sync) must be bit-exact with the recording.
* ``pr10``: validates a freshly emitted ``BENCH_PR10.json`` (netplane
  active-set frontier economics) against the checked-in recording
  *and* the checked-in ``BENCH_PR9.json``: every cell must be
  bit-identical to the sequential reference and valid; each active-set
  cell needs an always-step twin with identical model metrics and
  >= PR10_STEP_REDUCTION x fewer stepped nodes; always-step control
  cells must be bit-exact with BENCH_PR9's controls (the engine
  unification is unobservable where nothing changed); and model
  metrics plus stepped-node counts must be bit-exact with the
  recording.

Usage:
    python3 ci/bench_gate.py pr2 BENCH_PR2.json BENCH_PR1.json
    python3 ci/bench_gate.py pr3 BENCH_PR3.json
    python3 ci/bench_gate.py pr4 BENCH_PR4.json BENCH_PR4.recorded.json
    python3 ci/bench_gate.py pr5 BENCH_PR5.json BENCH_PR5.recorded.json BENCH_PR4.json
    python3 ci/bench_gate.py pr6 BENCH_PR6.json BENCH_PR6.recorded.json
    python3 ci/bench_gate.py pr7 BENCH_PR7.json BENCH_PR7.recorded.json BENCH_PR6.json BENCH_PR5.json
    python3 ci/bench_gate.py pr8 BENCH_PR8.json BENCH_PR8.recorded.json
    python3 ci/bench_gate.py pr9 BENCH_PR9.json BENCH_PR9.recorded.json BENCH_PR8.json
    python3 ci/bench_gate.py pr10 BENCH_PR10.json BENCH_PR10.recorded.json BENCH_PR9.json

Importable for unit tests (``ci/test_bench_gate.py``): every check is a
pure function over parsed documents that raises ``GateError`` with a
diagnostic message on the first violation.
"""

from __future__ import annotations

import json
import sys

# Cells whose sequential side is faster than this are exempt from the
# overhead-ratio check: scheduler jitter on a shared runner dwarfs the
# signal below it.
NOISE_FLOOR_MS = 20.0
# Absolute parallel/sequential cap, the cross-machine backstop: PR1's
# worst recorded overhead was 2.2x, PR2's 1.78x, so any engine
# regression that doubles parallel cost trips this on any hardware.
OVERHEAD_CAP = 2.5
# Relative regression bound against the recorded baseline ratio.
RATIO_REGRESSION = 1.25

# The wall-clock budget for building one 10^6-node graph (acceptance
# criterion of the O(n+m) generator rebuild).
HUGE_BUILD_BUDGET_MS = 10_000.0

PR2_CELL_KEYS = {
    "graph", "algo", "runtime", "wall_ms", "rounds", "messages",
    "messages_per_round", "messages_per_sec", "phases", "palette",
    "valid", "n", "delta", "work_estimate",
}

PR3_CELL_KEYS = {
    "family", "graph", "n", "m", "delta", "mode", "algo", "runtime",
    "build_ms", "wall_ms", "rounds", "messages", "messages_per_sec",
    "palette", "work_estimate", "valid", "peak_rss_mb",
}

PR3_FAMILIES = {"gnp_capped", "random_regular", "grid"}

PR4_CELL_KEYS = {
    "family", "graph", "n", "m", "delta", "algo", "runtime", "build_ms",
    "wall_ms", "rounds", "messages", "messages_per_sec",
    "allocs_per_round", "palette", "valid", "peak_rss_mb",
}

# Acceptance factors for the PR4 message-plane rebuild (ISSUE 4): the
# recorded det-small n = 10^5 cell must show >= 10x fewer allocations per
# round than the pre-change plane, and the recorded rand-improved
# gnp_capped n = 10^5 cell must be >= 3x faster than the pre-change wall.
ALLOC_REDUCTION_FACTOR = 10.0
RAND_SPEEDUP_FACTOR = 3.0
# Allocation counts are deterministic per (binary, seed) but tiny
# environmental differences (allocator-independent library paths) get a
# small relative + absolute slack before a regression is declared.
ALLOC_REGRESSION_TOLERANCE = 1.10
ALLOC_REGRESSION_SLACK = 16.0

PR5_CELL_KEYS = {
    "family", "graph", "n", "m", "delta", "algo", "runtime", "build_ms",
    "wall_ms", "rounds", "messages", "messages_per_sec", "palette",
    "valid", "peak_rss_mb", "rss_cumulative",
}

# The stressed rand-improved workload shared by BENCH_PR4 and BENCH_PR5:
# the PR5 streaming-fold acceptance is measured on this cell.
PR5_STRESSED_GRAPH = "random_regular-d16-n100000-stressed-c0-1"
# Acceptance factor for the streaming similarity fold (ISSUE 5): the
# stressed cell's per-cell peak RSS must be >= 4x below the PR4
# recording of the same workload.
RSS_REDUCTION_FACTOR = 4.0
# Fresh runs on other hosts get a little allocator/kernel slack before a
# regression is declared; the recorded report gets none.
RSS_FRESH_TOLERANCE = 1.15


PR6_FRESH_KEYS = {
    "graph", "n", "m", "delta", "algo", "runtime", "build_ms", "wall_ms",
    "rounds", "messages", "palette", "valid", "peak_rss_mb",
    "rss_cumulative",
}

PR6_REPAIR_KEYS = {
    "batch", "events", "inserted", "deleted", "touched", "damaged",
    "rounds", "messages", "wall_ms", "palette_drift", "valid",
}

PR6_CHAOS_KEYS = {
    "graph", "algo", "drop_ppm", "rounds", "messages", "faults_dropped",
    "engines_identical",
}

# Acceptance factor for the PR6 local-repair economics (ISSUE 6): total
# repair messages across the whole churn trace must be <= the fresh
# det-small run's messages divided by this.
PR6_REPAIR_FACTOR = 10.0
# The churn trace must cover at least this fraction of the base graph's
# edges (the acceptance criterion is "~1% edge churn"; Poisson batch
# sizes get a little slack below the nominal 1%).
PR6_MIN_CHURN_FRACTION = 0.009


PR7_STRAGGLER_KEYS = {
    "graph", "n", "m", "delta", "algo", "runtime", "build_ms", "wall_ms",
    "rounds", "messages", "palette", "valid", "stepped_nodes",
    "stepped_per_round", "wall_ms_reference", "stepped_nodes_reference",
    "steps_ratio", "reference_identical",
}

PR7_SCALE_KEYS = {
    "graph", "n", "m", "delta", "algo", "runtime", "build_ms", "wall_ms",
    "rounds", "messages", "palette", "valid", "stepped_nodes",
    "stepped_per_round",
}

# Acceptance factors for the PR7 active-set engine (ISSUE 7): the
# straggler det-small n = 10^5 cell must step >= 5x fewer nodes under
# active-set scheduling than under the always-step reference, and its
# steady-state frontier (stepped nodes per round) must sit at or below
# 5% of n.
PR7_STEP_REDUCTION = 5.0
PR7_STEPPED_ROUND_FRACTION = 0.05


PR8_CELL_KEYS = {
    "graph", "algo", "n", "delta", "processes", "wall_ms_sequential",
    "wall_ms_net", "rounds", "messages", "total_bits", "palette",
    "identical", "valid",
}

# Shard process counts every PR8 workload must be exercised at
# (mirrors benchkit::pr8::SHARD_COUNTS).
PR8_PROCESS_COUNTS = {2, 4}

# Model metrics that must survive the transport swap bit for bit.
PR8_MODEL_KEYS = ("n", "delta", "rounds", "messages", "total_bits",
                  "palette")

# PR9 chaos-recovery cells: the PR8 columns plus the kill-schedule
# provenance (mirrors benchkit::pr9::Pr9Cell).
PR9_CELL_KEYS = PR8_CELL_KEYS | {
    "chaos", "chaos_seed", "killed_shard", "kill_sync", "respawned",
}

# Every PR9 cell runs at this shard count (mirrors
# benchkit::pr9::PROCESSES).
PR9_PROCESSES = 4

# Model metrics that must survive a shard kill bit for bit — identical
# to PR8's: recovery must be unobservable too.
PR9_MODEL_KEYS = PR8_MODEL_KEYS

# Kill-schedule facts that are seeded and therefore reproducible.
PR9_SCHEDULE_KEYS = ("chaos_seed", "killed_shard", "kill_sync")

# PR10 frontier-economics cells: the PR8 columns plus the scheduling
# mode and the stepped-node total (mirrors benchkit::pr10::Pr10Cell).
PR10_CELL_KEYS = PR8_CELL_KEYS | {"scheduling", "stepped_nodes"}

# Every PR10 cell runs at this shard count (mirrors
# benchkit::pr10::PROCESSES).
PR10_PROCESSES = 4

PR10_SCHEDULES = {"active-set", "always-step"}

# Model metrics that must be identical between the two schedules of the
# same workload — everything except stepped_nodes, the one column
# scheduling is allowed to move.
PR10_MODEL_KEYS = PR8_MODEL_KEYS

# Acceptance factor for the netplane active-set inheritance (ISSUE 10):
# the straggler workload must step >= 3x fewer nodes under active-set
# than under always-step, across the same 4-process mesh (mirrors
# benchkit::pr10::STEP_REDUCTION).
PR10_STEP_REDUCTION = 3


class GateError(AssertionError):
    """A benchmark gate violation."""


def require(cond, message):
    if not cond:
        raise GateError(message)


def check_pr2_shape(pr2):
    """Structural validity of a BENCH_PR2 document."""
    cells = pr2["cells"]
    require(len(cells) >= 12, f"expected >= 12 cells, got {len(cells)}")
    for c in cells:
        missing = PR2_CELL_KEYS - c.keys()
        require(not missing, f"cell missing {missing}")
        require(c["valid"] is True, f"invalid coloring in cell {c}")
    triples = {(c["graph"], c["algo"], c["runtime"]) for c in cells}
    require(len(triples) == len(cells), "duplicate (graph, algo, runtime) cells")
    runtimes = {c["runtime"] for c in cells}
    require("sequential" in runtimes and "auto" in runtimes,
            f"need sequential and auto runtimes, got {runtimes}")
    require(any(c["n"] >= 2000 for c in cells), "need n >= 2000 cells")


def check_shared_cells_bit_exact(base_doc, new_doc, min_shared=12):
    """Model metrics (rounds, messages) of shared cells are bit-exact —
    seeds are fixed and the engines are required to be observationally
    identical across PRs."""
    base = {(c["graph"], c["algo"], c["runtime"]): c for c in base_doc["cells"]}
    new = {(c["graph"], c["algo"], c["runtime"]): c for c in new_doc["cells"]}
    shared = sorted(base.keys() & new.keys())
    require(len(shared) >= min_shared,
            f"expected >= {min_shared} shared cells, got {len(shared)}")
    for k in shared:
        b, n = base[k], new[k]
        require(n["rounds"] == b["rounds"],
                f"{k}: rounds drifted {b['rounds']} -> {n['rounds']}")
        require(n["messages"] == b["messages"],
                f"{k}: messages drifted {b['messages']} -> {n['messages']}")
    return shared


def overhead_ratios(doc):
    """Per-(graph, algo) parallel/sequential wall-clock ratio, paired with
    the sequential wall-clock it was computed from."""
    out = {}
    by_key = {(c["graph"], c["algo"], c["runtime"]): c for c in doc["cells"]}
    for (g, a, r), c in by_key.items():
        if r.startswith("parallel"):
            seq = by_key.get((g, a, "sequential"))
            if seq:
                out[(g, a)] = (c["wall_ms"] / max(seq["wall_ms"], 1e-9),
                               seq["wall_ms"])
    return out


def check_overhead_ratios(base_doc, new_doc, log=print):
    """Within-run parallel-overhead ratios must not regress by more than
    RATIO_REGRESSION relative to the recorded baseline, skipping cells
    under the noise floor; OVERHEAD_CAP backstops absolutely (the
    baseline was recorded on a 1-core container, where the ratio is pure
    overhead, so a multicore runner gets slack from the relative check
    alone)."""
    old_r, new_r = overhead_ratios(base_doc), overhead_ratios(new_doc)
    regressions = []
    for k in sorted(old_r.keys() & new_r.keys()):
        (old, old_seq), (new, new_seq) = old_r[k], new_r[k]
        rel = new / old
        if min(old_seq, new_seq) < NOISE_FLOOR_MS:
            log(f"{'/'.join(k):45s} parallel overhead {old:5.2f}x -> {new:5.2f}x"
                f"  (skipped: sequential side under {NOISE_FLOOR_MS} ms)")
            continue
        bad = rel > RATIO_REGRESSION or new > OVERHEAD_CAP
        mark = " <-- REGRESSION" if bad else ""
        log(f"{'/'.join(k):45s} parallel overhead {old:5.2f}x -> {new:5.2f}x"
            f"  (rel {rel:5.2f}){mark}")
        if bad:
            regressions.append((k, rel, new))
    require(not regressions,
            f">{RATIO_REGRESSION}x parallel-overhead regressions vs baseline: "
            f"{regressions}")


def validate_pr2(pr2, pr1, log=print):
    """The full PR2 gate: shape, shared-cell bit-exactness, overhead."""
    check_pr2_shape(pr2)
    shared = check_shared_cells_bit_exact(pr1, pr2)
    check_overhead_ratios(pr1, pr2, log=log)
    log(f"BENCH_PR2.json OK: {len(pr2['cells'])} cells; {len(shared)} shared "
        f"cells bit-exact; overhead ratios within {RATIO_REGRESSION}x of PR1")


def validate_pr3(pr3, log=print):
    """The PR3 scaling-matrix gate.

    * every cell carries the full column set, no duplicate
      (graph, runtime, mode) triples, every cell valid;
    * >= 9 valid coloring cells, spanning all three families and the
      sequential/parallel/auto runtimes, including n >= 10^5 runs with
      nonzero rounds and messages;
    * build-only coverage at n >= 10^6 for every family, each within the
      10-second build budget.
    """
    require(pr3.get("bench") == "BENCH_PR3",
            f"not a BENCH_PR3 document: {pr3.get('bench')!r}")
    cells = pr3["cells"]
    for c in cells:
        missing = PR3_CELL_KEYS - c.keys()
        require(not missing, f"cell missing {missing}")
        require(c["valid"] is True, f"invalid cell {c['graph']}/{c['runtime']}")
    triples = {(c["graph"], c["runtime"], c["mode"]) for c in cells}
    require(len(triples) == len(cells), "duplicate (graph, runtime, mode) cells")

    coloring = [c for c in cells if c["mode"] == "coloring"]
    require(len(coloring) >= 9,
            f"expected >= 9 valid coloring cells, got {len(coloring)}")
    for c in coloring:
        require(c["rounds"] > 0 and c["messages"] > 0,
                f"coloring cell {c['graph']}/{c['runtime']} ran 0 rounds")
    families = {c["family"] for c in coloring}
    require(PR3_FAMILIES <= families,
            f"coloring cells missing families: {PR3_FAMILIES - families}")
    runtimes = {c["runtime"] for c in coloring}
    require("sequential" in runtimes and "auto" in runtimes
            and any(r.startswith("parallel") for r in runtimes),
            f"coloring cells must span sequential/parallel/auto, got {runtimes}")
    big_coloring = [c for c in coloring if c["n"] >= 100_000]
    require(big_coloring, "no n >= 10^5 coloring cells")

    builds = [c for c in cells if c["mode"] == "build"]
    huge = [c for c in builds if c["n"] >= 1_000_000]
    huge_families = {c["family"] for c in huge}
    require(PR3_FAMILIES <= huge_families,
            f"n >= 10^6 build cells missing families: "
            f"{PR3_FAMILIES - huge_families}")
    for c in huge:
        require(c["build_ms"] < HUGE_BUILD_BUDGET_MS,
                f"{c['graph']}: 10^6-node build took {c['build_ms']} ms, "
                f"budget {HUGE_BUILD_BUDGET_MS} ms")
    log(f"BENCH_PR3.json OK: {len(cells)} cells ({len(coloring)} coloring, "
        f"{len(builds)} build; {len(big_coloring)} coloring cells at "
        f"n >= 1e5; 1e6 builds within {HUGE_BUILD_BUDGET_MS / 1000:.0f} s)")


def check_pr4_shape(pr4):
    """Structural validity of a BENCH_PR4 document."""
    require(pr4.get("bench") == "BENCH_PR4",
            f"not a BENCH_PR4 document: {pr4.get('bench')!r}")
    pre = pr4.get("pre_change", {})
    require("allocs_per_round_det_1e5" in pre and "rand_gnp_1e5_wall_ms" in pre,
            "pre_change baselines missing")
    cells = pr4["cells"]
    for c in cells:
        missing = PR4_CELL_KEYS - c.keys()
        require(not missing, f"cell missing {missing}")
        require(c["valid"] is True, f"invalid cell {c['graph']}/{c['algo']}")
    triples = {(c["graph"], c["algo"], c["runtime"]) for c in cells}
    require(len(triples) == len(cells), "duplicate (graph, algo, runtime) cells")

    det_1e5 = [c for c in cells
               if c["family"] == "gnp_capped" and c["n"] >= 100_000
               and c["algo"].startswith("det-small")]
    require(det_1e5, "no det-small gnp_capped n >= 10^5 cell")
    rand_cells = [c for c in cells
                  if c["algo"].startswith("rand-improved") and c["n"] >= 100_000]
    require(len(rand_cells) >= 2,
            f"expected >= 2 rand-improved n >= 10^5 cells, got {len(rand_cells)}")
    huge = [c for c in cells
            if c["n"] >= 1_000_000 and c["algo"].startswith("det-small")
            and c["runtime"] == "sequential"]
    require(huge, "no n >= 10^6 det-small sequential coloring cell")
    for c in huge:
        require(c["rounds"] > 0 and c["messages"] > 0,
                f"10^6 cell {c['graph']} ran 0 rounds")


def check_pr4_acceptance(pr4):
    """The recorded report must evidence the ISSUE-4 acceptance criteria:
    >= 10x allocations/round reduction on the det-small n = 10^5 cell and
    >= 3x wall-clock speedup on the rand-improved gnp_capped cell, both
    against the measured pre-change constants embedded in the report.

    Run this on the *checked-in* report (wall-clock is machine-specific;
    the recorded numbers come from the recording machine, which also
    measured the pre-change constants)."""
    pre = pr4["pre_change"]
    det = [c for c in pr4["cells"]
           if c["family"] == "gnp_capped" and c["n"] >= 100_000
           and c["algo"].startswith("det-small")]
    for c in det:
        require(c["allocs_per_round"] >= 0.0,
                f"{c['graph']}: allocs_per_round not measured "
                "(harness built without count-allocs)")
        bound = pre["allocs_per_round_det_1e5"] / ALLOC_REDUCTION_FACTOR
        require(c["allocs_per_round"] <= bound,
                f"{c['graph']}: {c['allocs_per_round']} allocs/round > "
                f"{bound} (pre-change / {ALLOC_REDUCTION_FACTOR})")
    rand_gnp = [c for c in pr4["cells"]
                if c["family"] == "gnp_capped" and c["n"] >= 100_000
                and c["algo"].startswith("rand-improved")]
    require(rand_gnp, "no rand-improved gnp_capped n >= 10^5 cell")
    for c in rand_gnp:
        bound = pre["rand_gnp_1e5_wall_ms"] / RAND_SPEEDUP_FACTOR
        require(c["wall_ms"] <= bound,
                f"{c['graph']}: rand wall {c['wall_ms']} ms > {bound} ms "
                f"(pre-change / {RAND_SPEEDUP_FACTOR})")


def check_allocs_per_round(recorded, fresh, log=print):
    """Allocation counts must not regress between recorded benches: for
    every shared cell the fresh count must stay within
    ALLOC_REGRESSION_TOLERANCE (plus a small absolute slack) of the
    recorded one. Counts are requests, not allocator internals, so they
    are machine-portable for a fixed seed."""
    rec = {(c["graph"], c["algo"], c["runtime"]): c for c in recorded["cells"]}
    new = {(c["graph"], c["algo"], c["runtime"]): c for c in fresh["cells"]}
    checked = 0
    for k in sorted(rec.keys() & new.keys()):
        r, f = rec[k]["allocs_per_round"], new[k]["allocs_per_round"]
        if r < 0.0:
            continue  # recorded without counting: nothing to hold against
        require(f >= 0.0,
                f"{k}: recorded report has allocs/round but the fresh run "
                "was built without count-allocs")
        bound = r * ALLOC_REGRESSION_TOLERANCE + ALLOC_REGRESSION_SLACK
        mark = " <-- REGRESSION" if f > bound else ""
        log(f"{'/'.join(k):60s} allocs/round {r:9.1f} -> {f:9.1f}{mark}")
        require(f <= bound,
                f"{k}: allocations/round regressed {r} -> {f} "
                f"(bound {bound:.1f})")
        checked += 1
    require(checked > 0, "no shared cells carried a measured allocs/round")


def validate_pr4(fresh, recorded, log=print):
    """The full PR4 gate: fresh-report shape, recorded-report shape +
    acceptance, bit-exact model metrics on shared cells, and the
    allocations/round no-regression rule."""
    check_pr4_shape(fresh)
    check_pr4_shape(recorded)
    check_pr4_acceptance(recorded)
    shared = check_shared_cells_bit_exact(recorded, fresh, min_shared=4)
    check_allocs_per_round(recorded, fresh, log=log)
    log(f"BENCH_PR4.json OK: {len(fresh['cells'])} cells; {len(shared)} "
        f"shared cells bit-exact; allocations/round within "
        f"{ALLOC_REGRESSION_TOLERANCE}x of the recorded report")


def pr5_stressed_cell(doc, bench):
    """The stressed n = 10^5 rand-improved cell of a PR4/PR5 document."""
    cells = [c for c in doc["cells"]
             if c["graph"] == PR5_STRESSED_GRAPH
             and c["algo"].startswith("rand-improved")]
    require(cells, f"{bench}: no stressed cell {PR5_STRESSED_GRAPH!r}")
    require(len(cells) == 1, f"{bench}: duplicate stressed cells")
    return cells[0]


def check_pr5_shape(pr5):
    """Structural validity of a BENCH_PR5 document."""
    require(pr5.get("bench") == "BENCH_PR5",
            f"not a BENCH_PR5 document: {pr5.get('bench')!r}")
    cells = pr5["cells"]
    for c in cells:
        missing = PR5_CELL_KEYS - c.keys()
        require(not missing, f"cell missing {missing}")
        require(c["valid"] is True, f"invalid cell {c['graph']}/{c['algo']}")
        require(c["rounds"] > 0 and c["messages"] > 0,
                f"cell {c['graph']} ran 0 rounds")
    triples = {(c["graph"], c["algo"], c["runtime"]) for c in cells}
    require(len(triples) == len(cells), "duplicate (graph, algo, runtime) cells")
    pr5_stressed_cell(pr5, "BENCH_PR5")
    huge = [c for c in cells
            if c["n"] >= 1_000_000 and c["algo"].startswith("rand-improved")]
    require(huge, "no n >= 10^6 rand-improved coloring cell")


def check_pr5_rss_reduction(pr5, pr4, bench, tolerance=1.0,
                            allow_cumulative_skip=False, log=print):
    """The stressed cell's per-cell peak RSS must sit at least
    RSS_REDUCTION_FACTOR below the PR4 recording of the same workload.
    A cell marked rss_cumulative carries process history (the host could
    not reset the high-water mark): on a *fresh* CI run that is an
    environment limitation and the check is skipped with a notice, but
    the checked-in recorded report exists to evidence the acceptance
    criterion, so a cumulative recording is a hard failure (re-record on
    a clear_refs-capable host)."""
    new = pr5_stressed_cell(pr5, bench)
    old = pr5_stressed_cell(pr4, "BENCH_PR4")
    if new.get("rss_cumulative"):
        require(allow_cumulative_skip,
                f"{bench}: the stressed cell is rss_cumulative — the "
                "recorded report cannot evidence the RSS acceptance; "
                "re-record it on a host where /proc/self/clear_refs is "
                "writable")
        log(f"{bench}: stressed cell RSS is cumulative on this host; "
            "skipping the reduction check")
        return
    require(new["peak_rss_mb"] > 0.0,
            f"{bench}: stressed cell carries no RSS measurement")
    bound = old["peak_rss_mb"] / RSS_REDUCTION_FACTOR * tolerance
    log(f"{bench}: stressed-cell peak RSS {old['peak_rss_mb']:.1f} -> "
        f"{new['peak_rss_mb']:.1f} MiB "
        f"({old['peak_rss_mb'] / max(new['peak_rss_mb'], 1e-9):.2f}x, "
        f"bound {bound:.1f})")
    require(new["peak_rss_mb"] <= bound,
            f"{bench}: stressed cell peak RSS {new['peak_rss_mb']} MiB > "
            f"{bound:.1f} (PR4 recorded {old['peak_rss_mb']} / "
            f"{RSS_REDUCTION_FACTOR}, tolerance {tolerance})")


def check_pr5_pr4_continuity(pr5, pr4):
    """The streaming fold is receiver-side bookkeeping only, so the
    stressed workload's model metrics must be bit-exact with the PR4
    recording."""
    new = pr5_stressed_cell(pr5, "BENCH_PR5")
    old = pr5_stressed_cell(pr4, "BENCH_PR4")
    require(new["rounds"] == old["rounds"],
            f"stressed cell rounds drifted from the PR4 recording: "
            f"{old['rounds']} -> {new['rounds']}")
    require(new["messages"] == old["messages"],
            f"stressed cell messages drifted from the PR4 recording: "
            f"{old['messages']} -> {new['messages']}")


def validate_pr5(fresh, recorded, pr4, log=print):
    """The full PR5 gate: fresh + recorded shape, bit-exact model metrics
    on shared cells, bit-exact continuity of the stressed cell with the
    PR4 recording, and the >= RSS_REDUCTION_FACTOR peak-RSS reduction
    (strict on the recorded report, small host tolerance on the fresh
    one)."""
    check_pr5_shape(fresh)
    check_pr5_shape(recorded)
    check_pr4_shape(pr4)
    check_pr5_pr4_continuity(recorded, pr4)
    check_pr5_pr4_continuity(fresh, pr4)
    check_pr5_rss_reduction(recorded, pr4, "recorded", log=log)
    check_pr5_rss_reduction(fresh, pr4, "fresh",
                            tolerance=RSS_FRESH_TOLERANCE,
                            allow_cumulative_skip=True, log=log)
    shared = check_shared_cells_bit_exact(recorded, fresh, min_shared=2)
    log(f"BENCH_PR5.json OK: {len(fresh['cells'])} cells; {len(shared)} "
        f"shared cells bit-exact; stressed cell >= "
        f"{RSS_REDUCTION_FACTOR}x below the PR4 RSS recording")


def check_pr6_shape(pr6):
    """Structural + acceptance validity of one BENCH_PR6 document."""
    require(pr6.get("bench") == "BENCH_PR6",
            f"not a BENCH_PR6 document: {pr6.get('bench')!r}")
    fresh = pr6["fresh"]
    missing = PR6_FRESH_KEYS - fresh.keys()
    require(not missing, f"fresh cell missing {missing}")
    require(fresh["valid"] is True, "fresh baseline coloring invalid")
    require(fresh["rounds"] > 0 and fresh["messages"] > 0,
            "fresh baseline ran 0 rounds")
    require(fresh["n"] >= 100_000,
            f"fresh baseline below the 10^5 tier: n = {fresh['n']}")

    churn = pr6["churn"]
    cells = churn["cells"]
    require(len(cells) == churn["batches"],
            f"batches field {churn['batches']} != {len(cells)} cells")
    require(len(cells) >= 5, f"expected >= 5 churn batches, got {len(cells)}")
    for c in cells:
        missing = PR6_REPAIR_KEYS - c.keys()
        require(not missing, f"repair cell missing {missing}")
        require(c["valid"] is True,
                f"repair batch {c['batch']} left an invalid coloring")
    require(churn["final_valid"] is True, "final coloring invalid")
    frac = churn["events"] / fresh["m"]
    require(frac >= PR6_MIN_CHURN_FRACTION,
            f"churn trace covers only {frac:.4%} of edges "
            f"(needs >= {PR6_MIN_CHURN_FRACTION:.1%})")
    total = sum(c["messages"] for c in cells)
    require(total == churn["total_repair_messages"],
            f"total_repair_messages {churn['total_repair_messages']} != "
            f"sum of cells {total}")
    bound = fresh["messages"] / PR6_REPAIR_FACTOR
    require(total <= bound,
            f"repair spent {total} messages, over fresh / "
            f"{PR6_REPAIR_FACTOR} = {bound:.0f}")

    chaos = pr6["chaos"]["cells"]
    require(len(chaos) >= 4, f"expected >= 4 chaos cells, got {len(chaos)}")
    keys = {(c["graph"], c["algo"], c["drop_ppm"]) for c in chaos}
    require(len(keys) == len(chaos), "duplicate chaos cells")
    for c in chaos:
        missing = PR6_CHAOS_KEYS - c.keys()
        require(not missing, f"chaos cell missing {missing}")
        require(c["engines_identical"] is True,
                f"chaos cell {c['graph']}/{c['algo']}/{c['drop_ppm']}ppm: "
                "engines diverged under faults")
        require(c["faults_dropped"] > 0,
                f"chaos cell {c['graph']}/{c['algo']}/{c['drop_ppm']}ppm: "
                "fault plane never fired")
    algos = {c["algo"] for c in chaos}
    require(len(algos) >= 2,
            f"chaos cells must span >= 2 pipelines, got {algos}")
    require(len({c["drop_ppm"] for c in chaos}) >= 2,
            "chaos cells must span >= 2 drop rates")


def check_pr6_bit_exact(recorded, fresh):
    """Everything in the PR6 matrix is seeded — fresh runs must reproduce
    the recorded model metrics bit for bit."""
    r, f = recorded["fresh"], fresh["fresh"]
    for k in ("rounds", "messages", "palette", "n", "m"):
        require(f[k] == r[k],
                f"fresh baseline {k} drifted {r[k]} -> {f[k]}")
    rec_cells = {c["batch"]: c for c in recorded["churn"]["cells"]}
    new_cells = {c["batch"]: c for c in fresh["churn"]["cells"]}
    require(rec_cells.keys() == new_cells.keys(),
            f"churn batch sets differ: {sorted(rec_cells)} vs "
            f"{sorted(new_cells)}")
    for b in sorted(rec_cells):
        rc, nc = rec_cells[b], new_cells[b]
        for k in ("events", "inserted", "deleted", "touched", "damaged",
                  "rounds", "messages", "palette_drift"):
            require(nc[k] == rc[k],
                    f"churn batch {b}: {k} drifted {rc[k]} -> {nc[k]}")
    rec_chaos = {(c["graph"], c["algo"], c["drop_ppm"]): c
                 for c in recorded["chaos"]["cells"]}
    new_chaos = {(c["graph"], c["algo"], c["drop_ppm"]): c
                 for c in fresh["chaos"]["cells"]}
    require(rec_chaos.keys() == new_chaos.keys(),
            "chaos cell sets differ")
    for k in sorted(rec_chaos):
        rc, nc = rec_chaos[k], new_chaos[k]
        for field in ("rounds", "messages", "faults_dropped"):
            require(nc[field] == rc[field],
                    f"chaos cell {k}: {field} drifted "
                    f"{rc[field]} -> {nc[field]}")


def validate_pr6(fresh, recorded, log=print):
    """The full PR6 gate: shape + acceptance on both documents, then
    bit-exact model metrics between the fresh run and the recording."""
    check_pr6_shape(fresh)
    check_pr6_shape(recorded)
    check_pr6_bit_exact(recorded, fresh)
    total = fresh["churn"]["total_repair_messages"]
    base = fresh["fresh"]["messages"]
    log(f"BENCH_PR6.json OK: {len(fresh['churn']['cells'])} repair batches "
        f"({fresh['churn']['events']} events), repair messages {total} <= "
        f"fresh {base} / {PR6_REPAIR_FACTOR:.0f}; "
        f"{len(fresh['chaos']['cells'])} chaos cells engine-identical; "
        f"all model metrics bit-exact with the recording")


def check_pr7_shape(pr7):
    """Structural + acceptance validity of one BENCH_PR7 document."""
    require(pr7.get("bench") == "BENCH_PR7",
            f"not a BENCH_PR7 document: {pr7.get('bench')!r}")
    s = pr7["straggler"]
    missing = PR7_STRAGGLER_KEYS - s.keys()
    require(not missing, f"straggler cell missing {missing}")
    require(s["valid"] is True, "straggler coloring invalid")
    require(s["rounds"] > 0 and s["messages"] > 0,
            "straggler cell ran 0 rounds")
    require(s["n"] >= 100_000,
            f"straggler cell below the 10^5 tier: n = {s['n']}")
    require(s["reference_identical"] is True,
            "active-set and always-step schedules diverged on the "
            "straggler cell")
    require(s["steps_ratio"] >= PR7_STEP_REDUCTION,
            f"straggler frontier stepped only {s['steps_ratio']:.1f}x "
            f"fewer nodes than always-step (needs >= {PR7_STEP_REDUCTION}x)")
    bound = PR7_STEPPED_ROUND_FRACTION * s["n"]
    require(s["stepped_per_round"] <= bound,
            f"straggler steady-state frontier {s['stepped_per_round']:.1f} "
            f"nodes/round exceeds {PR7_STEPPED_ROUND_FRACTION:.0%} of "
            f"n = {s['n']} ({bound:.0f})")
    c = pr7["scale"]
    missing = PR7_SCALE_KEYS - c.keys()
    require(not missing, f"scale cell missing {missing}")
    require(c["valid"] is True, "scale coloring invalid")
    require(c["rounds"] > 0 and c["messages"] > 0, "scale cell ran 0 rounds")
    require(c["n"] >= 1_000_000,
            f"scale cell below the 10^6 tier: n = {c['n']}")


def check_pr7_pr6_continuity(pr7, pr6):
    """The active-set engine is a scheduling change only, so the
    straggler cell must reproduce BENCH_PR6's fresh recording of the
    same workload bit for bit."""
    s, fresh = pr7["straggler"], pr6["fresh"]
    require(s["graph"] == fresh["graph"],
            f"straggler workload {s['graph']!r} is not BENCH_PR6's fresh "
            f"cell {fresh['graph']!r}")
    for k in ("n", "m", "delta", "rounds", "messages", "palette"):
        require(s[k] == fresh[k],
                f"straggler {k} drifted from the PR6 recording: "
                f"{fresh[k]} -> {s[k]}")


def check_pr7_pr5_continuity(pr7, pr5):
    """The scale cell must reproduce BENCH_PR5's stressed n = 10^6
    rand-improved recording bit for bit."""
    c = pr7["scale"]
    old = [x for x in pr5["cells"] if x["graph"] == c["graph"]]
    require(old, f"BENCH_PR5 has no cell for workload {c['graph']!r}")
    require(len(old) == 1, f"BENCH_PR5 has duplicate {c['graph']!r} cells")
    for k in ("n", "m", "delta", "rounds", "messages", "palette"):
        require(c[k] == old[0][k],
                f"scale cell {k} drifted from the PR5 recording: "
                f"{old[0][k]} -> {c[k]}")


def check_pr7_bit_exact(recorded, fresh):
    """Stepped-node counts are a pure function of (seed, schedule,
    engine), so fresh runs must reproduce the recorded model metrics
    and frontier sizes exactly."""
    for section in ("straggler", "scale"):
        r, f = recorded[section], fresh[section]
        keys = ("rounds", "messages", "palette", "stepped_nodes")
        if section == "straggler":
            keys += ("stepped_nodes_reference",)
        for k in keys:
            require(f[k] == r[k],
                    f"{section}: {k} drifted {r[k]} -> {f[k]}")


def validate_pr7(fresh, recorded, pr6, pr5, log=print):
    """The full PR7 gate: shape + acceptance on both documents,
    continuity with the PR6 and PR5 recordings, then bit-exact model
    metrics and stepped-node counts between fresh run and recording."""
    check_pr7_shape(fresh)
    check_pr7_shape(recorded)
    check_pr7_pr6_continuity(recorded, pr6)
    check_pr7_pr6_continuity(fresh, pr6)
    check_pr7_pr5_continuity(recorded, pr5)
    check_pr7_pr5_continuity(fresh, pr5)
    check_pr7_bit_exact(recorded, fresh)
    s = fresh["straggler"]
    log(f"BENCH_PR7.json OK: straggler frontier {s['stepped_per_round']:.1f} "
        f"nodes/round ({s['steps_ratio']:.1f}x below always-step, bound "
        f"{PR7_STEP_REDUCTION}x), schedules bit-identical; straggler and "
        f"scale cells bit-exact with the PR6/PR5 recordings")


def check_pr8_shape(pr8):
    """Structural + acceptance validity of one BENCH_PR8 document."""
    require(pr8.get("bench") == "BENCH_PR8",
            f"not a BENCH_PR8 document: {pr8.get('bench')!r}")
    cells = pr8["cells"]
    require(cells, "no cells in BENCH_PR8 report")
    for c in cells:
        missing = PR8_CELL_KEYS - c.keys()
        require(not missing, f"cell {c.get('graph')!r} missing {missing}")
        key = f"{c['graph']} x{c['processes']}"
        require(c["identical"] is True,
                f"{key}: distributed run diverged from the sequential "
                "reference (colorings or metrics not bit-identical)")
        require(c["valid"] is True, f"{key}: coloring invalid")
        require(c["rounds"] > 0 and c["messages"] > 0,
                f"{key}: ran 0 rounds")
        require(c["processes"] in PR8_PROCESS_COUNTS,
                f"{key}: unexpected process count {c['processes']}")
    algos = {c["algo"] for c in cells}
    require({"det-small", "rand-improved"} <= algos,
            f"matrix must cover both pipelines, got {sorted(algos)}")
    for fam in ("gnp", "regular"):
        require(any(f"-{fam}-" in c["graph"] for c in cells),
                f"matrix has no {fam} workload")
    for graph in {c["graph"] for c in cells}:
        have = {c["processes"] for c in cells if c["graph"] == graph}
        missing = PR8_PROCESS_COUNTS - have
        require(not missing,
                f"{graph}: not exercised at process counts {missing}")


def check_pr8_bit_exact(recorded, fresh):
    """Everything is seeded and the transport is contractually
    unobservable, so fresh model metrics must reproduce the recording
    exactly, cell for cell."""
    rec = {(c["graph"], c["processes"]): c for c in recorded["cells"]}
    require(len(rec) == len(recorded["cells"]),
            "recorded report has duplicate (graph, processes) cells")
    for c in fresh["cells"]:
        key = (c["graph"], c["processes"])
        require(key in rec,
                f"fresh cell {c['graph']} x{c['processes']} has no "
                "recorded counterpart")
        for k in PR8_MODEL_KEYS:
            require(c[k] == rec[key][k],
                    f"{c['graph']} x{c['processes']}: {k} drifted "
                    f"{rec[key][k]} -> {c[k]}")
    require(len(fresh["cells"]) == len(recorded["cells"]),
            f"cell count drifted {len(recorded['cells'])} -> "
            f"{len(fresh['cells'])}")


def validate_pr8(fresh, recorded, log=print):
    """The full PR8 gate: shape + acceptance on both documents, then
    bit-exact model metrics between fresh run and recording."""
    check_pr8_shape(fresh)
    check_pr8_shape(recorded)
    check_pr8_bit_exact(recorded, fresh)
    workloads = {c["graph"] for c in fresh["cells"]}
    log(f"BENCH_PR8.json OK: {len(fresh['cells'])} cells across "
        f"{len(workloads)} workloads x processes {sorted(PR8_PROCESS_COUNTS)}"
        f", all distributed runs bit-identical to the sequential reference "
        f"and bit-exact with the recording")


def check_pr9_shape(pr9):
    """Structural + acceptance validity of one BENCH_PR9 document."""
    require(pr9.get("bench") == "BENCH_PR9",
            f"not a BENCH_PR9 document: {pr9.get('bench')!r}")
    cells = pr9["cells"]
    require(cells, "no cells in BENCH_PR9 report")
    for c in cells:
        missing = PR9_CELL_KEYS - c.keys()
        require(not missing, f"cell {c.get('graph')!r} missing {missing}")
        key = f"{c['graph']} chaos={c['chaos']}"
        require(c["processes"] == PR9_PROCESSES,
                f"{key}: unexpected process count {c['processes']}")
        require(c["identical"] is True,
                f"{key}: run diverged from the sequential reference "
                "(colorings or metrics not bit-identical)")
        require(c["valid"] is True, f"{key}: coloring invalid")
        require(c["rounds"] > 0 and c["messages"] > 0,
                f"{key}: ran 0 rounds")
        if c["chaos"]:
            require(c["respawned"] is True,
                    f"{key}: the kill never fired — no recovery exercised")
            require(0 <= c["killed_shard"] < PR9_PROCESSES,
                    f"{key}: killed_shard {c['killed_shard']} out of range")
            require(c["kill_sync"] > 0, f"{key}: kill_sync must be > 0")
        else:
            require(c["respawned"] is False and c["chaos_seed"] == 0
                    and c["killed_shard"] == 0 and c["kill_sync"] == 0,
                    f"{key}: control cell carries chaos provenance")
    algos = {c["algo"] for c in cells}
    require({"det-small", "rand-improved"} <= algos,
            f"matrix must cover both pipelines, got {sorted(algos)}")
    for graph in {c["graph"] for c in cells}:
        have = {c["chaos"] for c in cells if c["graph"] == graph}
        require(have == {False, True},
                f"{graph}: needs both a control and a chaos cell, "
                f"got chaos={sorted(have)}")


def check_pr9_chaos_vs_control(pr9):
    """Losing and recovering a shard must be unobservable: per workload,
    the chaos cell's model metrics equal the control cell's exactly."""
    by_key = {}
    for c in pr9["cells"]:
        key = (c["graph"], c["chaos"])
        require(key not in by_key,
                f"duplicate cell {c['graph']} chaos={c['chaos']}")
        by_key[key] = c
    for graph in {c["graph"] for c in pr9["cells"]}:
        control, chaos = by_key[(graph, False)], by_key[(graph, True)]
        for k in PR9_MODEL_KEYS:
            require(chaos[k] == control[k],
                    f"{graph}: {k} differs between chaos and control "
                    f"({chaos[k]} vs {control[k]}) — recovery is observable")


def check_pr9_against_pr8(pr9, pr8):
    """The control cells rerun PR8 workloads at 4 processes, so their
    model metrics must be bit-exact with the checked-in BENCH_PR8."""
    rec = {(c["graph"], c["processes"]): c for c in pr8["cells"]}
    for c in pr9["cells"]:
        if c["chaos"]:
            continue
        key = (c["graph"], PR9_PROCESSES)
        require(key in rec,
                f"control cell {c['graph']} has no BENCH_PR8 counterpart "
                "at 4 processes")
        for k in PR9_MODEL_KEYS:
            require(c[k] == rec[key][k],
                    f"{c['graph']}: {k} drifted from BENCH_PR8 "
                    f"{rec[key][k]} -> {c[k]}")


def check_pr9_bit_exact(recorded, fresh):
    """Workloads and the kill schedule are both seeded, so fresh model
    metrics *and* schedule facts must reproduce the recording exactly."""
    rec = {(c["graph"], c["chaos"]): c for c in recorded["cells"]}
    require(len(rec) == len(recorded["cells"]),
            "recorded report has duplicate (graph, chaos) cells")
    for c in fresh["cells"]:
        key = (c["graph"], c["chaos"])
        require(key in rec,
                f"fresh cell {c['graph']} chaos={c['chaos']} has no "
                "recorded counterpart")
        for k in PR9_MODEL_KEYS + PR9_SCHEDULE_KEYS:
            require(c[k] == rec[key][k],
                    f"{c['graph']} chaos={c['chaos']}: {k} drifted "
                    f"{rec[key][k]} -> {c[k]}")
    require(len(fresh["cells"]) == len(recorded["cells"]),
            f"cell count drifted {len(recorded['cells'])} -> "
            f"{len(fresh['cells'])}")


def validate_pr9(fresh, recorded, pr8, log=print):
    """The full PR9 gate: shape + acceptance on both documents,
    chaos-vs-control equality, control cells bit-exact with the
    checked-in BENCH_PR8, and fresh bit-exact with the recording."""
    check_pr9_shape(fresh)
    check_pr9_shape(recorded)
    check_pr9_chaos_vs_control(fresh)
    check_pr9_against_pr8(fresh, pr8)
    check_pr9_bit_exact(recorded, fresh)
    kills = {(c["killed_shard"], c["kill_sync"])
             for c in fresh["cells"] if c["chaos"]}
    log(f"BENCH_PR9.json OK: {len(fresh['cells'])} cells, every chaos run "
        f"lost a shard mid-phase (kills at {sorted(kills)}), respawned, and "
        f"finished bit-identical to the sequential reference, controls "
        f"bit-exact with BENCH_PR8 and everything bit-exact with the "
        f"recording")


def check_pr10_shape(pr10):
    """Structural + acceptance validity of one BENCH_PR10 document."""
    require(pr10.get("bench") == "BENCH_PR10",
            f"not a BENCH_PR10 document: {pr10.get('bench')!r}")
    cells = pr10["cells"]
    require(cells, "no cells in BENCH_PR10 report")
    seen = set()
    for c in cells:
        missing = PR10_CELL_KEYS - c.keys()
        require(not missing, f"cell {c.get('graph')!r} missing {missing}")
        key = f"{c['graph']} [{c['scheduling']}]"
        require(c["scheduling"] in PR10_SCHEDULES,
                f"{key}: unknown scheduling mode")
        require((c["graph"], c["scheduling"]) not in seen,
                f"duplicate cell {key}")
        seen.add((c["graph"], c["scheduling"]))
        require(c["processes"] == PR10_PROCESSES,
                f"{key}: unexpected process count {c['processes']}")
        require(c["identical"] is True,
                f"{key}: distributed run diverged from the sequential "
                "reference (colorings or metrics not bit-identical)")
        require(c["valid"] is True, f"{key}: coloring invalid")
        require(c["rounds"] > 0 and c["messages"] > 0,
                f"{key}: ran 0 rounds")
        require(c["stepped_nodes"] > 0, f"{key}: stepped no nodes")
    algos = {c["algo"] for c in cells}
    require({"det-small", "rand-improved"} <= algos,
            f"matrix must cover both pipelines, got {sorted(algos)}")
    active = [c for c in cells if c["scheduling"] == "active-set"]
    require(active, "no active-set cell — the frontier is never exercised")
    by_key = {(c["graph"], c["scheduling"]): c for c in cells}
    for c in active:
        require((c["graph"], "always-step") in by_key,
                f"{c['graph']}: active-set cell has no always-step twin "
                "to measure the frontier against")


def check_pr10_frontier(pr10):
    """Scheduling must be unobservable in every model metric, and the
    active-set frontier must actually park nodes: for every workload run
    under both schedules, rounds/messages/bits/palette are equal and
    stepped_nodes falls by >= PR10_STEP_REDUCTION x."""
    by_key = {(c["graph"], c["scheduling"]): c for c in pr10["cells"]}
    checked = 0
    for (graph, sched), c in sorted(by_key.items()):
        if sched != "active-set":
            continue
        twin = by_key[(graph, "always-step")]
        for k in PR10_MODEL_KEYS:
            require(c[k] == twin[k],
                    f"{graph}: {k} differs between schedules "
                    f"({c[k]} vs {twin[k]}) — scheduling is observable")
        require(c["stepped_nodes"] * PR10_STEP_REDUCTION
                <= twin["stepped_nodes"],
                f"{graph}: active-set stepped {c['stepped_nodes']} nodes, "
                f"needs <= always-step {twin['stepped_nodes']} / "
                f"{PR10_STEP_REDUCTION}")
        checked += 1
    require(checked > 0, "no schedule pairs to check")


def check_pr10_against_pr9(pr10, pr9):
    """The always-step cells rerun PR9 control workloads on the same
    4-process mesh, so their model metrics must be bit-exact with the
    checked-in BENCH_PR9 controls — the engine unification must be
    unobservable where nothing changed."""
    rec = {c["graph"]: c for c in pr9["cells"] if not c["chaos"]}
    matched = 0
    for c in pr10["cells"]:
        if c["scheduling"] != "always-step" or c["graph"] not in rec:
            continue
        for k in PR9_MODEL_KEYS:
            require(c[k] == rec[c["graph"]][k],
                    f"{c['graph']}: {k} drifted from BENCH_PR9 "
                    f"{rec[c['graph']][k]} -> {c[k]}")
        matched += 1
    require(matched >= 2,
            f"expected >= 2 control cells shared with BENCH_PR9, "
            f"got {matched}")


def check_pr10_bit_exact(recorded, fresh):
    """Workloads, schedules, and the engine are all seeded and
    deterministic, so fresh model metrics *and* stepped-node counts must
    reproduce the recording exactly."""
    rec = {(c["graph"], c["scheduling"]): c for c in recorded["cells"]}
    require(len(rec) == len(recorded["cells"]),
            "recorded report has duplicate (graph, scheduling) cells")
    for c in fresh["cells"]:
        key = (c["graph"], c["scheduling"])
        require(key in rec,
                f"fresh cell {c['graph']} [{c['scheduling']}] has no "
                "recorded counterpart")
        for k in PR10_MODEL_KEYS + ("stepped_nodes",):
            require(c[k] == rec[key][k],
                    f"{c['graph']} [{c['scheduling']}]: {k} drifted "
                    f"{rec[key][k]} -> {c[k]}")
    require(len(fresh["cells"]) == len(recorded["cells"]),
            f"cell count drifted {len(recorded['cells'])} -> "
            f"{len(fresh['cells'])}")


def validate_pr10(fresh, recorded, pr9, log=print):
    """The full PR10 gate: shape + acceptance on both documents, the
    frontier economics, continuity of the control cells with the
    checked-in BENCH_PR9, and fresh bit-exact with the recording."""
    check_pr10_shape(fresh)
    check_pr10_shape(recorded)
    check_pr10_frontier(fresh)
    check_pr10_against_pr9(fresh, pr9)
    check_pr10_bit_exact(recorded, fresh)
    by_key = {(c["graph"], c["scheduling"]): c for c in fresh["cells"]}
    ratios = [
        twin["stepped_nodes"] / max(c["stepped_nodes"], 1)
        for (graph, sched), c in by_key.items()
        if sched == "active-set"
        for twin in [by_key[(graph, "always-step")]]
    ]
    log(f"BENCH_PR10.json OK: {len(fresh['cells'])} cells, every "
        f"distributed run bit-identical to the sequential reference, "
        f"controls bit-exact with BENCH_PR9, active-set frontier "
        f"{min(ratios):.1f}x below always-step (bound "
        f"{PR10_STEP_REDUCTION}x), everything bit-exact with the "
        f"recording")


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    gate = argv[1]
    try:
        if gate == "pr2":
            if len(argv) != 4:
                print("usage: bench_gate.py pr2 BENCH_PR2.json BENCH_PR1.json",
                      file=sys.stderr)
                return 2
            validate_pr2(load(argv[2]), load(argv[3]))
        elif gate == "pr3":
            if len(argv) != 3:
                print("usage: bench_gate.py pr3 BENCH_PR3.json",
                      file=sys.stderr)
                return 2
            validate_pr3(load(argv[2]))
        elif gate == "pr4":
            if len(argv) != 4:
                print("usage: bench_gate.py pr4 BENCH_PR4.json "
                      "BENCH_PR4.recorded.json", file=sys.stderr)
                return 2
            validate_pr4(load(argv[2]), load(argv[3]))
        elif gate == "pr5":
            if len(argv) != 5:
                print("usage: bench_gate.py pr5 BENCH_PR5.json "
                      "BENCH_PR5.recorded.json BENCH_PR4.json",
                      file=sys.stderr)
                return 2
            validate_pr5(load(argv[2]), load(argv[3]), load(argv[4]))
        elif gate == "pr6":
            if len(argv) != 4:
                print("usage: bench_gate.py pr6 BENCH_PR6.json "
                      "BENCH_PR6.recorded.json", file=sys.stderr)
                return 2
            validate_pr6(load(argv[2]), load(argv[3]))
        elif gate == "pr7":
            if len(argv) != 6:
                print("usage: bench_gate.py pr7 BENCH_PR7.json "
                      "BENCH_PR7.recorded.json BENCH_PR6.json BENCH_PR5.json",
                      file=sys.stderr)
                return 2
            validate_pr7(load(argv[2]), load(argv[3]), load(argv[4]),
                         load(argv[5]))
        elif gate == "pr9":
            if len(argv) != 5:
                print("usage: bench_gate.py pr9 BENCH_PR9.json "
                      "BENCH_PR9.recorded.json BENCH_PR8.json",
                      file=sys.stderr)
                return 2
            validate_pr9(load(argv[2]), load(argv[3]), load(argv[4]))
        elif gate == "pr8":
            if len(argv) != 4:
                print("usage: bench_gate.py pr8 BENCH_PR8.json "
                      "BENCH_PR8.recorded.json", file=sys.stderr)
                return 2
            validate_pr8(load(argv[2]), load(argv[3]))
        elif gate == "pr10":
            if len(argv) != 5:
                print("usage: bench_gate.py pr10 BENCH_PR10.json "
                      "BENCH_PR10.recorded.json BENCH_PR9.json",
                      file=sys.stderr)
                return 2
            validate_pr10(load(argv[2]), load(argv[3]), load(argv[4]))
        else:
            print(f"unknown gate {gate!r}; available: pr2, pr3, pr4, pr5, "
                  "pr6, pr7, pr8, pr9, pr10", file=sys.stderr)
            return 2
    except GateError as e:
        print(f"BENCH GATE FAILED: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
