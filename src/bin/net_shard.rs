//! One netplane shard process.
//!
//! ```text
//! net_shard <coordinator addr> <algo> <family> <n> <degree> <graph_seed> <run_seed>
//!           [--sched <active|always>] [--drops <ppm> <seed>]
//!           [--chaos <seed>] [--rejoin <shard> <ports-csv>]
//! ```
//!
//! Spawned by [`d2color::netharness::run_distributed`] (directly by
//! `tests/net_equivalence.rs`; the `harness` binary re-execs itself via
//! its `net-shard` subcommand instead). Joins the coordinator, runs the
//! spec's pipeline over the socket mesh, reports its color slice, exits.
//! `--sched` / `--drops` select the engine profile (active-set
//! scheduling, simulated drop-fault plane) — the orchestrator passes
//! the same profile to every shard and the sequential reference.
//! `--chaos` runs the shard under a seeded fault schedule; `--rejoin`
//! marks the process as a supervisor-spawned replacement for a killed
//! shard, redialing the surviving mesh at the given ports.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((addr, spec, opts)) = d2color::netharness::parse_shard_argv(&args) else {
        eprintln!(
            "usage: net_shard <coordinator> <algo> <family> <n> <degree> <gseed> <rseed> \
             [--sched <active|always>] [--drops <ppm> <seed>] \
             [--chaos <seed>] [--rejoin <shard> <ports-csv>]"
        );
        std::process::exit(2);
    };
    d2color::netharness::shard_main(addr, &spec, &opts).expect("shard transport failure");
}
