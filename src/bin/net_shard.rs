//! One netplane shard process.
//!
//! ```text
//! net_shard <coordinator addr> <algo> <family> <n> <degree> <graph_seed> <run_seed>
//! ```
//!
//! Spawned by [`d2color::netharness::run_distributed`] (directly by
//! `tests/net_equivalence.rs`; the `harness` binary re-execs itself via
//! its `net-shard` subcommand instead). Joins the coordinator, runs the
//! spec's pipeline over the socket mesh, reports its color slice, exits.

use d2color::netharness::NetSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((addr, spec_args)) = args.split_first() else {
        eprintln!("usage: net_shard <coordinator> <algo> <family> <n> <degree> <gseed> <rseed>");
        std::process::exit(2);
    };
    let addr = addr.parse().expect("coordinator address");
    let spec = NetSpec::parse_args(spec_args).expect("shard spec");
    d2color::netharness::shard_main(addr, &spec).expect("shard transport failure");
}
