//! # d2color — Distance-2 Coloring in the CONGEST Model
//!
//! A full reproduction of *Distance-2 Coloring in the CONGEST Model*
//! (Halldórsson, Kuhn, Maus; PODC 2020): a bit-accurate CONGEST simulator,
//! the paper's randomized and deterministic algorithms, baselines, and an
//! experiment harness regenerating every complexity claim.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`congest`] — the CONGEST simulator (rounds, ports, bandwidth
//!   accounting, sequential + batched-transport parallel runtimes).
//! * [`graphs`] — graph structures, workload generators, verification.
//! * [`d2core`] — the paper's algorithms (Theorems 1.1, 1.2, 1.3, 3.2,
//!   3.4, B.1, B.2, B.4; Corollary 2.1) and baselines.
//! * [`decomp`] — network decomposition and derandomization substrate.
//!
//! # Quickstart
//!
//! ```
//! use d2color::prelude::*;
//!
//! # fn main() -> Result<(), congest::SimError> {
//! // A wireless-style interference graph.
//! let g = graphs::gen::unit_disk(120, 0.1, 42);
//! let d = g.max_degree();
//!
//! // Theorem 1.1: randomized ∆²+1 coloring in O(log ∆ · log n) rounds.
//! let out = d2core::rand::driver::improved(
//!     &g,
//!     &Params::practical(),
//!     &SimConfig::seeded(1),
//! )?;
//! assert!(graphs::verify::is_valid_d2_coloring(&g, &out.colors));
//! assert!(out.palette_bound() <= (d * d).min(g.n() - 1) + 1);
//! # Ok(())
//! # }
//! ```

pub use congest;
pub use d2core;
pub use decomp;
pub use graphs;

pub mod netharness;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use congest::{Metrics, SimConfig, SimError};
    pub use d2core::{ColoringOutcome, Params};
    pub use graphs::{Graph, NodeId};
}
