//! Multi-process shard driver for the netplane.
//!
//! [`congest::netplane`] provides the transport (frames, membership,
//! round barrier); this module provides the *orchestration*: spawning one
//! OS process per shard, handing each the same `(graph, seed, config)`
//! recipe over `argv`, collecting per-shard `RESULT` frames over the
//! coordinator control streams, and stitching them into a single
//! [`NetOutcome`] that must be bit-identical to the sequential reference
//! (`tests/net_equivalence.rs` asserts exactly that; the `harness
//! net-run` subcommand does the same interactively).
//!
//! The process tree looks like:
//!
//! ```text
//! orchestrator (run_distributed / run_supervised)
//! ├── binds the coordinator listener, learns its port
//! ├── spawns k shard processes:  <program> [prefix..] <addr> <spec..>
//! │     each: join_mesh(addr) → install → run the pipeline → RESULT
//! └── assign(k) → reads one RESULT frame per control stream → stitch
//! ```
//!
//! Every shard rebuilds the identical world from the spec — graphs are
//! generated, never shipped — so the only bytes on the wire are round
//! messages, barrier flags, and the final per-shard color slices.
//!
//! # Supervision
//!
//! Children are held in kill-on-drop `ShardGuard`s: if the
//! orchestrator panics mid-run (coordinator bug, handshake timeout), the
//! unwinding drops reap every shard — no orphaned processes. In
//! *supervised* mode ([`run_supervised`]) the orchestrator is a real
//! supervisor: shards run under a seeded chaos schedule
//! ([`congest::netplane::chaos`]) that kills one of them mid-phase; the
//! supervisor detects the exit, respawns the victim with `--rejoin`, and
//! the replacement rebuilds the seeded world, replays the survivors'
//! retained frames to the live frontier, and finishes the run — with the
//! stitched coloring and merged metrics still bit-identical to the
//! sequential reference.

use congest::netplane::{
    self, chaos, kind, read_frame, ChaosConfig, NetConfig, Reader, Wire, WireError,
};
use congest::{FaultConfig, Metrics, Scheduling, SimConfig};
use d2core::{ColoringOutcome, Params};
use graphs::Graph;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Pipelines the harness can serve over sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetAlgo {
    /// Theorem 1.2 (deterministic `∆²+1`).
    DetSmall,
    /// Theorem 1.1 (randomized, improved final phase).
    RandImproved,
}

impl NetAlgo {
    /// Stable `argv` token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            NetAlgo::DetSmall => "det-small",
            NetAlgo::RandImproved => "rand-improved",
        }
    }

    /// Parses an `argv` token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "det-small" => Some(NetAlgo::DetSmall),
            "rand-improved" => Some(NetAlgo::RandImproved),
            _ => None,
        }
    }
}

/// Graph families in the equivalence matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetGraph {
    /// `gnp_capped(n, deg/n, deg, graph_seed)`: sparse G(n, p) with a
    /// degree cap.
    GnpCapped,
    /// `random_regular(n, deg, graph_seed)`.
    RandomRegular,
}

impl NetGraph {
    /// Stable `argv` token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            NetGraph::GnpCapped => "gnp",
            NetGraph::RandomRegular => "regular",
        }
    }

    /// Parses an `argv` token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "gnp" => Some(NetGraph::GnpCapped),
            "regular" => Some(NetGraph::RandomRegular),
            _ => None,
        }
    }
}

/// A complete run recipe: every shard (and the sequential reference)
/// rebuilds the same world from these six values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetSpec {
    /// Pipeline to run.
    pub algo: NetAlgo,
    /// Graph family.
    pub family: NetGraph,
    /// Nodes.
    pub n: usize,
    /// Degree parameter (cap for `gnp`, d for `regular`).
    pub degree: usize,
    /// Graph-generation seed.
    pub graph_seed: u64,
    /// Simulation seed.
    pub run_seed: u64,
}

impl NetSpec {
    /// Serializes the spec as shard-process arguments.
    #[must_use]
    pub fn to_args(&self) -> Vec<String> {
        vec![
            self.algo.token().into(),
            self.family.token().into(),
            self.n.to_string(),
            self.degree.to_string(),
            self.graph_seed.to_string(),
            self.run_seed.to_string(),
        ]
    }

    /// Parses the six positional arguments produced by [`Self::to_args`].
    #[must_use]
    pub fn parse_args(args: &[String]) -> Option<Self> {
        let [algo, family, n, degree, graph_seed, run_seed] = args else {
            return None;
        };
        Some(NetSpec {
            algo: NetAlgo::parse(algo)?,
            family: NetGraph::parse(family)?,
            n: n.parse().ok()?,
            degree: degree.parse().ok()?,
            graph_seed: graph_seed.parse().ok()?,
            run_seed: run_seed.parse().ok()?,
        })
    }

    /// Regenerates the workload graph.
    #[must_use]
    pub fn build_graph(&self) -> Graph {
        match self.family {
            NetGraph::GnpCapped => graphs::gen::gnp_capped(
                self.n,
                self.degree as f64 / self.n.max(1) as f64,
                self.degree,
                self.graph_seed,
            ),
            NetGraph::RandomRegular => {
                graphs::gen::random_regular(self.n, self.degree, self.graph_seed)
            }
        }
    }

    /// The simulation config for the default [`RunProfile`]:
    /// [`Scheduling::AlwaysStep`], no fault plane. Recorded benches
    /// (`BENCH_PR8` / `BENCH_PR9`) were captured under this profile, so
    /// it stays the argv default forever.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config_with(&RunProfile::default())
    }

    /// The simulation config under an explicit [`RunProfile`]. Every
    /// shard and the sequential reference must derive their config
    /// through this one function — it is the only place profile knobs
    /// touch [`SimConfig`], so the two sides cannot drift.
    #[must_use]
    pub fn config_with(&self, profile: &RunProfile) -> SimConfig {
        let cfg = SimConfig::seeded(self.run_seed).with_scheduling(profile.scheduling);
        match profile.drops {
            Some((per_million, fault_seed)) => {
                cfg.with_faults(FaultConfig::seeded(fault_seed).with_drops(per_million))
            }
            None => cfg,
        }
    }

    /// Short display label for tables and logs.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}-{}-n{}-d{}-g{}-s{}",
            self.algo.token(),
            self.family.token(),
            self.n,
            self.degree,
            self.graph_seed,
            self.run_seed
        )
    }
}

/// Engine knobs layered over a [`NetSpec`]: scheduling mode and an
/// optional simulated drop-fault plane. The profile rides the shard
/// `argv` next to the spec, and the *same* profile must be applied to
/// the sequential reference — both sides build their [`SimConfig`]
/// through [`NetSpec::config_with`], so a run is keyed by
/// `(spec, profile)`.
///
/// The default (always-step, fault-free) serializes to *zero* argv
/// tokens, keeping historical shard command lines byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProfile {
    /// Node-stepping policy. [`Scheduling::AlwaysStep`] by default so
    /// recorded benches stay comparable; `--sched active` opts into the
    /// wake-frontier scheduler.
    pub scheduling: Scheduling,
    /// Simulated message-drop plane as `(drops per million, fault
    /// seed)` (`--drops <ppm> <seed>`). The schedule is a pure function
    /// of `(config, salt, n)`, so every shard charges identical fates.
    pub drops: Option<(u32, u64)>,
}

impl Default for RunProfile {
    fn default() -> Self {
        RunProfile {
            scheduling: Scheduling::AlwaysStep,
            drops: None,
        }
    }
}

impl RunProfile {
    /// Profile with [`Scheduling::ActiveSet`] and no fault plane.
    #[must_use]
    pub fn active_set() -> Self {
        RunProfile {
            scheduling: Scheduling::ActiveSet,
            drops: None,
        }
    }

    /// Adds a simulated drop plane.
    #[must_use]
    pub fn with_drops(mut self, per_million: u32, fault_seed: u64) -> Self {
        self.drops = Some((per_million, fault_seed));
        self
    }

    /// Stable `--sched` argv token.
    #[must_use]
    pub fn sched_token(&self) -> &'static str {
        match self.scheduling {
            Scheduling::ActiveSet => "active",
            Scheduling::AlwaysStep => "always",
        }
    }

    /// Parses a `--sched` argv token.
    #[must_use]
    pub fn parse_sched(s: &str) -> Option<Scheduling> {
        match s {
            "active" => Some(Scheduling::ActiveSet),
            "always" => Some(Scheduling::AlwaysStep),
            _ => None,
        }
    }

    /// Serializes the profile as trailing shard-process arguments
    /// (empty for the default profile).
    #[must_use]
    pub fn to_args(&self) -> Vec<String> {
        let mut args = Vec::new();
        if self.scheduling != Scheduling::AlwaysStep {
            args.push("--sched".into());
            args.push(self.sched_token().into());
        }
        if let Some((per_million, fault_seed)) = self.drops {
            args.push("--drops".into());
            args.push(per_million.to_string());
            args.push(fault_seed.to_string());
        }
        args
    }
}

/// Per-process options riding after the spec on a shard's `argv`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardOptions {
    /// Engine profile (`--sched`, `--drops`) — shared by every shard in
    /// a run and by its sequential reference.
    pub profile: RunProfile,
    /// Run under a seeded chaos schedule (`--chaos <seed>`).
    pub chaos_seed: Option<u64>,
    /// This process replaces a killed shard (`--rejoin <shard>
    /// <ports-csv>`): rejoin the surviving mesh at the original ports
    /// and re-execute from scratch. Chaos is never combined with rejoin
    /// — the supervisor strips it so the replacement runs clean.
    pub rejoin: Option<(u32, Vec<u16>)>,
}

impl ShardOptions {
    /// Serializes the options as trailing shard-process arguments.
    #[must_use]
    pub fn to_args(&self) -> Vec<String> {
        let mut args = self.profile.to_args();
        if let Some(seed) = self.chaos_seed {
            args.push("--chaos".into());
            args.push(seed.to_string());
        }
        if let Some((shard, ports)) = &self.rejoin {
            args.push("--rejoin".into());
            args.push(shard.to_string());
            args.push(
                ports
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        args
    }
}

/// Parses a full shard-process argument list:
/// `<addr> <algo> <family> <n> <degree> <graph_seed> <run_seed>
/// [--sched <active|always>] [--drops <ppm> <seed>] [--chaos <seed>]
/// [--rejoin <shard> <ports-csv>]`.
/// Shared by the `net_shard` binary and the harness `net-shard`
/// subcommand so the two argv dialects cannot drift.
#[must_use]
pub fn parse_shard_argv(args: &[String]) -> Option<(SocketAddr, NetSpec, ShardOptions)> {
    if args.len() < 7 {
        return None;
    }
    let addr: SocketAddr = args[0].parse().ok()?;
    let spec = NetSpec::parse_args(&args[1..7])?;
    let mut opts = ShardOptions::default();
    let mut rest = &args[7..];
    while let Some(flag) = rest.first() {
        match flag.as_str() {
            "--sched" => {
                opts.profile.scheduling = RunProfile::parse_sched(rest.get(1)?)?;
                rest = &rest[2..];
            }
            "--drops" => {
                let per_million = rest.get(1)?.parse().ok()?;
                let fault_seed = rest.get(2)?.parse().ok()?;
                opts.profile.drops = Some((per_million, fault_seed));
                rest = &rest[3..];
            }
            "--chaos" => {
                opts.chaos_seed = Some(rest.get(1)?.parse().ok()?);
                rest = &rest[2..];
            }
            "--rejoin" => {
                let shard = rest.get(1)?.parse().ok()?;
                let ports = rest
                    .get(2)?
                    .split(',')
                    .map(|p| p.parse().ok())
                    .collect::<Option<Vec<u16>>>()?;
                opts.rejoin = Some((shard, ports));
                rest = &rest[3..];
            }
            _ => return None,
        }
    }
    Some((addr, spec, opts))
}

/// Runs the spec's pipeline in-process under a profile (used by both
/// the sequential reference and, with a netplane installed, the shard
/// body).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_pipeline(
    spec: &NetSpec,
    g: &Graph,
    profile: &RunProfile,
) -> Result<ColoringOutcome, congest::SimError> {
    let cfg = spec.config_with(profile);
    let params = Params::practical();
    match spec.algo {
        NetAlgo::DetSmall => d2core::det::small::run(g, &params, &cfg),
        NetAlgo::RandImproved => d2core::rand::driver::improved(g, &params, &cfg),
    }
}

/// Runs the sequential reference for a `(spec, profile)` pair.
#[must_use]
pub fn run_sequential(spec: &NetSpec, profile: &RunProfile) -> NetOutcome {
    let g = spec.build_graph();
    let out = run_pipeline(spec, &g, profile).expect("sequential reference failed");
    NetOutcome {
        colors: out.colors,
        metrics: out.metrics,
    }
}

/// What one shard reports back on its control stream.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardResult {
    shard: u32,
    lo: u64,
    hi: u64,
    metrics: Metrics,
    colors: Vec<u32>,
}

impl Wire for ShardResult {
    fn put(&self, buf: &mut Vec<u8>) {
        self.shard.put(buf);
        self.lo.put(buf);
        self.hi.put(buf);
        self.metrics.put(buf);
        self.colors.put(buf);
    }

    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShardResult {
            shard: u32::take(r)?,
            lo: u64::take(r)?,
            hi: u64::take(r)?,
            metrics: Metrics::take(r)?,
            colors: Vec::<u32>::take(r)?,
        })
    }
}

/// A stitched distributed run: the full coloring plus the (globally
/// merged, shard-identical) metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetOutcome {
    /// Color of each node, indexed by node index.
    pub colors: Vec<u32>,
    /// Global metrics (every shard reports the same merged record).
    pub metrics: Metrics,
}

/// The body of one shard process: membership handshake (or rejoin),
/// pipeline run with the netplane installed, `RESULT` report.
///
/// A process launched with `--chaos` (or `--rejoin`) runs under
/// [`NetConfig::supervised`]: unbounded frame retention and a rejoin
/// window, so it can service — or be — a restarted peer.
///
/// # Errors
///
/// Returns transport errors; pipeline failures abort the process (they
/// indicate an engine bug, not recoverable I/O).
pub fn shard_main(coordinator: SocketAddr, spec: &NetSpec, opts: &ShardOptions) -> io::Result<()> {
    let supervised = opts.chaos_seed.is_some() || opts.rejoin.is_some();
    let config = if supervised {
        NetConfig::supervised()
    } else {
        NetConfig::default()
    };
    let plane = match &opts.rejoin {
        Some((shard, ports)) => {
            netplane::rejoin_mesh(coordinator, *shard, ports, config).map_err(io::Error::other)?
        }
        None => {
            let chaos_cfg = opts.chaos_seed.map(ChaosConfig::seeded);
            netplane::join_mesh(coordinator, config, chaos_cfg).map_err(io::Error::other)?
        }
    };
    let shard = plane.shard;
    netplane::install(plane);
    let g = spec.build_graph();
    let out = run_pipeline(spec, &g, &opts.profile).expect("sharded pipeline failed");
    let mut plane = netplane::uninstall().expect("netplane vanished mid-run");
    let (lo, hi) = plane.local_range(g.n());
    let result = ShardResult {
        shard,
        lo: lo as u64,
        hi: hi as u64,
        metrics: out.metrics,
        colors: out.colors[lo..hi].to_vec(),
    };
    plane.send_result(&result.to_wire())
}

/// How to launch one shard process.
#[derive(Debug, Clone)]
pub struct ShardCommand {
    /// Executable path.
    pub program: String,
    /// Arguments inserted before the coordinator address (e.g.
    /// `["net-shard"]` when the harness re-execs itself).
    pub prefix_args: Vec<String>,
}

impl ShardCommand {
    /// The current executable re-entering through a subcommand.
    #[must_use]
    pub fn current_exe(subcommand: &str) -> Self {
        ShardCommand {
            program: std::env::current_exe()
                .expect("current_exe")
                .to_string_lossy()
                .into_owned(),
            prefix_args: vec![subcommand.into()],
        }
    }
}

/// A spawned shard held kill-on-drop: if the orchestrator unwinds (or
/// simply forgets to reap), dropping the guard kills and reaps the
/// child, so no code path can leak shard processes.
#[derive(Debug)]
struct ShardGuard {
    child: Child,
    /// An observed exit was already acted on (respawn or success).
    handled: bool,
}

impl ShardGuard {
    /// Non-blocking death check: `true` exactly once, when the child has
    /// exited unsuccessfully and nobody has acted on it yet.
    fn failed_exit(&mut self) -> bool {
        if self.handled {
            return false;
        }
        match self.child.try_wait() {
            Ok(Some(status)) if !status.success() => {
                self.handled = true;
                true
            }
            _ => false,
        }
    }

    /// Blocks for exit and asserts success (normal end-of-run reap).
    fn expect_success(&mut self, who: &str) {
        let status = self.child.wait().expect("wait on shard");
        self.handled = true;
        assert!(status.success(), "{who} exited with {status}");
    }
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        // Idempotent: killing an exited/reaped child is an ignorable
        // error, so unconditional kill-then-reap is safe on every path.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_shard(cmd: &ShardCommand, addr: &str, spec: &NetSpec, opts: &ShardOptions) -> ShardGuard {
    let child = Command::new(&cmd.program)
        .args(&cmd.prefix_args)
        .arg(addr)
        .args(spec.to_args())
        .args(opts.to_args())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn shard ({}): {e}", cmd.program));
    ShardGuard {
        child,
        handled: false,
    }
}

/// One background reader per control stream: reads a single `RESULT`
/// frame and forwards it. A stream that EOFs without one (the shard
/// died) just ends — the supervisor's exit polling handles the death.
fn spawn_result_reader(mut stream: TcpStream, tx: &mpsc::Sender<ShardResult>) {
    let tx = tx.clone();
    thread::spawn(move || {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(600)));
        if let Ok(frame) = read_frame(&mut stream) {
            if frame.kind == kind::RESULT {
                if let Ok(r) = ShardResult::from_wire(&frame.payload) {
                    let _ = tx.send(r);
                }
            }
        }
    });
}

/// Stitches per-shard results into the global outcome, checking ranges
/// tile the node set and every shard agrees on the merged metrics.
fn stitch(n: usize, k: u32, results: Vec<Option<ShardResult>>) -> NetOutcome {
    let results: Vec<ShardResult> = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("no RESULT from shard {i}")))
        .collect();
    let mut colors = vec![u32::MAX; n];
    let mut covered = 0usize;
    for r in &results {
        let (lo, hi) = (r.lo as usize, r.hi as usize);
        assert_eq!(
            (lo, hi),
            netplane::shard_range(n, k as usize, r.shard as usize),
            "shard {} reported a foreign range",
            r.shard
        );
        assert_eq!(r.colors.len(), hi - lo, "shard {} slice length", r.shard);
        colors[lo..hi].copy_from_slice(&r.colors);
        covered += hi - lo;
        assert_eq!(
            r.metrics, results[0].metrics,
            "shard {} disagrees on global metrics",
            r.shard
        );
    }
    assert_eq!(covered, n, "shard ranges do not tile the node set");
    NetOutcome {
        colors,
        metrics: results.into_iter().next().expect("k >= 1").metrics,
    }
}

fn store_result(results: &mut [Option<ShardResult>], r: ShardResult) {
    let slot = r.shard as usize;
    assert!(
        slot < results.len(),
        "RESULT from out-of-range shard {slot}"
    );
    assert!(
        results[slot].is_none(),
        "duplicate RESULT from shard {slot}"
    );
    results[slot] = Some(r);
}

/// Orchestrates a full distributed run: coordinator, `k` shard
/// processes, result stitching. Children are kill-on-drop; a shard
/// death fails the run loudly (for survivable chaos runs use
/// [`run_supervised`]).
///
/// Panics on any shard failure — the harness and tests both want a loud
/// abort, never a silently partial coloring.
#[must_use]
pub fn run_distributed(
    spec: &NetSpec,
    k: u32,
    cmd: &ShardCommand,
    profile: &RunProfile,
) -> NetOutcome {
    assert!(k >= 1, "need at least one shard");
    let config = NetConfig::default();
    let coord = netplane::coordinator().expect("bind coordinator listener");
    let addr = format!("127.0.0.1:{}", coord.port());

    let opts = ShardOptions {
        profile: *profile,
        ..ShardOptions::default()
    };
    let mut guards: Vec<ShardGuard> = (0..k)
        .map(|_| spawn_shard(cmd, &addr, spec, &opts))
        .collect();

    let assignment = coord
        .assign(k, &config)
        .expect("shard membership handshake");
    let mut results: Vec<Option<ShardResult>> = (0..k).map(|_| None).collect();
    for mut stream in assignment.controls {
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .expect("control read deadline");
        let frame = read_frame(&mut stream).expect("shard RESULT frame");
        assert_eq!(frame.kind, kind::RESULT, "unexpected control frame");
        store_result(
            &mut results,
            ShardResult::from_wire(&frame.payload).expect("RESULT payload"),
        );
    }
    for (i, guard) in guards.iter_mut().enumerate() {
        guard.expect_success(&format!("shard process {i}"));
    }
    stitch(spec.n, k, results)
}

/// What happened in a supervised chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosRunReport {
    /// The chaos schedule seed.
    pub chaos_seed: u64,
    /// The shard the schedule killed.
    pub killed_shard: u32,
    /// The plane sync at which the kill was scheduled.
    pub kill_sync: u64,
    /// Whether the supervisor actually observed the death and respawned
    /// (a schedule whose kill never fires completes without one).
    pub respawned: bool,
}

/// Orchestrates a *supervised* chaos run: `k` shards under a seeded
/// chaos schedule that kills one of them mid-phase; the supervisor
/// detects the exit, respawns the victim with `--rejoin` (chaos
/// stripped), and the replacement replays the survivors' retained
/// history to the live frontier. Returns the stitched outcome — which
/// must be bit-identical to the chaos-free and sequential runs — plus a
/// report of what the supervisor observed.
///
/// Panics on a second concurrent failure (outside the survivable model)
/// or on supervision timeout.
#[must_use]
pub fn run_supervised(
    spec: &NetSpec,
    k: u32,
    cmd: &ShardCommand,
    chaos_seed: u64,
    profile: &RunProfile,
) -> (NetOutcome, ChaosRunReport) {
    assert!(k >= 2, "supervised chaos needs at least two shards");
    let config = NetConfig::supervised();
    let coord = netplane::coordinator().expect("bind coordinator listener");
    let addr = format!("127.0.0.1:{}", coord.port());
    let chaos_opts = ShardOptions {
        profile: *profile,
        chaos_seed: Some(chaos_seed),
        rejoin: None,
    };
    let mut guards: Vec<ShardGuard> = (0..k)
        .map(|_| spawn_shard(cmd, &addr, spec, &chaos_opts))
        .collect();

    let assignment = coord
        .assign(k, &config)
        .expect("shard membership handshake");
    let ports: Vec<u16> = assignment.peers.iter().map(|&(_, port)| port).collect();
    let plan = chaos::kill_plan(chaos_seed, k);

    let (tx, rx) = mpsc::channel();
    for stream in assignment.controls {
        spawn_result_reader(stream, &tx);
    }

    let mut results: Vec<Option<ShardResult>> = (0..k).map(|_| None).collect();
    let mut got = 0u32;
    let mut respawned = false;
    let deadline = Instant::now() + Duration::from_secs(240);
    while got < k {
        assert!(
            Instant::now() < deadline,
            "supervised run timed out awaiting shard results ({got}/{k})"
        );
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(r) => {
                store_result(&mut results, r);
                got += 1;
                continue;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("supervisor holds a live sender")
            }
        }
        for guard in &mut guards {
            if guard.failed_exit() {
                assert!(
                    !respawned,
                    "second shard failure — only one loss at a time is survivable"
                );
                respawned = true;
                // The dead child is the schedule's victim (only chaos
                // kills shards here); respawn it with rejoin, no chaos.
                let rejoin_opts = ShardOptions {
                    profile: *profile,
                    chaos_seed: None,
                    rejoin: Some((plan.victim, ports.clone())),
                };
                *guard = spawn_shard(cmd, &addr, spec, &rejoin_opts);
                // The replacement dials the coordinator first thing for
                // its fresh control stream.
                let control = coord
                    .accept_control(Duration::from_secs(60))
                    .expect("rejoiner control redial");
                spawn_result_reader(control, &tx);
            }
        }
    }
    for guard in &mut guards {
        guard.expect_success("surviving shard");
    }
    let outcome = stitch(spec.n, k, results);
    (
        outcome,
        ChaosRunReport {
            chaos_seed,
            killed_shard: plan.victim,
            kill_sync: plan.sync,
            respawned,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_argv_roundtrip() {
        let spec = NetSpec {
            algo: NetAlgo::RandImproved,
            family: NetGraph::GnpCapped,
            n: 160,
            degree: 5,
            graph_seed: 7,
            run_seed: 42,
        };
        let args = spec.to_args();
        assert_eq!(NetSpec::parse_args(&args), Some(spec));
        assert!(NetSpec::parse_args(&args[..5]).is_none());
        let mut bad = args.clone();
        bad[0] = "quantum".into();
        assert!(NetSpec::parse_args(&bad).is_none());
    }

    fn full_argv(extra: &[&str]) -> Vec<String> {
        let mut args = vec!["127.0.0.1:9000".to_string()];
        args.extend(
            NetSpec {
                algo: NetAlgo::DetSmall,
                family: NetGraph::RandomRegular,
                n: 80,
                degree: 4,
                graph_seed: 3,
                run_seed: 1,
            }
            .to_args(),
        );
        args.extend(extra.iter().map(ToString::to_string));
        args
    }

    #[test]
    fn shard_argv_roundtrips_options() {
        let (addr, spec, opts) = parse_shard_argv(&full_argv(&[])).unwrap();
        assert_eq!(addr.port(), 9000);
        assert_eq!(spec.n, 80);
        assert_eq!(opts, ShardOptions::default());

        let (_, _, opts) = parse_shard_argv(&full_argv(&["--chaos", "9"])).unwrap();
        assert_eq!(opts.chaos_seed, Some(9));
        assert_eq!(opts.to_args(), vec!["--chaos", "9"]);

        let (_, _, opts) =
            parse_shard_argv(&full_argv(&["--sched", "active", "--drops", "25000", "11"])).unwrap();
        assert_eq!(
            opts.profile,
            RunProfile::active_set().with_drops(25_000, 11)
        );
        assert_eq!(
            opts.to_args(),
            vec!["--sched", "active", "--drops", "25000", "11"]
        );

        // `--sched always` parses but round-trips to nothing: the
        // default profile keeps historical argv byte-identical.
        let (_, _, opts) = parse_shard_argv(&full_argv(&["--sched", "always"])).unwrap();
        assert_eq!(opts, ShardOptions::default());
        assert!(opts.to_args().is_empty());

        let (_, _, opts) =
            parse_shard_argv(&full_argv(&["--rejoin", "2", "7001,7002,7003,7004"])).unwrap();
        assert_eq!(opts.rejoin, Some((2, vec![7001, 7002, 7003, 7004])));
        assert_eq!(opts.to_args(), vec!["--rejoin", "2", "7001,7002,7003,7004"]);

        // Malformed tails are rejected, never silently ignored.
        assert!(parse_shard_argv(&full_argv(&["--sched", "sometimes"])).is_none());
        assert!(parse_shard_argv(&full_argv(&["--sched"])).is_none());
        assert!(parse_shard_argv(&full_argv(&["--drops", "25000"])).is_none());
        assert!(parse_shard_argv(&full_argv(&["--drops", "x", "11"])).is_none());
        assert!(parse_shard_argv(&full_argv(&["--chaos"])).is_none());
        assert!(parse_shard_argv(&full_argv(&["--rejoin", "2"])).is_none());
        assert!(parse_shard_argv(&full_argv(&["--rejoin", "2", "70x1"])).is_none());
        assert!(parse_shard_argv(&full_argv(&["--frobnicate"])).is_none());
        assert!(parse_shard_argv(&full_argv(&[])[..4]).is_none());
    }

    #[test]
    fn profile_drives_config() {
        let spec = NetSpec {
            algo: NetAlgo::DetSmall,
            family: NetGraph::GnpCapped,
            n: 50,
            degree: 4,
            graph_seed: 1,
            run_seed: 9,
        };
        // The default profile is exactly the historical config.
        let default = spec.config_with(&RunProfile::default());
        assert_eq!(default.scheduling, spec.config().scheduling);
        assert_eq!(default.faults, spec.config().faults);
        assert_eq!(spec.config().scheduling, Scheduling::AlwaysStep);
        assert!(spec.config().faults.is_none());

        let cfg = spec.config_with(&RunProfile::active_set().with_drops(25_000, 11));
        assert_eq!(cfg.scheduling, Scheduling::ActiveSet);
        let faults = cfg.faults.expect("drop plane installed");
        assert_eq!(faults.drop_per_million, 25_000);
        assert_eq!(faults.fault_seed, 11);
        // Profile knobs must not perturb the run seed.
        assert_eq!(cfg.seed, spec.config().seed);
    }

    #[test]
    fn shard_result_wire_roundtrip() {
        let r = ShardResult {
            shard: 3,
            lo: 100,
            hi: 150,
            metrics: Metrics {
                rounds: 17,
                messages: 900,
                ..Metrics::default()
            },
            colors: vec![1, 2, 3, u32::MAX],
        };
        let back = ShardResult::from_wire(&r.to_wire()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn graphs_regenerate_identically() {
        let spec = NetSpec {
            algo: NetAlgo::DetSmall,
            family: NetGraph::RandomRegular,
            n: 80,
            degree: 4,
            graph_seed: 3,
            run_seed: 1,
        };
        let a = spec.build_graph();
        let b = spec.build_graph();
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        for v in 0..a.n() as u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    /// The orphan-leak regression (satellite of PR 9): dropping a
    /// [`ShardGuard`] — as stack unwinding does when the coordinator
    /// panics mid-assign — must kill and reap the child.
    #[test]
    fn shard_guard_kills_child_on_drop() {
        let child = Command::new("sleep")
            .arg("30")
            .spawn()
            .expect("spawn sleeper");
        let pid = child.id();
        let guard = ShardGuard {
            child,
            handled: false,
        };
        assert!(
            std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "sleeper must be alive before the drop"
        );
        drop(guard);
        // Killed *and reaped*: the pid entry is gone (a zombie would
        // still show up here).
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "dropping the guard must kill and reap the child"
        );
    }
}
