//! Multi-process shard driver for the netplane.
//!
//! [`congest::netplane`] provides the transport (frames, membership,
//! round barrier); this module provides the *orchestration*: spawning one
//! OS process per shard, handing each the same `(graph, seed, config)`
//! recipe over `argv`, collecting per-shard `RESULT` frames over the
//! coordinator control streams, and stitching them into a single
//! [`NetOutcome`] that must be bit-identical to the sequential reference
//! (`tests/net_equivalence.rs` asserts exactly that; the `harness
//! net-run` subcommand does the same interactively).
//!
//! The process tree looks like:
//!
//! ```text
//! orchestrator (run_distributed)
//! ├── binds the coordinator listener, learns its port
//! ├── spawns k shard processes:  <program> [prefix..] <addr> <spec..>
//! │     each: join_mesh(addr) → install → run the pipeline → RESULT
//! └── assign(k) → reads one RESULT frame per control stream → stitch
//! ```
//!
//! Every shard rebuilds the identical world from the spec — graphs are
//! generated, never shipped — so the only bytes on the wire are round
//! messages, barrier flags, and the final per-shard color slices.

use congest::netplane::{self, kind, read_frame, Reader, Wire, WireError};
use congest::{Metrics, Scheduling, SimConfig};
use d2core::{ColoringOutcome, Params};
use graphs::Graph;
use std::io;
use std::net::SocketAddr;
use std::process::{Child, Command};

/// Pipelines the harness can serve over sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetAlgo {
    /// Theorem 1.2 (deterministic `∆²+1`).
    DetSmall,
    /// Theorem 1.1 (randomized, improved final phase).
    RandImproved,
}

impl NetAlgo {
    /// Stable `argv` token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            NetAlgo::DetSmall => "det-small",
            NetAlgo::RandImproved => "rand-improved",
        }
    }

    /// Parses an `argv` token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "det-small" => Some(NetAlgo::DetSmall),
            "rand-improved" => Some(NetAlgo::RandImproved),
            _ => None,
        }
    }
}

/// Graph families in the equivalence matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetGraph {
    /// `gnp_capped(n, deg/n, deg, graph_seed)`: sparse G(n, p) with a
    /// degree cap.
    GnpCapped,
    /// `random_regular(n, deg, graph_seed)`.
    RandomRegular,
}

impl NetGraph {
    /// Stable `argv` token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            NetGraph::GnpCapped => "gnp",
            NetGraph::RandomRegular => "regular",
        }
    }

    /// Parses an `argv` token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "gnp" => Some(NetGraph::GnpCapped),
            "regular" => Some(NetGraph::RandomRegular),
            _ => None,
        }
    }
}

/// A complete run recipe: every shard (and the sequential reference)
/// rebuilds the same world from these six values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetSpec {
    /// Pipeline to run.
    pub algo: NetAlgo,
    /// Graph family.
    pub family: NetGraph,
    /// Nodes.
    pub n: usize,
    /// Degree parameter (cap for `gnp`, d for `regular`).
    pub degree: usize,
    /// Graph-generation seed.
    pub graph_seed: u64,
    /// Simulation seed.
    pub run_seed: u64,
}

impl NetSpec {
    /// Serializes the spec as shard-process arguments.
    #[must_use]
    pub fn to_args(&self) -> Vec<String> {
        vec![
            self.algo.token().into(),
            self.family.token().into(),
            self.n.to_string(),
            self.degree.to_string(),
            self.graph_seed.to_string(),
            self.run_seed.to_string(),
        ]
    }

    /// Parses the six positional arguments produced by [`Self::to_args`].
    #[must_use]
    pub fn parse_args(args: &[String]) -> Option<Self> {
        let [algo, family, n, degree, graph_seed, run_seed] = args else {
            return None;
        };
        Some(NetSpec {
            algo: NetAlgo::parse(algo)?,
            family: NetGraph::parse(family)?,
            n: n.parse().ok()?,
            degree: degree.parse().ok()?,
            graph_seed: graph_seed.parse().ok()?,
            run_seed: run_seed.parse().ok()?,
        })
    }

    /// Regenerates the workload graph.
    #[must_use]
    pub fn build_graph(&self) -> Graph {
        match self.family {
            NetGraph::GnpCapped => graphs::gen::gnp_capped(
                self.n,
                self.degree as f64 / self.n.max(1) as f64,
                self.degree,
                self.graph_seed,
            ),
            NetGraph::RandomRegular => {
                graphs::gen::random_regular(self.n, self.degree, self.graph_seed)
            }
        }
    }

    /// The simulation config both sides run under. The netplane engine
    /// always steps every owned node, so the sequential reference pins
    /// [`Scheduling::AlwaysStep`] to keep `stepped_nodes` comparable.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        SimConfig::seeded(self.run_seed).with_scheduling(Scheduling::AlwaysStep)
    }

    /// Short display label for tables and logs.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}-{}-n{}-d{}-g{}-s{}",
            self.algo.token(),
            self.family.token(),
            self.n,
            self.degree,
            self.graph_seed,
            self.run_seed
        )
    }
}

/// Runs the spec's pipeline in-process (used by both the sequential
/// reference and, with a netplane installed, the shard body).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_pipeline(spec: &NetSpec, g: &Graph) -> Result<ColoringOutcome, congest::SimError> {
    let cfg = spec.config();
    let params = Params::practical();
    match spec.algo {
        NetAlgo::DetSmall => d2core::det::small::run(g, &params, &cfg),
        NetAlgo::RandImproved => d2core::rand::driver::improved(g, &params, &cfg),
    }
}

/// Runs the sequential reference for a spec.
#[must_use]
pub fn run_sequential(spec: &NetSpec) -> NetOutcome {
    let g = spec.build_graph();
    let out = run_pipeline(spec, &g).expect("sequential reference failed");
    NetOutcome {
        colors: out.colors,
        metrics: out.metrics,
    }
}

/// What one shard reports back on its control stream.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardResult {
    shard: u32,
    lo: u64,
    hi: u64,
    metrics: Metrics,
    colors: Vec<u32>,
}

impl Wire for ShardResult {
    fn put(&self, buf: &mut Vec<u8>) {
        self.shard.put(buf);
        self.lo.put(buf);
        self.hi.put(buf);
        self.metrics.put(buf);
        self.colors.put(buf);
    }

    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShardResult {
            shard: u32::take(r)?,
            lo: u64::take(r)?,
            hi: u64::take(r)?,
            metrics: Metrics::take(r)?,
            colors: Vec::<u32>::take(r)?,
        })
    }
}

/// A stitched distributed run: the full coloring plus the (globally
/// merged, shard-identical) metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetOutcome {
    /// Color of each node, indexed by node index.
    pub colors: Vec<u32>,
    /// Global metrics (every shard reports the same merged record).
    pub metrics: Metrics,
}

/// The body of one shard process: full membership handshake, pipeline
/// run with the netplane installed, `RESULT` report.
///
/// # Errors
///
/// Returns transport errors; pipeline failures abort the process (they
/// indicate an engine bug, not recoverable I/O).
pub fn shard_main(coordinator: SocketAddr, spec: &NetSpec) -> io::Result<()> {
    let plane = netplane::join_mesh(coordinator)?;
    let shard = plane.shard;
    netplane::install(plane);
    let g = spec.build_graph();
    let out = run_pipeline(spec, &g).expect("sharded pipeline failed");
    let mut plane = netplane::uninstall().expect("netplane vanished mid-run");
    let (lo, hi) = plane.local_range(g.n());
    let result = ShardResult {
        shard,
        lo: lo as u64,
        hi: hi as u64,
        metrics: out.metrics,
        colors: out.colors[lo..hi].to_vec(),
    };
    plane.send_result(&result.to_wire())
}

/// How to launch one shard process.
#[derive(Debug, Clone)]
pub struct ShardCommand {
    /// Executable path.
    pub program: String,
    /// Arguments inserted before the coordinator address (e.g.
    /// `["net-shard"]` when the harness re-execs itself).
    pub prefix_args: Vec<String>,
}

impl ShardCommand {
    /// The current executable re-entering through a subcommand.
    #[must_use]
    pub fn current_exe(subcommand: &str) -> Self {
        ShardCommand {
            program: std::env::current_exe()
                .expect("current_exe")
                .to_string_lossy()
                .into_owned(),
            prefix_args: vec![subcommand.into()],
        }
    }
}

/// Orchestrates a full distributed run: coordinator, `k` shard
/// processes, result stitching.
///
/// Panics on any shard failure — the harness and tests both want a loud
/// abort, never a silently partial coloring.
#[must_use]
pub fn run_distributed(spec: &NetSpec, k: u32, cmd: &ShardCommand) -> NetOutcome {
    assert!(k >= 1, "need at least one shard");
    let coord = netplane::coordinator().expect("bind coordinator listener");
    let addr = format!("127.0.0.1:{}", coord.port());

    let mut children: Vec<Child> = (0..k)
        .map(|i| {
            Command::new(&cmd.program)
                .args(&cmd.prefix_args)
                .arg(&addr)
                .args(spec.to_args())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn shard {i} ({}): {e}", cmd.program))
        })
        .collect();

    let controls = coord.assign(k).expect("shard membership handshake");
    let n = spec.n;
    let mut results: Vec<Option<ShardResult>> = (0..k).map(|_| None).collect();
    for mut stream in controls {
        let frame = read_frame(&mut stream).expect("shard RESULT frame");
        assert_eq!(frame.kind, kind::RESULT, "unexpected control frame");
        let r = ShardResult::from_wire(&frame.payload).expect("RESULT payload");
        let slot = r.shard as usize;
        assert!(
            results[slot].is_none(),
            "duplicate RESULT from shard {slot}"
        );
        results[slot] = Some(r);
    }
    for (i, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait on shard");
        assert!(status.success(), "shard {i} exited with {status}");
    }

    let results: Vec<ShardResult> = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("no RESULT from shard {i}")))
        .collect();
    let mut colors = vec![u32::MAX; n];
    let mut covered = 0usize;
    for r in &results {
        let (lo, hi) = (r.lo as usize, r.hi as usize);
        assert_eq!(
            (lo, hi),
            netplane::shard_range(n, k as usize, r.shard as usize),
            "shard {} reported a foreign range",
            r.shard
        );
        assert_eq!(r.colors.len(), hi - lo, "shard {} slice length", r.shard);
        colors[lo..hi].copy_from_slice(&r.colors);
        covered += hi - lo;
        assert_eq!(
            r.metrics, results[0].metrics,
            "shard {} disagrees on global metrics",
            r.shard
        );
    }
    assert_eq!(covered, n, "shard ranges do not tile the node set");
    NetOutcome {
        colors,
        metrics: results.into_iter().next().expect("k >= 1").metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_argv_roundtrip() {
        let spec = NetSpec {
            algo: NetAlgo::RandImproved,
            family: NetGraph::GnpCapped,
            n: 160,
            degree: 5,
            graph_seed: 7,
            run_seed: 42,
        };
        let args = spec.to_args();
        assert_eq!(NetSpec::parse_args(&args), Some(spec));
        assert!(NetSpec::parse_args(&args[..5]).is_none());
        let mut bad = args.clone();
        bad[0] = "quantum".into();
        assert!(NetSpec::parse_args(&bad).is_none());
    }

    #[test]
    fn shard_result_wire_roundtrip() {
        let r = ShardResult {
            shard: 3,
            lo: 100,
            hi: 150,
            metrics: Metrics {
                rounds: 17,
                messages: 900,
                ..Metrics::default()
            },
            colors: vec![1, 2, 3, u32::MAX],
        };
        let back = ShardResult::from_wire(&r.to_wire()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn graphs_regenerate_identically() {
        let spec = NetSpec {
            algo: NetAlgo::DetSmall,
            family: NetGraph::RandomRegular,
            n: 80,
            degree: 4,
            graph_seed: 3,
            run_seed: 1,
        };
        let a = spec.build_graph();
        let b = spec.build_graph();
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        for v in 0..a.n() as u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }
}
