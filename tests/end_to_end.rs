//! End-to-end integration: every algorithm × a matrix of workloads.
//!
//! The invariants checked here are the paper's headline guarantees:
//! validity of the d2-coloring, the palette bound of each theorem, and
//! CONGEST bandwidth compliance. Each workload builds its distance-2
//! oracle ([`D2View`]) once and verifies every outcome through it.

use d2color::prelude::*;
use d2core::det::splitting::SplitMode;
use graphs::D2View;

fn workloads() -> Vec<(String, Graph)> {
    vec![
        (
            "gnp-sparse".into(),
            graphs::gen::gnp_capped(200, 0.03, 6, 1),
        ),
        ("gnp-denser".into(), graphs::gen::gnp_capped(120, 0.1, 9, 2)),
        ("grid".into(), graphs::gen::grid(12, 12)),
        ("torus".into(), graphs::gen::torus(9, 9)),
        ("star".into(), graphs::gen::star(14)),
        ("clique".into(), graphs::gen::clique(12)),
        ("clique-ring".into(), graphs::gen::clique_ring(4, 6)),
        ("caterpillar".into(), graphs::gen::caterpillar(10, 4)),
        ("double-star".into(), graphs::gen::double_star(9)),
        ("unit-disk".into(), graphs::gen::unit_disk(150, 0.09, 3)),
        (
            "task-resource".into(),
            graphs::gen::task_resource(60, 20, 3, 4),
        ),
        (
            "pref-attach".into(),
            graphs::gen::preferential_attachment(150, 2, 5),
        ),
        ("binary-tree".into(), graphs::gen::binary_tree(100)),
        ("hypercube".into(), graphs::gen::hypercube(6)),
        ("biclique".into(), graphs::gen::complete_bipartite(6, 8)),
    ]
}

fn bound(g: &Graph) -> usize {
    let d = g.max_degree();
    (d * d).min(g.n().saturating_sub(1)) + 1
}

#[test]
fn randomized_improved_on_all_workloads() {
    for (name, g) in workloads() {
        let view = D2View::build(&g);
        let out = d2core::rand::driver::improved(&g, &Params::practical(), &SimConfig::seeded(10))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &out.colors),
            "{name}: invalid coloring"
        );
        assert!(
            out.palette_bound() <= bound(&g),
            "{name}: palette bound violated"
        );
        assert!(
            out.metrics.is_congest_compliant(),
            "{name}: bandwidth violated"
        );
    }
}

#[test]
fn randomized_basic_on_all_workloads() {
    for (name, g) in workloads() {
        let view = D2View::build(&g);
        let out = d2core::rand::driver::basic(&g, &Params::practical(), &SimConfig::seeded(20))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &out.colors),
            "{name}: invalid coloring"
        );
        assert!(
            out.palette_bound() <= bound(&g),
            "{name}: palette bound violated"
        );
    }
}

#[test]
fn deterministic_small_on_all_workloads() {
    for (name, g) in workloads() {
        let view = D2View::build(&g);
        let out = d2core::det::small::run(&g, &Params::practical(), &SimConfig::seeded(30))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &out.colors),
            "{name}: invalid coloring"
        );
        assert!(
            out.palette_bound() <= bound(&g),
            "{name}: palette bound violated"
        );
        assert!(
            out.metrics.is_congest_compliant(),
            "{name}: bandwidth violated"
        );
        // Determinism across repeats.
        let again = d2core::det::small::run(&g, &Params::practical(), &SimConfig::seeded(30))
            .expect("repeat run");
        assert_eq!(out.colors, again.colors, "{name}: nondeterministic");
    }
}

#[test]
fn split_color_theorem_1_3() {
    for (name, g) in [
        ("regular", graphs::gen::random_regular(140, 12, 7)),
        ("gnp", graphs::gen::gnp_capped(150, 0.06, 8, 8)),
    ] {
        let view = D2View::build(&g);
        for mode in [SplitMode::Deterministic, SplitMode::Randomized] {
            let (out, report) = d2core::det::split_color::run(
                &g,
                &Params::practical(),
                &SimConfig::seeded(40),
                2.0,
                mode,
                Some(1),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                graphs::verify::is_valid_d2_coloring_with(&view, &out.colors),
                "{name}/{mode:?}: invalid coloring"
            );
            assert!(
                out.palette_bound() <= report.palette,
                "{name}/{mode:?}: palette {} > laid out {}",
                out.palette_bound(),
                report.palette
            );
        }
    }
}

#[test]
fn g_coloring_theorem_3_4() {
    let g = graphs::gen::random_regular(160, 18, 9);
    let (out, report) = d2core::det::g_coloring::run(
        &g,
        &Params::practical(),
        &SimConfig::seeded(50),
        1.0,
        SplitMode::Deterministic,
        Some(2),
    )
    .expect("theorem 3.4 run");
    assert!(graphs::verify::is_valid_coloring(&g, &out.colors));
    assert!(out.palette_bound() <= report.palette);
}

#[test]
fn baselines_are_valid() {
    let g = graphs::gen::gnp_capped(100, 0.08, 6, 11);
    let view = D2View::build(&g);
    let over = d2core::baseline::oversampled(&g, 1.0, &SimConfig::seeded(60)).expect("oversampled");
    assert!(graphs::verify::is_valid_d2_coloring_with(
        &view,
        &over.colors
    ));
    let naive = d2core::baseline::naive_relay(&g, &SimConfig::seeded(61)).expect("naive relay");
    assert!(graphs::verify::is_valid_d2_coloring_with(
        &view,
        &naive.colors
    ));
    assert!(naive.palette_bound() <= bound(&g));
}

/// All algorithms agree with the centralized verifier on tiny edge cases.
#[test]
fn degenerate_inputs() {
    for g in [
        graphs::gen::empty(0),
        graphs::gen::empty(1),
        graphs::gen::empty(6),
        graphs::gen::path(2),
        graphs::gen::path(3),
    ] {
        let params = Params::practical();
        let cfg = SimConfig::seeded(70);
        let a = d2core::det::small::run(&g, &params, &cfg).expect("det");
        let b = d2core::rand::driver::improved(&g, &params, &cfg).expect("rand");
        if g.n() > 0 {
            let view = D2View::build(&g);
            assert!(graphs::verify::is_valid_d2_coloring_with(&view, &a.colors));
            assert!(graphs::verify::is_valid_d2_coloring_with(&view, &b.colors));
        } else {
            assert!(a.colors.is_empty() && b.colors.is_empty());
        }
    }
}
