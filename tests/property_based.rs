//! Property-based tests (proptest) over random graph shapes: the paper's
//! invariants must hold on *arbitrary* inputs, not just curated workloads.

use d2color::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    // (n, edge probability numerator, degree cap, seed)
    (4usize..60, 1u32..20, 3usize..8, 0u64..1000).prop_map(|(n, p, cap, seed)| {
        graphs::gen::gnp_capped(n, f64::from(p) / 100.0, cap, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1.2 on arbitrary graphs: valid, within ∆²+1, deterministic.
    #[test]
    fn det_small_always_valid(g in arb_graph(), seed in 0u64..100) {
        let out = d2core::det::small::run(&g, &Params::practical(), &SimConfig::seeded(seed))
            .expect("run");
        prop_assert!(graphs::verify::is_valid_d2_coloring(&g, &out.colors));
        let d = g.max_degree();
        prop_assert!(out.palette_bound() <= (d * d).min(g.n() - 1) + 1);
        prop_assert!(out.metrics.is_congest_compliant());
    }

    /// Theorem 1.1 on arbitrary graphs.
    #[test]
    fn rand_improved_always_valid(g in arb_graph(), seed in 0u64..100) {
        let out = d2core::rand::driver::improved(&g, &Params::practical(), &SimConfig::seeded(seed))
            .expect("run");
        prop_assert!(graphs::verify::is_valid_d2_coloring(&g, &out.colors));
        let d = g.max_degree();
        prop_assert!(out.palette_bound() <= (d * d).min(g.n() - 1) + 1);
    }

    /// The centralized square graph agrees with the distributed conflict
    /// semantics: any coloring valid per the verifier is a proper coloring
    /// of the explicit G².
    #[test]
    fn square_graph_consistency(g in arb_graph()) {
        let sq = graphs::square::square(&g);
        let (colors, _) = graphs::square::greedy_square_coloring(&g);
        prop_assert!(graphs::verify::is_valid_d2_coloring(&g, &colors));
        for (u, v) in sq.edges() {
            prop_assert_ne!(colors[u as usize], colors[v as usize]);
        }
    }

    /// Randomized splitting satisfies Definition 3.1 with a safe λ at
    /// every degree scale (threshold keeps low-degree vertices exempt).
    #[test]
    fn randomized_split_definition(g in arb_graph(), seed in 0u64..50) {
        let mut driver = d2core::Driver::new(&g, SimConfig::seeded(seed));
        let sides = driver
            .run_phase("split", &d2core::det::splitting::RandomizedSplit)
            .expect("split");
        let result = d2core::det::splitting::SplitResult {
            sides,
            lambda: 0.95,
            threshold: 12,
        };
        prop_assert!(result.satisfies_definition(&g, &vec![0; g.n()]));
    }
}
