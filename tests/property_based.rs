//! Property-based tests over random graph shapes: the paper's invariants
//! must hold on *arbitrary* inputs, not just curated workloads.
//!
//! Hand-rolled case generation (the build environment cannot fetch
//! `proptest`): each property sweeps a deterministic grid of
//! `gnp_capped(n, p, cap, seed)` parameters, so failures reproduce exactly.

use d2color::prelude::*;
use graphs::D2View;

/// Deterministic grid of random-graph cases; `cases` controls how many.
fn graph_cases(cases: u64) -> impl Iterator<Item = Graph> {
    (0..cases).map(|i| {
        let n = 4 + ((i * 17) % 56) as usize; // 4..60
        let p = f64::from(1 + (i as u32 * 7) % 19) / 100.0; // 0.01..0.20
        let cap = 3 + (i % 5) as usize; // 3..8
        graphs::gen::gnp_capped(n, p, cap, 1000 + i)
    })
}

/// Theorem 1.2 on arbitrary graphs: valid, within ∆²+1, CONGEST-compliant.
#[test]
fn det_small_always_valid() {
    for (i, g) in graph_cases(24).enumerate() {
        let out = d2core::det::small::run(&g, &Params::practical(), &SimConfig::seeded(i as u64))
            .expect("run");
        let view = D2View::build(&g);
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &out.colors),
            "case {i}: invalid coloring on {g:?}"
        );
        let d = g.max_degree();
        assert!(
            out.palette_bound() <= (d * d).min(g.n() - 1) + 1,
            "case {i}"
        );
        assert!(out.metrics.is_congest_compliant(), "case {i}");
    }
}

/// Theorem 1.1 on arbitrary graphs.
#[test]
fn rand_improved_always_valid() {
    for (i, g) in graph_cases(12).enumerate() {
        let out =
            d2core::rand::driver::improved(&g, &Params::practical(), &SimConfig::seeded(i as u64))
                .expect("run");
        let view = D2View::build(&g);
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &out.colors),
            "case {i}: invalid coloring on {g:?}"
        );
        let d = g.max_degree();
        assert!(
            out.palette_bound() <= (d * d).min(g.n() - 1) + 1,
            "case {i}"
        );
    }
}

/// The centralized square graph agrees with the distributed conflict
/// semantics: any coloring valid per the verifier is a proper coloring of
/// the explicit G².
#[test]
fn square_graph_consistency() {
    for (i, g) in graph_cases(12).enumerate() {
        let sq = graphs::square::square(&g);
        let (colors, _) = graphs::square::greedy_square_coloring(&g);
        let view = D2View::build(&g);
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &colors),
            "case {i}"
        );
        for (u, v) in sq.edges() {
            assert_ne!(
                colors[u as usize], colors[v as usize],
                "case {i}: edge ({u},{v})"
            );
        }
    }
}

/// Randomized splitting satisfies Definition 3.1 with a safe λ at every
/// degree scale (threshold keeps low-degree vertices exempt).
#[test]
fn randomized_split_definition() {
    for (i, g) in graph_cases(12).enumerate() {
        let mut driver = d2core::Driver::new(&g, SimConfig::seeded(i as u64));
        let sides = driver
            .run_phase("split", &d2core::det::splitting::RandomizedSplit)
            .expect("split");
        let result = d2core::det::splitting::SplitResult {
            sides,
            lambda: 0.95,
            threshold: 12,
        };
        assert!(result.satisfies_definition(&g, &vec![0; g.n()]), "case {i}");
    }
}

/// The precomputed [`D2View`] agrees with the naive per-call oracle
/// (`Graph::d2_neighbors` / `Graph::common_d2_neighbors`) on every node
/// pair, across random capped-G(n,p), cycle, star, and disconnected
/// graphs.
#[test]
fn d2view_agrees_with_naive_oracle() {
    let mut shapes: Vec<(String, Graph)> = graph_cases(16)
        .enumerate()
        .map(|(i, g)| (format!("gnp-case-{i}"), g))
        .collect();
    shapes.push(("cycle".into(), graphs::gen::cycle(17)));
    shapes.push(("star".into(), graphs::gen::star(9)));
    shapes.push((
        "disconnected".into(),
        Graph::from_edges(12, &[(0, 1), (1, 2), (4, 5), (7, 8), (8, 9), (9, 7)]).unwrap(),
    ));
    shapes.push(("isolated".into(), graphs::gen::empty(6)));
    for (name, g) in &shapes {
        let view = D2View::build(g);
        assert_eq!(view.n(), g.n(), "{name}");
        let mut scratch = Vec::new();
        for v in 0..g.n() as NodeId {
            let naive = g.d2_neighbors(v);
            assert_eq!(view.d2_neighbors(v), naive.as_slice(), "{name}: row {v}");
            assert_eq!(view.d2_degree(v), naive.len(), "{name}: degree {v}");
            g.d2_neighbors_into(v, &mut scratch);
            assert_eq!(scratch, naive, "{name}: scratch fallback {v}");
            for u in 0..g.n() as NodeId {
                assert_eq!(
                    view.common_d2(v, u),
                    g.common_d2_neighbors(v, u),
                    "{name}: common ({v},{u})"
                );
                assert_eq!(
                    view.are_d2_neighbors(v, u),
                    g.are_d2_neighbors(v, u),
                    "{name}: adjacency ({v},{u})"
                );
            }
        }
        assert_eq!(
            view.max_d2_degree(),
            graphs::square::square_max_degree(g),
            "{name}"
        );
    }
}

/// The D2View-backed verifier agrees with a naive double-loop check.
#[test]
fn verifier_matches_naive_check() {
    for (i, g) in graph_cases(12).enumerate() {
        let view = D2View::build(&g);
        // A valid coloring and a deliberately broken variant of it.
        let (colors, _) = graphs::square::greedy_square_coloring(&g);
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &colors),
            "case {i}"
        );
        if g.n() >= 2 && g.m() >= 1 {
            let (u, v) = g.edges().next().expect("has an edge");
            let mut broken = colors.clone();
            broken[v as usize] = broken[u as usize];
            assert!(
                !graphs::verify::is_valid_d2_coloring_with(&view, &broken),
                "case {i}: clash not caught"
            );
            let viol = graphs::verify::first_d2_violation(&g, &broken).expect("violation");
            assert_eq!(broken[viol.u as usize], broken[viol.v as usize]);
        }
    }
}
