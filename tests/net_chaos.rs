//! Chaos recovery: a shard dies mid-phase, the run still finishes
//! bit-identical.
//!
//! Each cell runs a pipeline across 4 OS processes under a seeded chaos
//! schedule ([`congest::netplane::chaos`]) that aborts one shard at an
//! early round barrier — for some seeds with a torn frame half-written
//! on the wire. The supervisor ([`run_supervised`]) must observe the
//! death, respawn the victim with `--rejoin`, and the replacement must
//! replay the survivors' retained history and finish the run with
//! colorings and metrics bit-identical to the sequential reference.
//! The kill is part of the assertion: a schedule that never fires, or a
//! supervisor that never respawns, fails the test.

use congest::netplane::chaos::kill_plan;
use d2color::netharness::{
    run_sequential, run_supervised, NetAlgo, NetGraph, NetSpec, ShardCommand,
};

const K: u32 = 4;

fn shard_cmd() -> ShardCommand {
    ShardCommand {
        program: env!("CARGO_BIN_EXE_net_shard").into(),
        prefix_args: Vec::new(),
    }
}

fn check_chaos(spec: NetSpec, chaos_seed: u64) {
    let seq = run_sequential(&spec);
    let g = spec.build_graph();
    assert!(
        graphs::verify::is_valid_d2_coloring(&g, &seq.colors),
        "sequential reference invalid for {}",
        spec.label()
    );
    let (net, report) = run_supervised(&spec, K, &shard_cmd(), chaos_seed);
    let plan = kill_plan(chaos_seed, K);
    assert!(
        report.respawned,
        "seed {chaos_seed}: the kill never fired, no recovery exercised ({})",
        spec.label()
    );
    assert_eq!(report.killed_shard, plan.victim);
    assert_eq!(report.kill_sync, plan.sync);
    assert_eq!(
        net.colors,
        seq.colors,
        "colors diverge after losing shard {} at sync {} ({})",
        plan.victim,
        plan.sync,
        spec.label()
    );
    assert_eq!(
        net.metrics,
        seq.metrics,
        "metrics diverge after recovery ({})",
        spec.label()
    );
}

#[test]
fn det_small_survives_a_mid_phase_shard_kill() {
    check_chaos(
        NetSpec {
            algo: NetAlgo::DetSmall,
            family: NetGraph::GnpCapped,
            n: 120,
            degree: 5,
            graph_seed: 1,
            run_seed: 38,
        },
        29,
    );
}

#[test]
fn rand_improved_survives_a_mid_phase_shard_kill() {
    check_chaos(
        NetSpec {
            algo: NetAlgo::RandImproved,
            family: NetGraph::RandomRegular,
            n: 96,
            degree: 6,
            graph_seed: 7,
            run_seed: 224,
        },
        29,
    );
}

#[test]
fn recovery_handles_a_torn_frame_kill() {
    // Find a seed whose schedule kills *mid-frame* (a torn ROUND frame
    // is left on the wire), to force the survivors' decoders through the
    // structured-EOF path during recovery.
    let seed = (0..64)
        .find(|&s| kill_plan(s, K).mid_frame)
        .expect("some small seed kills mid-frame");
    check_chaos(
        NetSpec {
            algo: NetAlgo::DetSmall,
            family: NetGraph::RandomRegular,
            n: 96,
            degree: 4,
            graph_seed: 3,
            run_seed: 100,
        },
        seed,
    );
}
