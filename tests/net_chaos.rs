//! Chaos recovery: a shard dies mid-phase, the run still finishes
//! bit-identical.
//!
//! Each cell runs a pipeline across 4 OS processes under a seeded chaos
//! schedule ([`congest::netplane::chaos`]) that aborts one shard at an
//! early round barrier — for some seeds with a torn frame half-written
//! on the wire. The supervisor ([`run_supervised`]) must observe the
//! death, respawn the victim with `--rejoin`, and the replacement must
//! replay the survivors' retained history and finish the run with
//! colorings and metrics bit-identical to the sequential reference.
//! The kill is part of the assertion: a schedule that never fires, or a
//! supervisor that never respawns, fails the test.

use congest::netplane::chaos::kill_plan;
use d2color::netharness::{
    run_sequential, run_supervised, NetAlgo, NetGraph, NetSpec, RunProfile, ShardCommand,
};

const K: u32 = 4;

fn shard_cmd() -> ShardCommand {
    ShardCommand {
        program: env!("CARGO_BIN_EXE_net_shard").into(),
        prefix_args: Vec::new(),
    }
}

fn check_chaos(spec: NetSpec, chaos_seed: u64) {
    check_chaos_profile(spec, chaos_seed, &RunProfile::default());
}

fn check_chaos_profile(spec: NetSpec, chaos_seed: u64, profile: &RunProfile) {
    let seq = run_sequential(&spec, profile);
    // An adversarial drop plane may legitimately leave conflicts; the
    // contract there is purely differential. Clean profiles must verify.
    if profile.drops.is_none() {
        let g = spec.build_graph();
        assert!(
            graphs::verify::is_valid_d2_coloring(&g, &seq.colors),
            "sequential reference invalid for {}",
            spec.label()
        );
    }
    let (net, report) = run_supervised(&spec, K, &shard_cmd(), chaos_seed, profile);
    let plan = kill_plan(chaos_seed, K);
    assert!(
        report.respawned,
        "seed {chaos_seed}: the kill never fired, no recovery exercised ({})",
        spec.label()
    );
    assert_eq!(report.killed_shard, plan.victim);
    assert_eq!(report.kill_sync, plan.sync);
    assert_eq!(
        net.colors,
        seq.colors,
        "colors diverge after losing shard {} at sync {} ({})",
        plan.victim,
        plan.sync,
        spec.label()
    );
    assert_eq!(
        net.metrics,
        seq.metrics,
        "metrics diverge after recovery ({})",
        spec.label()
    );
}

#[test]
fn det_small_survives_a_mid_phase_shard_kill() {
    check_chaos(
        NetSpec {
            algo: NetAlgo::DetSmall,
            family: NetGraph::GnpCapped,
            n: 120,
            degree: 5,
            graph_seed: 1,
            run_seed: 38,
        },
        29,
    );
}

#[test]
fn rand_improved_survives_a_mid_phase_shard_kill() {
    check_chaos(
        NetSpec {
            algo: NetAlgo::RandImproved,
            family: NetGraph::RandomRegular,
            n: 96,
            degree: 6,
            graph_seed: 7,
            run_seed: 224,
        },
        29,
    );
}

/// Every survivability layer at once: a chaos kill/respawn while the
/// engine runs active-set scheduling *and* a simulated drop-fault
/// plane. The rejoined replacement rebuilds the same frontier and
/// charges the same seeded fates, so the stitched outcome — coloring,
/// fault counters, stepped-node total — still matches the sequential
/// reference bit-for-bit.
#[test]
fn chaos_kill_survives_active_set_with_drop_faults() {
    let spec = NetSpec {
        algo: NetAlgo::DetSmall,
        family: NetGraph::GnpCapped,
        n: 120,
        degree: 5,
        graph_seed: 1,
        run_seed: 38,
    };
    let profile = RunProfile::active_set().with_drops(25_000, 13);
    let seq = run_sequential(&spec, &profile);
    assert!(
        seq.metrics.faults_dropped > 0,
        "drop plane never fired — the cell proves nothing"
    );
    let always = run_sequential(&spec, &RunProfile::default().with_drops(25_000, 13));
    assert!(
        seq.metrics.stepped_nodes < always.metrics.stepped_nodes,
        "frontier never parked a node under faults"
    );
    check_chaos_profile(spec, 29, &profile);
}

#[test]
fn recovery_handles_a_torn_frame_kill() {
    // Find a seed whose schedule kills *mid-frame* (a torn ROUND frame
    // is left on the wire), to force the survivors' decoders through the
    // structured-EOF path during recovery.
    let seed = (0..64)
        .find(|&s| kill_plan(s, K).mid_frame)
        .expect("some small seed kills mid-frame");
    check_chaos(
        NetSpec {
            algo: NetAlgo::DetSmall,
            family: NetGraph::RandomRegular,
            n: 96,
            degree: 4,
            graph_seed: 3,
            run_seed: 100,
        },
        seed,
    );
}
