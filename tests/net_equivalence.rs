//! Multi-process equivalence: the netplane serves the same coloring.
//!
//! For every `(algorithm, graph family, seed)` cell, runs the pipeline
//! once sequentially and once sharded across 2 and 4 OS processes on
//! localhost (real TCP, the production `net_shard` binary), and asserts
//! the colorings, rounds, messages, and bit totals are identical. This
//! is the netplane's contract test: the socket transport must be
//! unobservable in every model-level number.

use d2color::netharness::{
    run_distributed, run_sequential, NetAlgo, NetGraph, NetSpec, ShardCommand,
};

fn shard_cmd() -> ShardCommand {
    ShardCommand {
        program: env!("CARGO_BIN_EXE_net_shard").into(),
        prefix_args: Vec::new(),
    }
}

fn check_spec(spec: NetSpec) {
    let seq = run_sequential(&spec);
    let g = spec.build_graph();
    assert!(
        graphs::verify::is_valid_d2_coloring(&g, &seq.colors),
        "sequential reference invalid for {}",
        spec.label()
    );
    for k in [2u32, 4] {
        let net = run_distributed(&spec, k, &shard_cmd());
        assert_eq!(
            net.colors,
            seq.colors,
            "colors diverge at k={k} for {}",
            spec.label()
        );
        assert_eq!(
            net.metrics.rounds,
            seq.metrics.rounds,
            "rounds diverge at k={k} for {}",
            spec.label()
        );
        assert_eq!(
            net.metrics.messages,
            seq.metrics.messages,
            "messages diverge at k={k} for {}",
            spec.label()
        );
        assert_eq!(
            net.metrics.total_bits,
            seq.metrics.total_bits,
            "bit totals diverge at k={k} for {}",
            spec.label()
        );
        assert_eq!(
            net.metrics,
            seq.metrics,
            "full metrics diverge at k={k} for {}",
            spec.label()
        );
    }
}

fn spec(algo: NetAlgo, family: NetGraph, n: usize, degree: usize, seed: u64) -> NetSpec {
    NetSpec {
        algo,
        family,
        n,
        degree,
        graph_seed: seed,
        run_seed: seed.wrapping_mul(31).wrapping_add(7),
    }
}

#[test]
fn det_small_gnp_matches_over_sockets() {
    for seed in [1u64, 2] {
        check_spec(spec(NetAlgo::DetSmall, NetGraph::GnpCapped, 120, 5, seed));
    }
}

#[test]
fn det_small_regular_matches_over_sockets() {
    for seed in [3u64, 4] {
        check_spec(spec(
            NetAlgo::DetSmall,
            NetGraph::RandomRegular,
            96,
            4,
            seed,
        ));
    }
}

#[test]
fn rand_improved_gnp_matches_over_sockets() {
    for seed in [5u64, 6] {
        check_spec(spec(
            NetAlgo::RandImproved,
            NetGraph::GnpCapped,
            150,
            6,
            seed,
        ));
    }
}

#[test]
fn rand_improved_regular_matches_over_sockets() {
    for seed in [7u64, 8] {
        check_spec(spec(
            NetAlgo::RandImproved,
            NetGraph::RandomRegular,
            120,
            6,
            seed,
        ));
    }
}
