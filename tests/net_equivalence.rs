//! Multi-process equivalence: the netplane serves the same coloring.
//!
//! For every `(algorithm, graph family, seed)` cell, runs the pipeline
//! once sequentially and once sharded across 2 and 4 OS processes on
//! localhost (real TCP, the production `net_shard` binary), and asserts
//! the colorings, rounds, messages, and bit totals are identical. This
//! is the netplane's contract test: the socket transport must be
//! unobservable in every model-level number.

use d2color::netharness::{
    run_distributed, run_sequential, NetAlgo, NetGraph, NetSpec, RunProfile, ShardCommand,
};

fn shard_cmd() -> ShardCommand {
    ShardCommand {
        program: env!("CARGO_BIN_EXE_net_shard").into(),
        prefix_args: Vec::new(),
    }
}

fn check_spec(spec: NetSpec) {
    check_profile(spec, &RunProfile::default());
}

fn check_profile(spec: NetSpec, profile: &RunProfile) {
    let seq = run_sequential(&spec, profile);
    // Under an adversarial drop plane the algorithm may legitimately
    // terminate with conflicts (lost announcements); the contract there
    // is purely differential. Clean profiles must verify.
    if profile.drops.is_none() {
        let g = spec.build_graph();
        assert!(
            graphs::verify::is_valid_d2_coloring(&g, &seq.colors),
            "sequential reference invalid for {}",
            spec.label()
        );
    }
    for k in [2u32, 4] {
        let net = run_distributed(&spec, k, &shard_cmd(), profile);
        assert_eq!(
            net.colors,
            seq.colors,
            "colors diverge at k={k} for {}",
            spec.label()
        );
        assert_eq!(
            net.metrics.rounds,
            seq.metrics.rounds,
            "rounds diverge at k={k} for {}",
            spec.label()
        );
        assert_eq!(
            net.metrics.messages,
            seq.metrics.messages,
            "messages diverge at k={k} for {}",
            spec.label()
        );
        assert_eq!(
            net.metrics.total_bits,
            seq.metrics.total_bits,
            "bit totals diverge at k={k} for {}",
            spec.label()
        );
        assert_eq!(
            net.metrics,
            seq.metrics,
            "full metrics diverge at k={k} for {}",
            spec.label()
        );
    }
}

fn spec(algo: NetAlgo, family: NetGraph, n: usize, degree: usize, seed: u64) -> NetSpec {
    NetSpec {
        algo,
        family,
        n,
        degree,
        graph_seed: seed,
        run_seed: seed.wrapping_mul(31).wrapping_add(7),
    }
}

#[test]
fn det_small_gnp_matches_over_sockets() {
    for seed in [1u64, 2] {
        check_spec(spec(NetAlgo::DetSmall, NetGraph::GnpCapped, 120, 5, seed));
    }
}

#[test]
fn det_small_regular_matches_over_sockets() {
    for seed in [3u64, 4] {
        check_spec(spec(
            NetAlgo::DetSmall,
            NetGraph::RandomRegular,
            96,
            4,
            seed,
        ));
    }
}

#[test]
fn rand_improved_gnp_matches_over_sockets() {
    for seed in [5u64, 6] {
        check_spec(spec(
            NetAlgo::RandImproved,
            NetGraph::GnpCapped,
            150,
            6,
            seed,
        ));
    }
}

#[test]
fn rand_improved_regular_matches_over_sockets() {
    for seed in [7u64, 8] {
        check_spec(spec(
            NetAlgo::RandImproved,
            NetGraph::RandomRegular,
            120,
            6,
            seed,
        ));
    }
}

/// Active-set scheduling over sockets: the sharded run under
/// `--sched active` must be bit-identical to the *active-set*
/// sequential reference — and that reference must produce the same
/// coloring as the always-step one while stepping strictly fewer
/// nodes. `stepped_nodes` is the only metric allowed to move.
#[test]
fn active_set_profile_matches_over_sockets() {
    let spec = spec(NetAlgo::DetSmall, NetGraph::GnpCapped, 120, 5, 1);
    let active = RunProfile::active_set();
    let always = run_sequential(&spec, &RunProfile::default());
    let seq = run_sequential(&spec, &active);
    assert_eq!(seq.colors, always.colors, "scheduling changed the coloring");
    assert_eq!(seq.metrics.rounds, always.metrics.rounds);
    assert_eq!(seq.metrics.messages, always.metrics.messages);
    assert_eq!(seq.metrics.total_bits, always.metrics.total_bits);
    assert!(
        seq.metrics.stepped_nodes < always.metrics.stepped_nodes,
        "frontier never parked a node ({} vs {})",
        seq.metrics.stepped_nodes,
        always.metrics.stepped_nodes
    );
    check_profile(spec, &active);
}

/// Simulated drop faults over sockets: the seeded fault plane is a pure
/// function of `(config, salt, n)`, so every shard charges the same
/// fates and the stitched outcome — including the fault counters —
/// matches the sequential reference bit-for-bit.
#[test]
fn drop_fault_profile_matches_over_sockets() {
    let spec = spec(NetAlgo::DetSmall, NetGraph::RandomRegular, 96, 4, 3);
    let profile = RunProfile::default().with_drops(25_000, 11);
    let seq = run_sequential(&spec, &profile);
    assert!(
        seq.metrics.faults_dropped > 0,
        "drop plane never fired — the cell proves nothing"
    );
    check_profile(spec, &profile);
}

/// The combined cell the PR's acceptance criterion names: active-set
/// scheduling *and* a drop-fault plane, across processes, bit-identical
/// to the sequential engine.
#[test]
fn active_set_with_drop_faults_matches_over_sockets() {
    let spec = spec(NetAlgo::DetSmall, NetGraph::GnpCapped, 120, 5, 2);
    let profile = RunProfile::active_set().with_drops(25_000, 7);
    let seq = run_sequential(&spec, &profile);
    assert!(seq.metrics.faults_dropped > 0, "drop plane never fired");
    check_profile(spec, &profile);
}
