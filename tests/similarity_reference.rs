//! The buffered similarity fold, kept alive as the bit-identity
//! reference for the streaming fold (the same pattern PR 3 used for the
//! O(n²) Bernoulli sampler): this file re-implements the pre-streaming
//! `SimilarityState` — every port's second-stage list accumulated whole
//! in `second_lists`, flags computed by a terminal pass over the buffered
//! ids (one-word-bitmask sort-and-scan for `degree + 1 ≤ 64`, pairwise
//! sorted merges above) — and pins the production streaming fold to it:
//! per-node [`SimilarityKnowledge`] and the full run metrics (rounds,
//! messages, bit totals) must be **bit-identical** across
//! gnp / random_regular / cycle / degree-65+ families × exact + sampled
//! constructions × sync periods {1, 4} × both engines.
//!
//! The degree-65+ families (`clique(66)`, `star(70)`) are the regression
//! net for the old `compute_flags` fallback: the buffered fold silently
//! dropped to `O(deg²·∆²)` pairwise merges when `degree + 1 > 64`
//! (one-word bitmask exhausted), while the streaming counter tags
//! sources by index and has no such ceiling — the two paths must still
//! agree flag for flag.

use congest::{Inbox, NodeCtx, NodeRng, Outbox, Port, Protocol, SimConfig, Status};
use d2core::rand::similarity::{
    ExactSimilarity, IdBatch, SampledSimilarity, SimMsg, SimilarityKnowledge,
};
use rand::Rng;

// ---------------------------------------------------------------------
// The buffered reference, verbatim from the pre-streaming module (only
// the flag sink changed: `SimilarityKnowledge` is a bit matrix now, so
// the terminal pass writes through `set_pair`).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    First,
    Second,
    Finished,
}

#[derive(Debug, Clone)]
struct BufferedState {
    knowledge: SimilarityKnowledge,
    in_sample: bool,
    set_size: usize,
    stage: Stage,
    send_queue: Vec<u64>,
    sent_end: bool,
    first_lists: Vec<Vec<u64>>,
    first_done: Vec<bool>,
    second_lists: Vec<Vec<u64>>,
    second_done: Vec<bool>,
    my_first: Vec<u64>,
    my_second: Vec<u64>,
}

impl BufferedState {
    fn new(degree: usize) -> Self {
        BufferedState {
            knowledge: SimilarityKnowledge::empty(degree),
            in_sample: false,
            set_size: 0,
            stage: Stage::First,
            send_queue: Vec::new(),
            sent_end: false,
            first_lists: vec![Vec::new(); degree],
            first_done: vec![false; degree],
            second_lists: vec![Vec::new(); degree],
            second_done: vec![false; degree],
            my_first: Vec::new(),
            my_second: Vec::new(),
        }
    }

    fn fold_inbox(&mut self, inbox: &Inbox<SimMsg>) {
        for &(p, ref m) in inbox.iter() {
            let p = p as usize;
            match m {
                SimMsg::InS => {}
                SimMsg::Batch(ids) => {
                    if self.first_done[p] {
                        self.second_lists[p].extend_from_slice(ids.as_slice());
                    } else {
                        self.first_lists[p].extend_from_slice(ids.as_slice());
                    }
                }
                SimMsg::End => {
                    if self.first_done[p] {
                        self.second_done[p] = true;
                    } else {
                        self.first_done[p] = true;
                    }
                }
            }
        }
    }

    fn pump<F: FnMut(Port, SimMsg)>(&mut self, degree: usize, per_batch: usize, send: &mut F) {
        if self.sent_end {
            return;
        }
        if self.send_queue.is_empty() {
            for p in 0..degree as Port {
                send(p, SimMsg::End);
            }
            self.sent_end = true;
            return;
        }
        let take = per_batch.min(self.send_queue.len());
        let batch = IdBatch::from_slice(&self.send_queue[..take]);
        self.send_queue.drain(..take);
        for p in 0..degree.saturating_sub(1) as Port {
            send(p, SimMsg::Batch(batch.clone()));
        }
        if degree > 0 {
            send(degree as Port - 1, SimMsg::Batch(batch));
        }
    }

    /// The buffered terminal pass: one-word-bitmask sort-and-scan while
    /// `degree + 1 ≤ 64`, pairwise sorted merges above (the fallback the
    /// streaming counter exists to retire).
    fn compute_flags(&mut self, degree: usize, h_thresh: f64, hhat_thresh: f64) {
        let k = degree + 1;
        let mut counts = vec![0u32; k * k];
        if k <= 64 {
            let total: usize =
                self.second_lists.iter().map(Vec::len).sum::<usize>() + self.my_second.len();
            let mut tagged: Vec<(u64, u64)> = Vec::with_capacity(total);
            for (i, set) in self.second_lists.iter().enumerate() {
                tagged.extend(set.iter().map(|&id| (id, 1u64 << i)));
            }
            tagged.extend(self.my_second.iter().map(|&id| (id, 1u64 << degree)));
            tagged.sort_unstable_by_key(|&(id, _)| id);
            let mut i = 0;
            while i < tagged.len() {
                let id = tagged[i].0;
                let mut mask = 0u64;
                while i < tagged.len() && tagged[i].0 == id {
                    mask |= tagged[i].1;
                    i += 1;
                }
                let mut a_bits = mask;
                while a_bits != 0 {
                    let a = a_bits.trailing_zeros() as usize;
                    a_bits &= a_bits - 1;
                    let mut b_bits = a_bits;
                    while b_bits != 0 {
                        let b = b_bits.trailing_zeros() as usize;
                        b_bits &= b_bits - 1;
                        counts[a * k + b] += 1;
                    }
                }
            }
        } else {
            let mut sets: Vec<&[u64]> = self.second_lists.iter().map(Vec::as_slice).collect();
            sets.push(&self.my_second);
            for a in 0..k {
                for b in (a + 1)..k {
                    counts[a * k + b] = intersection_size(sets[a], sets[b]) as u32;
                }
            }
        }
        for a in 0..k {
            for b in (a + 1)..k {
                let common = f64::from(counts[a * k + b]);
                self.knowledge
                    .set_pair(a, b, common >= h_thresh, common >= hhat_thresh);
            }
        }
    }
}

fn sorted_dedup(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

fn intersection_size(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Mirrors the production capacity (including the inline-cap clamp, so
/// the reference moves the exact same batches).
fn id_batch_capacity(budget: u64, n: usize) -> usize {
    let cap = ((budget.saturating_sub(16)) / graphs::id_bits(n).max(1)).max(1) as usize;
    cap.min(32)
}

struct BufferedExact {
    budget: u64,
    period: u64,
}

impl Protocol for BufferedExact {
    type State = BufferedState;
    type Msg = SimMsg;

    fn init(&self, ctx: &NodeCtx, _rng: &mut NodeRng) -> BufferedState {
        let mut st = BufferedState::new(ctx.degree());
        st.my_first = sorted_dedup(
            ctx.neighbor_idents()
                .iter()
                .copied()
                .chain([ctx.ident])
                .collect(),
        );
        st.send_queue = st.my_first.clone();
        st
    }

    fn sync_period(&self) -> u64 {
        self.period
    }

    fn round(
        &self,
        st: &mut BufferedState,
        ctx: &NodeCtx,
        _rng: &mut NodeRng,
        inbox: &Inbox<SimMsg>,
        out: &mut Outbox<SimMsg>,
    ) -> Status {
        let degree = ctx.degree();
        let per_batch = id_batch_capacity(self.budget.saturating_mul(self.period), ctx.n);
        st.fold_inbox(inbox);
        if !ctx.round.is_multiple_of(self.period) {
            return if st.stage == Stage::Finished {
                Status::Done
            } else {
                Status::Running
            };
        }
        match st.stage {
            Stage::First => {
                st.pump(degree, per_batch, &mut |p, m| out.send(p, m));
                if st.sent_end && st.first_done.iter().all(|&d| d) {
                    let mut d2: Vec<u64> = st.first_lists.iter().flatten().copied().collect();
                    d2.extend(st.my_first.iter().copied());
                    let mut d2 = sorted_dedup(d2);
                    if let Ok(i) = d2.binary_search(&ctx.ident) {
                        d2.remove(i);
                    }
                    st.set_size = d2.len();
                    st.my_second = d2.clone();
                    st.send_queue = d2;
                    st.sent_end = false;
                    st.stage = Stage::Second;
                }
                Status::Running
            }
            Stage::Second => {
                st.pump(degree, per_batch, &mut |p, m| out.send(p, m));
                if st.sent_end && st.second_done.iter().all(|&d| d) {
                    for p in 0..degree {
                        st.second_lists[p] = sorted_dedup(std::mem::take(&mut st.second_lists[p]));
                    }
                    let dsq = (ctx.delta_sq().min(ctx.n.saturating_sub(1)) as f64).max(1.0);
                    st.compute_flags(degree, 2.0 / 3.0 * dsq, 5.0 / 6.0 * dsq);
                    st.stage = Stage::Finished;
                    return Status::Done;
                }
                Status::Running
            }
            Stage::Finished => Status::Done,
        }
    }
}

struct BufferedSampled {
    p: f64,
    expected_hits: f64,
    budget: u64,
    period: u64,
}

impl Protocol for BufferedSampled {
    type State = BufferedState;
    type Msg = SimMsg;

    fn init(&self, ctx: &NodeCtx, rng: &mut NodeRng) -> BufferedState {
        let mut st = BufferedState::new(ctx.degree());
        st.in_sample = rng.gen_bool(self.p.clamp(0.0, 1.0));
        st
    }

    fn sync_period(&self) -> u64 {
        self.period
    }

    fn round(
        &self,
        st: &mut BufferedState,
        ctx: &NodeCtx,
        _rng: &mut NodeRng,
        inbox: &Inbox<SimMsg>,
        out: &mut Outbox<SimMsg>,
    ) -> Status {
        let degree = ctx.degree();
        let per_batch = id_batch_capacity(self.budget.saturating_mul(self.period), ctx.n);
        if ctx.round == 0 {
            if st.in_sample {
                for p in 0..degree as Port {
                    out.send(p, SimMsg::InS);
                }
            }
            return Status::Running;
        }
        if ctx.round == 1 {
            let mut list: Vec<u64> = inbox
                .iter()
                .filter(|(_, m)| matches!(m, SimMsg::InS))
                .map(|&(p, _)| ctx.neighbor_idents()[p as usize])
                .collect();
            if st.in_sample {
                list.push(ctx.ident);
            }
            st.my_first = sorted_dedup(list);
            st.send_queue = st.my_first.clone();
        }
        st.fold_inbox(inbox);
        if !ctx.round.is_multiple_of(self.period) {
            return if st.stage == Stage::Finished {
                Status::Done
            } else {
                Status::Running
            };
        }
        match st.stage {
            Stage::First => {
                st.pump(degree, per_batch, &mut |p, m| out.send(p, m));
                if st.sent_end && st.first_done.iter().all(|&d| d) {
                    let sv: Vec<u64> = st.first_lists.iter().flatten().copied().collect();
                    let mut sv = sorted_dedup(sv);
                    if let Ok(i) = sv.binary_search(&ctx.ident) {
                        sv.remove(i);
                    }
                    st.set_size = sv.len();
                    st.my_second = sv.clone();
                    st.send_queue = sv;
                    st.sent_end = false;
                    st.stage = Stage::Second;
                }
                Status::Running
            }
            Stage::Second => {
                st.pump(degree, per_batch, &mut |p, m| out.send(p, m));
                if st.sent_end && st.second_done.iter().all(|&d| d) {
                    for p in 0..degree {
                        st.second_lists[p] = sorted_dedup(std::mem::take(&mut st.second_lists[p]));
                    }
                    let m = self.expected_hits;
                    st.compute_flags(degree, 5.0 / 6.0 * m, 11.0 / 12.0 * m);
                    st.stage = Stage::Finished;
                    return Status::Done;
                }
                Status::Running
            }
            Stage::Finished => Status::Done,
        }
    }
}

// ---------------------------------------------------------------------
// The differential sweep.
// ---------------------------------------------------------------------

/// The family sweep: the three ISSUE families plus the two degree-65+
/// regressions for the buffered fallback path.
fn families(seed: u64) -> Vec<(String, graphs::Graph)> {
    vec![
        ("gnp".into(), graphs::gen::gnp(44, 0.09, seed)),
        (
            "random_regular".into(),
            graphs::gen::random_regular(48, 8, seed),
        ),
        ("cycle".into(), graphs::gen::cycle(30)),
        ("clique66".into(), graphs::gen::clique(66)),
        ("star70".into(), graphs::gen::star(70)),
    ]
}

fn assert_states_identical(
    label: &str,
    streaming: &[d2core::rand::similarity::SimilarityState],
    buffered: &[BufferedState],
) {
    assert_eq!(streaming.len(), buffered.len(), "{label}: node counts");
    for (v, (s, b)) in streaming.iter().zip(buffered).enumerate() {
        assert_eq!(
            s.knowledge, b.knowledge,
            "{label}: node {v} knowledge diverged from the buffered fold"
        );
        assert_eq!(s.set_size, b.set_size, "{label}: node {v} set_size");
        assert_eq!(s.in_sample, b.in_sample, "{label}: node {v} in_sample");
    }
}

/// Exact construction: streaming vs buffered, every family × period ×
/// engine cell bit-identical in knowledge and metrics.
#[test]
fn streaming_exact_matches_buffered_reference() {
    for seed in [3u64, 19] {
        for (name, g) in families(seed) {
            let cfg = SimConfig::seeded(seed);
            let budget = cfg.bandwidth_bits(g.n());
            for period in [1u64, 4] {
                let label = format!("{name}/seed{seed}/p{period}");
                let stream_proto = ExactSimilarity::new(budget).with_period(period);
                let buf_proto = BufferedExact { budget, period };
                let s_seq = congest::run(&g, &stream_proto, &cfg).expect("streaming seq");
                let b_seq = congest::run(&g, &buf_proto, &cfg).expect("buffered seq");
                assert_eq!(
                    s_seq.metrics, b_seq.metrics,
                    "{label}: metrics diverged (the fold must be receiver-side only)"
                );
                assert_states_identical(&label, &s_seq.states, &b_seq.states);
                let s_par = congest::run_parallel(&g, &stream_proto, &cfg, 3).expect("par");
                assert_eq!(s_seq.metrics, s_par.metrics, "{label}: engine metrics");
                assert_states_identical(&format!("{label}/par"), &s_par.states, &b_seq.states);
            }
        }
    }
}

/// Sampled construction: identical rng consumption, so the sample sets —
/// and everything downstream — must agree stream-vs-buffer too.
#[test]
fn streaming_sampled_matches_buffered_reference() {
    for seed in [5u64, 23] {
        for (name, g) in families(seed) {
            let cfg = SimConfig::seeded(seed);
            let budget = cfg.bandwidth_bits(g.n());
            let d = g.max_degree();
            let dc = (d * d).min(g.n().saturating_sub(1)).max(1);
            let p = 0.5;
            for period in [1u64, 4] {
                let label = format!("sampled/{name}/seed{seed}/p{period}");
                let stream_proto = SampledSimilarity::new(p, dc, budget).with_period(period);
                let buf_proto = BufferedSampled {
                    p,
                    expected_hits: p * dc as f64,
                    budget,
                    period,
                };
                let s_seq = congest::run(&g, &stream_proto, &cfg).expect("streaming seq");
                let b_seq = congest::run(&g, &buf_proto, &cfg).expect("buffered seq");
                assert_eq!(s_seq.metrics, b_seq.metrics, "{label}: metrics diverged");
                assert_states_identical(&label, &s_seq.states, &b_seq.states);
                let s_par = congest::run_parallel(&g, &stream_proto, &cfg, 3).expect("par");
                assert_eq!(s_seq.metrics, s_par.metrics, "{label}: engine metrics");
                assert_states_identical(&format!("{label}/par"), &s_par.states, &b_seq.states);
            }
        }
    }
}

/// Focused degree-65+ regression (the ISSUE's `compute_flags` fallback
/// bug): on a 70-leaf star the center's `k = 71` pair indices exceeded
/// the one-word bitmask, so the buffered fold used pairwise merges —
/// streaming flags must equal that fallback exactly, and the center must
/// actually have similar pairs (its leaves share all of `N²`).
#[test]
fn degree_above_64_flags_equal_fallback_and_are_nontrivial() {
    let g = graphs::gen::star(70);
    let cfg = SimConfig::seeded(11);
    let budget = cfg.bandwidth_bits(g.n());
    let s = congest::run(&g, &ExactSimilarity::new(budget), &cfg).expect("streaming");
    let b = congest::run(&g, &BufferedExact { budget, period: 1 }, &cfg).expect("buffered");
    assert_eq!(s.metrics, b.metrics);
    assert_states_identical("star70", &s.states, &b.states);
    let center = (0..g.n() as u32)
        .find(|&v| g.neighbors(v).len() == 70)
        .expect("center");
    let know = &s.states[center as usize].knowledge;
    let mut similar_pairs = 0usize;
    for a in 0..70u32 {
        for bp in (a + 1)..70 {
            if know.h_between_ports(a, bp) {
                similar_pairs += 1;
            }
        }
    }
    assert!(
        similar_pairs > 0,
        "star leaves share their whole d2-neighborhood; the center must see similar pairs"
    );
}
