//! The fault-plane differential harness: with a seeded [`FaultConfig`]
//! attached, the sequential reference, the parallel runtime at several
//! shard counts, and the auto-selecting mode must still be
//! **observationally identical** — the same `(graph seed, fault seed)`
//! pair yields bit-identical colorings, metrics (including the fault
//! counters), and structured errors on every engine.
//!
//! Coverage is split by what each protocol tolerates (probed empirically
//! in both build modes):
//!
//! * Full det/rand pipelines run under message *drops* — both survive
//!   them by design (conservative trial verdicts, saturating reduce
//!   counts).
//! * Duplicates and crash faults run on the fixed-cycle trials protocol,
//!   whose handshake absorbs duplicated arrivals and missing verdicts.
//! * Round-limit exhaustion checks the watchdog diagnostics (phase,
//!   live nodes, last progress) are engine-independent.
//! * The repair-after-churn pipeline is differentially checked end to
//!   end: same damage set, same repaired coloring, same metrics.

use congest::FaultConfig;
use d2color::prelude::*;
use graphs::D2View;

/// Parallel shard counts under differential test. `D2_THREADS=t` replaces
/// the default sweep with `{t}` (the CI matrix sets 1 and 4).
fn thread_counts() -> Vec<usize> {
    match std::env::var("D2_THREADS") {
        Ok(s) => vec![s.parse().expect("D2_THREADS must be a thread count")],
        Err(_) => vec![2, 4, 8],
    }
}

fn assert_identical(label: &str, reference: &ColoringOutcome, candidate: &ColoringOutcome) {
    assert_eq!(
        reference.colors, candidate.colors,
        "{label}: colorings diverged"
    );
    assert_eq!(
        reference.metrics, candidate.metrics,
        "{label}: metrics diverged"
    );
}

/// Drop-rate sweep over both full pipelines: every engine produces the
/// same coloring and the same fault accounting. (Validity is *not*
/// asserted here: individual trials fail conservatively under loss, but
/// the palette-learning phases can adopt stale knowledge at heavy drop
/// rates — the contract under faults is determinism, and the repair
/// pipeline is the recovery path for correctness.)
#[test]
fn pipelines_under_message_drops_are_engine_identical() {
    let params = Params::practical();
    for seed in [3u64, 17] {
        for (name, g) in [
            ("gnp-capped", graphs::gen::gnp_capped(130, 0.05, 7, seed)),
            ("cycle", graphs::gen::cycle(48 + seed as usize)),
        ] {
            for drop_ppm in [1_000u32, 50_000] {
                let faults = FaultConfig::seeded(11).with_drops(drop_ppm);
                let seq_cfg = SimConfig::seeded(seed).with_faults(faults.clone());
                let det_seq = d2core::det::small::run(&g, &params, &seq_cfg).expect("det seq");
                let rand_seq =
                    d2core::rand::driver::improved(&g, &params, &seq_cfg).expect("rand seq");
                assert!(
                    det_seq.metrics.faults_dropped > 0,
                    "{name}/{drop_ppm}ppm: the fault plane never fired"
                );
                assert_eq!(
                    rand_seq.colors.len(),
                    g.n(),
                    "{name}/{drop_ppm}ppm: rand pipeline must still terminate with a full \
                     color vector"
                );
                for t in thread_counts() {
                    let cfg = seq_cfg.clone().with_threads(Some(t));
                    let det_par = d2core::det::small::run(&g, &params, &cfg).expect("det par");
                    assert_identical(
                        &format!("{name}/{drop_ppm}ppm/det/t{t}"),
                        &det_seq,
                        &det_par,
                    );
                    let rand_par =
                        d2core::rand::driver::improved(&g, &params, &cfg).expect("rand par");
                    assert_identical(
                        &format!("{name}/{drop_ppm}ppm/rand/t{t}"),
                        &rand_seq,
                        &rand_par,
                    );
                }
                let auto_cfg = seq_cfg.clone().auto(4);
                let det_auto = d2core::det::small::run(&g, &params, &auto_cfg).expect("det auto");
                assert_identical(
                    &format!("{name}/{drop_ppm}ppm/det/auto"),
                    &det_seq,
                    &det_auto,
                );
                let rand_auto =
                    d2core::rand::driver::improved(&g, &params, &auto_cfg).expect("rand auto");
                assert_identical(
                    &format!("{name}/{drop_ppm}ppm/rand/auto"),
                    &rand_seq,
                    &rand_auto,
                );
            }
        }
    }
}

/// Duplicates and crash/restart schedules on the fixed-cycle trials
/// protocol: the handshake dedups duplicated arrivals and treats missing
/// verdicts as failures, so every engine walks the identical trace —
/// states, colors, and all four fault counters.
#[test]
fn duplicates_and_crashes_are_engine_identical() {
    let fault_set = [
        ("dup", FaultConfig::seeded(21).with_dups(40_000)),
        ("crash", FaultConfig::seeded(22).with_crashes(80_000, 30, 6)),
        (
            "mix",
            FaultConfig::seeded(23)
                .with_drops(20_000)
                .with_dups(15_000)
                .with_crashes(50_000, 40, 8),
        ),
    ];
    for (gname, g) in [
        ("gnp-capped", graphs::gen::gnp_capped(130, 0.05, 7, 5)),
        ("star", graphs::gen::star(21)),
    ] {
        let proto = d2core::rand::trials::RandomTrials::new(60, 12);
        for (fname, faults) in &fault_set {
            let cfg = SimConfig::seeded(5).with_faults(faults.clone());
            let seq = congest::run(&g, &proto, &cfg).expect("seq");
            let seq_colors: Vec<u32> = seq.states.iter().map(|s| s.trial.color()).collect();
            match *fname {
                "dup" => assert!(
                    seq.metrics.faults_duplicated > 0,
                    "{gname}/{fname}: no duplicate ever injected"
                ),
                "crash" => assert!(
                    seq.metrics.crashed_rounds > 0,
                    "{gname}/{fname}: no crash window ever hit"
                ),
                _ => {}
            }
            for t in thread_counts() {
                let par = congest::run_parallel(&g, &proto, &cfg, t).expect("par");
                let par_colors: Vec<u32> = par.states.iter().map(|s| s.trial.color()).collect();
                assert_eq!(seq_colors, par_colors, "{gname}/{fname}/t{t}: colors");
                assert_eq!(seq.metrics, par.metrics, "{gname}/{fname}/t{t}: metrics");
            }
            let auto = congest::run_with(
                &g,
                &proto,
                &cfg.clone().auto(4),
                &congest::NetTables::build(&g, &cfg),
            )
            .expect("auto");
            let auto_colors: Vec<u32> = auto.states.iter().map(|s| s.trial.color()).collect();
            assert_eq!(seq_colors, auto_colors, "{gname}/{fname}/auto: colors");
            assert_eq!(seq.metrics, auto.metrics, "{gname}/{fname}/auto: metrics");
        }
    }
}

/// Watchdog diagnostics under round-limit exhaustion: a protocol that
/// goes silent after round 0 stalls, and the structured error — phase
/// label, live-node count, last progress round — is bit-identical on
/// every engine.
#[test]
fn round_limit_diagnostics_are_engine_identical() {
    use congest::{Inbox, NodeCtx, NodeRng, Outbox, Protocol, Status};

    /// Broadcasts once in round 0, then idles forever.
    struct GoesQuiet;
    impl Protocol for GoesQuiet {
        type State = ();
        type Msg = u32;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
        fn round(
            &self,
            _: &mut (),
            ctx: &NodeCtx,
            _: &mut NodeRng,
            _: &Inbox<u32>,
            out: &mut Outbox<u32>,
        ) -> Status {
            if ctx.round == 0 {
                out.broadcast(7);
            }
            Status::Running
        }
    }

    let g = graphs::gen::gnp_capped(64, 0.08, 5, 2);
    let cfg = SimConfig::seeded(2)
        .with_max_rounds(40)
        .with_phase_label("stall");
    let seq_err = congest::run(&g, &GoesQuiet, &cfg).unwrap_err();
    assert_eq!(
        seq_err,
        SimError::RoundLimitExceeded {
            limit: 40,
            phase: "stall".into(),
            live_nodes: g.n() as u64,
            last_progress_round: 0,
        }
    );
    for t in thread_counts() {
        let err = congest::run_parallel(&g, &GoesQuiet, &cfg, t).unwrap_err();
        assert_eq!(err, seq_err, "t{t}: watchdog diagnostics diverged");
    }
    let auto_err = congest::run_with(
        &g,
        &GoesQuiet,
        &cfg.clone().auto(4),
        &congest::NetTables::build(&g, &cfg),
    )
    .unwrap_err();
    assert_eq!(auto_err, seq_err, "auto: watchdog diagnostics diverged");
}

/// An attached-but-inert fault plane (all rates zero) must be bit-exact
/// with a config that never mentions faults, and `without_faults` must
/// fully strip an active plane — on both pipelines.
#[test]
fn disabled_fault_plane_matches_no_fault_config() {
    let g = graphs::gen::gnp_capped(130, 0.05, 7, 3);
    let params = Params::practical();
    let plain = SimConfig::seeded(3);
    let inert = SimConfig::seeded(3).with_faults(FaultConfig::seeded(99));
    let stripped = SimConfig::seeded(3)
        .with_faults(FaultConfig::seeded(99).with_drops(250_000))
        .without_faults();
    let det_ref = d2core::det::small::run(&g, &params, &plain).expect("det plain");
    let rand_ref = d2core::rand::driver::improved(&g, &params, &plain).expect("rand plain");
    for (label, cfg) in [("inert", &inert), ("stripped", &stripped)] {
        let det = d2core::det::small::run(&g, &params, cfg).expect("det");
        assert_identical(&format!("{label}/det"), &det_ref, &det);
        assert_eq!(det.metrics.faults_dropped, 0, "{label}: plane fired");
        let rand = d2core::rand::driver::improved(&g, &params, cfg).expect("rand");
        assert_identical(&format!("{label}/rand"), &rand_ref, &rand);
    }
}

/// End-to-end churn → damage detection → local repair, differentially
/// across engines: the same edge batch yields the same damage set, the
/// same repaired (and valid) coloring, and the same repair traffic.
#[test]
fn repair_after_churn_is_engine_identical() {
    let g = graphs::gen::gnp_capped(200, 0.03, 6, 11);
    let params = Params::practical();
    let colors = d2core::det::small::run(&g, &params, &SimConfig::seeded(11))
        .expect("base coloring")
        .colors;

    let mut batch = graphs::EdgeBatch::new();
    for k in 0..8u32 {
        batch.insert(k * 11, k * 17 + 53);
    }
    batch.delete(0, 1).delete(3, 4);
    let churned = graphs::apply_batch(&g, &batch).expect("churn");
    assert!(!churned.touched.is_empty(), "batch must change the graph");
    let view = D2View::build(&churned.graph);

    let seq_cfg = SimConfig::seeded(31);
    let seq = d2core::repair(&churned.graph, &view, &colors, &churned.touched, &seq_cfg)
        .expect("seq repair");
    assert!(
        graphs::verify::is_valid_d2_coloring_with(&view, &seq.colors),
        "sequential repair left conflicts"
    );
    for t in thread_counts() {
        let cfg = seq_cfg.clone().with_threads(Some(t));
        let par = d2core::repair(&churned.graph, &view, &colors, &churned.touched, &cfg)
            .expect("par repair");
        assert_eq!(seq.damaged, par.damaged, "t{t}: damage sets diverged");
        assert_eq!(seq.colors, par.colors, "t{t}: repaired colorings diverged");
        assert_eq!(seq.metrics, par.metrics, "t{t}: repair metrics diverged");
        assert_eq!(seq.palette_drift(), par.palette_drift(), "t{t}: drift");
    }
    let auto_cfg = seq_cfg.clone().auto(4);
    let auto = d2core::repair(&churned.graph, &view, &colors, &churned.touched, &auto_cfg)
        .expect("auto repair");
    assert_eq!(seq.colors, auto.colors, "auto: repaired colorings diverged");
    assert_eq!(seq.metrics, auto.metrics, "auto: repair metrics diverged");
}

/// Churn + repair with an *active* drop plane riding on the config, at
/// parallel shard counts 2 and 4. The conflicts are injected directly
/// (same-colored nodes wired together), so damage is guaranteed; repair
/// strips the plane — it *is* the recovery path — and every engine must
/// find the same damage set and produce the same valid repaired coloring
/// with zero fault counters burned.
#[test]
fn churn_repair_under_drop_plane_is_engine_identical() {
    let g = graphs::gen::gnp_capped(160, 0.04, 6, 19);
    let params = Params::practical();
    let colors = d2core::det::small::run(&g, &params, &SimConfig::seeded(19))
        .expect("base coloring")
        .colors;

    // Wire together up to four same-colored pairs currently beyond
    // distance 2: each inserted edge is a guaranteed new conflict.
    let mut batch = graphs::EdgeBatch::new();
    let mut found = 0u32;
    'outer: for u in 0..g.n() as u32 {
        for v in (u + 1)..g.n() as u32 {
            if colors[u as usize] == colors[v as usize] && !g.are_d2_neighbors(u, v) {
                batch.insert(u, v);
                found += 1;
                if found == 4 {
                    break 'outer;
                }
            }
        }
    }
    assert!(found > 0, "some color must repeat outside distance 2");
    let churned = graphs::apply_batch(&g, &batch).expect("churn");
    let view = D2View::build(&churned.graph);

    let drop_cfg = SimConfig::seeded(41).with_faults(FaultConfig::seeded(8).with_drops(120_000));
    let seq = d2core::repair(&churned.graph, &view, &colors, &churned.touched, &drop_cfg)
        .expect("seq repair");
    assert!(seq.damaged >= 2, "injected conflicts must be detected");
    assert!(
        graphs::verify::is_valid_d2_coloring_with(&view, &seq.colors),
        "sequential repair left conflicts"
    );
    assert_eq!(seq.metrics.faults_dropped, 0, "repair must strip the plane");
    for t in [2, 4] {
        let cfg = drop_cfg.clone().with_threads(Some(t));
        let par = d2core::repair(&churned.graph, &view, &colors, &churned.touched, &cfg)
            .expect("par repair");
        assert_eq!(seq.damaged, par.damaged, "t{t}: damage sets diverged");
        assert_eq!(seq.colors, par.colors, "t{t}: repaired colorings diverged");
        assert_eq!(seq.metrics, par.metrics, "t{t}: repair metrics diverged");
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &par.colors),
            "t{t}: parallel repair left conflicts"
        );
    }
}

/// Repair runs on the *post-fault* recovery path: even when the config
/// carries an aggressive fault plane, `repair` strips it, so the outcome
/// matches a fault-free config bit for bit.
#[test]
fn repair_is_fault_free_even_with_a_plane_attached() {
    let g = graphs::gen::gnp_capped(120, 0.05, 6, 7);
    let params = Params::practical();
    let colors = d2core::det::small::run(&g, &params, &SimConfig::seeded(7))
        .expect("base coloring")
        .colors;
    let mut batch = graphs::EdgeBatch::new();
    batch.insert(2, 90).insert(5, 77).insert(14, 101);
    let churned = graphs::apply_batch(&g, &batch).expect("churn");
    let view = D2View::build(&churned.graph);

    let clean_cfg = SimConfig::seeded(13);
    let noisy_cfg = SimConfig::seeded(13).with_faults(
        FaultConfig::seeded(1)
            .with_drops(200_000)
            .with_dups(100_000)
            .with_crashes(100_000, 20, 5),
    );
    let clean = d2core::repair(&churned.graph, &view, &colors, &churned.touched, &clean_cfg)
        .expect("clean repair");
    let noisy = d2core::repair(&churned.graph, &view, &colors, &churned.touched, &noisy_cfg)
        .expect("noisy repair");
    assert_eq!(clean.colors, noisy.colors);
    assert_eq!(clean.metrics, noisy.metrics);
    assert_eq!(noisy.metrics.faults_dropped, 0);
    assert_eq!(noisy.metrics.crashed_rounds, 0);
}
