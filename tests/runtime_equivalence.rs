//! The differential runtime harness (grown out of experiment E12): the
//! sequential reference, the single-barrier parallel runtime at several
//! shard counts, and the auto-selecting mode must be **observationally
//! identical** — bit-identical final colorings, rounds, message counts and
//! bit totals, and identical error values — across a seeded sweep of graph
//! families and both full coloring pipelines (deterministic Theorem 1.2
//! and randomized Theorem 1.1).
//!
//! Thread counts default to {2, 4, 8}; the `D2_THREADS` environment
//! variable pins a single count so CI can matrix the suite over
//! `--threads {1, 4}` without recompiling.

use d2color::prelude::*;
use graphs::D2View;

/// Parallel shard counts under differential test. `D2_THREADS=t` replaces
/// the default sweep with `{t}` (the CI matrix sets 1 and 4).
fn thread_counts() -> Vec<usize> {
    match std::env::var("D2_THREADS") {
        Ok(s) => vec![s.parse().expect("D2_THREADS must be a thread count")],
        Err(_) => vec![2, 4, 8],
    }
}

/// One seeded round of the family sweep: uncapped G(n,p), capped G(n,p),
/// cycle, star, and a disconnected union of heterogeneous components
/// (including isolated nodes — the termination-detection stress case).
fn families(seed: u64) -> Vec<(String, Graph)> {
    vec![
        ("gnp".into(), graphs::gen::gnp(44, 0.09, seed)),
        (
            "gnp-capped".into(),
            graphs::gen::gnp_capped(130, 0.05, 7, seed),
        ),
        ("cycle".into(), graphs::gen::cycle(48 + seed as usize)),
        ("star".into(), graphs::gen::star(21)),
        (
            "disconnected".into(),
            graphs::gen::disjoint_union(&[
                graphs::gen::gnp_capped(36, 0.09, 5, seed + 1),
                graphs::gen::cycle(15),
                graphs::gen::star(7),
                graphs::gen::empty(5),
            ]),
        ),
    ]
}

fn assert_identical(
    name: &str,
    runtime: &str,
    reference: &ColoringOutcome,
    candidate: &ColoringOutcome,
) {
    assert_eq!(
        reference.colors, candidate.colors,
        "{name}/{runtime}: colorings diverged"
    );
    assert_eq!(
        reference.metrics.rounds, candidate.metrics.rounds,
        "{name}/{runtime}: rounds diverged"
    );
    assert_eq!(
        reference.metrics.messages, candidate.metrics.messages,
        "{name}/{runtime}: message counts diverged"
    );
    assert_eq!(
        reference.metrics.total_bits, candidate.metrics.total_bits,
        "{name}/{runtime}: bit totals diverged"
    );
}

/// The headline sweep: every runtime × family × seed × pipeline cell is
/// bit-identical to the sequential reference.
#[test]
fn differential_sweep_det_and_rand_pipelines() {
    let params = Params::practical();
    for seed in [3u64, 17] {
        for (name, g) in families(seed) {
            let view = D2View::build(&g);
            let seq_cfg = SimConfig::seeded(seed);
            let det_seq = d2core::det::small::run(&g, &params, &seq_cfg).expect("det seq");
            let rand_seq = d2core::rand::driver::improved(&g, &params, &seq_cfg).expect("rand seq");
            assert!(
                graphs::verify::is_valid_d2_coloring_with(&view, &det_seq.colors),
                "{name}: det reference invalid"
            );
            assert!(
                graphs::verify::is_valid_d2_coloring_with(&view, &rand_seq.colors),
                "{name}: rand reference invalid"
            );
            for t in thread_counts() {
                let cfg = SimConfig::seeded(seed).with_threads(Some(t));
                let det_par = d2core::det::small::run(&g, &params, &cfg).expect("det par");
                assert_identical(&name, &format!("parallel-{t}/det"), &det_seq, &det_par);
                let rand_par = d2core::rand::driver::improved(&g, &params, &cfg).expect("rand par");
                assert_identical(&name, &format!("parallel-{t}/rand"), &rand_seq, &rand_par);
            }
            let auto_cfg = SimConfig::seeded(seed).auto(4);
            let det_auto = d2core::det::small::run(&g, &params, &auto_cfg).expect("det auto");
            assert_identical(&name, "auto/det", &det_seq, &det_auto);
            let rand_auto =
                d2core::rand::driver::improved(&g, &params, &auto_cfg).expect("rand auto");
            assert_identical(&name, "auto/rand", &rand_seq, &rand_auto);
        }
    }
}

/// Active-set scheduling against the always-step reference: for every
/// family × pipeline cell, parking must change *nothing observable* —
/// same colorings, same rounds/messages/bits/fault counters — while
/// `stepped_nodes` (the one metric the refactor exists to shrink) may
/// only go down. Sequential and parallel active-set runs are both held
/// against the sequential always-step reference.
#[test]
fn active_set_matches_always_step_reference() {
    use congest::Scheduling;
    let params = Params::practical();
    for (name, g) in families(13) {
        let ref_cfg = SimConfig::seeded(13).with_scheduling(Scheduling::AlwaysStep);
        let act_cfg = SimConfig::seeded(13);
        let det_ref = d2core::det::small::run(&g, &params, &ref_cfg).expect("det ref");
        let rand_ref = d2core::rand::driver::improved(&g, &params, &ref_cfg).expect("rand ref");
        let mut cells = vec![
            (
                "det/seq",
                det_ref.clone(),
                d2core::det::small::run(&g, &params, &act_cfg).expect("det act"),
            ),
            (
                "rand/seq",
                rand_ref.clone(),
                d2core::rand::driver::improved(&g, &params, &act_cfg).expect("rand act"),
            ),
        ];
        for t in thread_counts() {
            let cfg = act_cfg.clone().with_threads(Some(t));
            cells.push((
                "det/par",
                det_ref.clone(),
                d2core::det::small::run(&g, &params, &cfg).expect("det act par"),
            ));
            cells.push((
                "rand/par",
                rand_ref.clone(),
                d2core::rand::driver::improved(&g, &params, &cfg).expect("rand act par"),
            ));
        }
        for (label, reference, active) in &cells {
            assert_eq!(
                reference.colors, active.colors,
                "{name}/{label}: active-set changed the coloring"
            );
            assert!(
                active.metrics.stepped_nodes <= reference.metrics.stepped_nodes,
                "{name}/{label}: active-set stepped more nodes ({} > {})",
                active.metrics.stepped_nodes,
                reference.metrics.stepped_nodes
            );
            // Every other observable must be bit-identical.
            let mut a = active.metrics.clone();
            let mut r = reference.metrics.clone();
            a.stepped_nodes = 0;
            r.stepped_nodes = 0;
            assert_eq!(
                r, a,
                "{name}/{label}: metrics diverged beyond stepped_nodes"
            );
        }
    }
}

/// A network large enough for auto mode to resolve to the *parallel*
/// engine on a multicore host (the sweep above only exercises auto's
/// sequential resolution — those graphs are small). The policy decision is
/// asserted against an explicit core count; the engine auto would dispatch
/// to is then differentially checked at that size, and `run_with` under
/// auto must match the reference on whatever this host resolves to.
#[test]
fn auto_mode_parallel_resolution_is_bit_identical() {
    use congest::RuntimeMode;
    let g = graphs::gen::random_regular(2600, 6, 5);
    assert_eq!(
        RuntimeMode::Auto(4).resolve_for(&g, 8),
        RuntimeMode::Parallel(4),
        "workload must be heavy enough to trigger the parallel engine"
    );
    assert_eq!(
        RuntimeMode::Auto(4).resolve_for(&g, 1),
        RuntimeMode::Sequential,
        "a single-core host must stay sequential"
    );
    let proto = d2core::rand::trials::RandomTrials::new(37, 12);
    let seq = congest::run(&g, &proto, &SimConfig::seeded(8)).expect("seq");
    let par = congest::run_parallel(&g, &proto, &SimConfig::seeded(8), 4).expect("par");
    let auto = congest::run_with(
        &g,
        &proto,
        &SimConfig::seeded(8).auto(4),
        &congest::NetTables::build(&g, &SimConfig::seeded(8)),
    )
    .expect("auto");
    let a: Vec<u32> = seq.states.iter().map(|s| s.trial.color()).collect();
    for (label, res) in [("parallel-4", &par), ("auto", &auto)] {
        let b: Vec<u32> = res.states.iter().map(|s| s.trial.color()).collect();
        assert_eq!(a, b, "{label} diverged");
        assert_eq!(&seq.metrics, &res.metrics, "{label} metrics diverged");
    }
}

/// Strict-bandwidth abort: the reported error must be the first violation
/// in `(round, node)` order — the exact error the sequential runtime
/// returns — on every runtime and thread count. Violations are staggered
/// across rounds and nodes so a wrong tie-break is observable.
#[test]
fn strict_bandwidth_error_ordering_differential() {
    use congest::{Inbox, Message, NodeCtx, NodeRng, Outbox, Protocol, Status};

    /// Node `v` sends one oversized message in round `(v * 7) % 5 + 1`,
    /// with the size encoding `(round, node)` so the *identity* of the
    /// winning violation is checked, not just its existence.
    struct Staggered;
    #[derive(Debug, Clone)]
    struct Huge(u64);
    impl Message for Huge {
        fn bits(&self) -> u64 {
            (1 << 20) + self.0
        }
    }
    impl Protocol for Staggered {
        type State = ();
        type Msg = Huge;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
        fn round(
            &self,
            _: &mut (),
            ctx: &NodeCtx,
            _: &mut NodeRng,
            _: &Inbox<Huge>,
            out: &mut Outbox<Huge>,
        ) -> Status {
            let fire = (u64::from(ctx.index) * 7) % 5 + 1;
            if ctx.round == fire {
                out.broadcast(Huge(ctx.round * 1000 + u64::from(ctx.index)));
            }
            if ctx.round < 8 {
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    for (name, g) in families(9) {
        if g.m() == 0 {
            continue;
        }
        let cfg = SimConfig::seeded(9).strict();
        let seq_err = congest::run(&g, &Staggered, &cfg).unwrap_err();
        let SimError::Bandwidth { round, .. } = seq_err else {
            panic!("{name}: expected a bandwidth error, got {seq_err:?}");
        };
        assert!(round >= 1, "{name}: violations start at round 1");
        for t in thread_counts() {
            for repeat in 0..3 {
                let err = congest::run_parallel(&g, &Staggered, &cfg, t).unwrap_err();
                assert_eq!(
                    err, seq_err,
                    "{name}: error diverged with {t} threads (repeat {repeat})"
                );
            }
        }
        let auto_err = congest::run_with(
            &g,
            &Staggered,
            &cfg.clone().auto(4),
            &congest::NetTables::build(&g, &cfg),
        )
        .unwrap_err();
        assert_eq!(auto_err, seq_err, "{name}: auto mode error diverged");
    }
}

#[test]
fn random_trials_equivalent_across_runtimes() {
    let g = graphs::gen::gnp_capped(180, 0.05, 7, 1);
    let proto = d2core::rand::trials::RandomTrials::new(50, 15);
    let cfg = SimConfig::seeded(5);
    let seq = congest::run(&g, &proto, &cfg).expect("sequential");
    for threads in [2, 5, 16] {
        let par = congest::run_parallel(&g, &proto, &cfg, threads).expect("parallel");
        let a: Vec<u32> = seq.states.iter().map(|s| s.trial.color()).collect();
        let b: Vec<u32> = par.states.iter().map(|s| s.trial.color()).collect();
        assert_eq!(a, b, "divergence with {threads} threads");
        assert_eq!(seq.metrics, par.metrics);
    }
}

#[test]
fn full_deterministic_pipeline_equivalent_via_driver() {
    let g = graphs::gen::grid(10, 10);
    let params = Params::practical();
    let cfg = SimConfig::seeded(6);
    let seq = d2core::det::small::run(&g, &params, &cfg).expect("seq");
    // The driver runs sequentially; rebuild with a parallel driver.
    let scope = d2core::det::Scope::full_d2(&g);
    let mut driver = d2core::Driver::new(&g, cfg).parallel(4);
    let colors = d2core::det::small::pipeline(&mut driver, &scope).expect("par pipeline");
    let par = driver.finish(colors);
    assert_eq!(seq.colors, par.colors);
    assert_eq!(seq.metrics.messages, par.metrics.messages);
    assert_eq!(seq.metrics.rounds, par.metrics.rounds);
}

#[test]
fn similarity_construction_equivalent() {
    let g = graphs::gen::clique_ring(3, 7);
    let cfg = SimConfig::seeded(7);
    let proto = d2core::rand::similarity::ExactSimilarity::new(cfg.bandwidth_bits(g.n()));
    let seq = congest::run(&g, &proto, &cfg).expect("seq");
    let par = congest::run_parallel(&g, &proto, &cfg, 3).expect("par");
    for (a, b) in seq.states.iter().zip(&par.states) {
        assert_eq!(a.knowledge, b.knowledge);
    }
}

/// The similarity exchange's knowledge must be invariant under the
/// `sync_period` declaration: batching `p` rounds of list traffic into
/// one synchronization reschedules the same content, so every node's
/// pairwise H/Ĥ flags (and both engines) must agree with the classic
/// `p = 1` schedule — while the message count strictly drops.
#[test]
fn similarity_knowledge_is_sync_period_invariant() {
    let g = graphs::gen::clique_ring(3, 7);
    let cfg = SimConfig::seeded(7);
    let budget = cfg.bandwidth_bits(g.n());
    let reference = congest::run(
        &g,
        &d2core::rand::similarity::ExactSimilarity::new(budget),
        &cfg,
    )
    .expect("p=1");
    for p in [2u64, 3, 4, 8] {
        let proto = d2core::rand::similarity::ExactSimilarity::new(budget).with_period(p);
        let seq = congest::run(&g, &proto, &cfg).expect("seq");
        for t in thread_counts() {
            let par = congest::run_parallel(&g, &proto, &cfg, t).expect("par");
            assert_eq!(seq.metrics, par.metrics, "p={p} t={t} metrics diverge");
            for (a, b) in seq.states.iter().zip(&par.states) {
                assert_eq!(a.knowledge, b.knowledge, "p={p} t={t}");
            }
        }
        for (a, b) in seq.states.iter().zip(&reference.states) {
            assert_eq!(a.knowledge, b.knowledge, "p={p} changed the knowledge");
        }
        assert!(
            seq.metrics.messages < reference.metrics.messages,
            "p={p} should move fewer, bigger messages: {} vs {}",
            seq.metrics.messages,
            reference.metrics.messages
        );
    }
}

/// Full randomized pipeline under several `list_sync_period` values, with
/// a stressed warmup so every phase actually runs: each period must be
/// bit-identical across engines and produce a valid coloring.
#[test]
fn rand_pipeline_sync_period_equivalent_across_engines() {
    let g = graphs::gen::gnp_capped(140, 0.08, 6, 11);
    let view = D2View::build(&g);
    for period in [1u64, 2, 4, 7] {
        let params = Params {
            c0_initial_rounds: 1.0,
            list_sync_period: period,
            ..Params::practical()
        };
        let seq_cfg = SimConfig::seeded(23);
        let seq = d2core::rand::driver::improved(&g, &params, &seq_cfg).expect("seq");
        assert!(
            graphs::verify::is_valid_d2_coloring_with(&view, &seq.colors),
            "period {period}: invalid coloring"
        );
        for t in thread_counts() {
            let cfg = seq_cfg.clone().with_threads(Some(t));
            let par = d2core::rand::driver::improved(&g, &params, &cfg).expect("par");
            assert_eq!(seq.colors, par.colors, "period {period} t={t}");
            assert_eq!(seq.metrics, par.metrics, "period {period} t={t}");
        }
    }
}
