//! Experiment E12: the sequential and the batched-transport parallel
//! runtime are observationally identical — bit-identical final states and
//! message metrics — for representative protocols of every family.

use d2color::prelude::*;

#[test]
fn random_trials_equivalent_across_runtimes() {
    let g = graphs::gen::gnp_capped(180, 0.05, 7, 1);
    let proto = d2core::rand::trials::RandomTrials::new(50, 15);
    let cfg = SimConfig::seeded(5);
    let seq = congest::run(&g, &proto, &cfg).expect("sequential");
    for threads in [2, 5, 16] {
        let par = congest::run_parallel(&g, &proto, &cfg, threads).expect("parallel");
        let a: Vec<u32> = seq.states.iter().map(|s| s.trial.color()).collect();
        let b: Vec<u32> = par.states.iter().map(|s| s.trial.color()).collect();
        assert_eq!(a, b, "divergence with {threads} threads");
        assert_eq!(seq.metrics, par.metrics);
    }
}

#[test]
fn full_deterministic_pipeline_equivalent_via_driver() {
    let g = graphs::gen::grid(10, 10);
    let params = Params::practical();
    let cfg = SimConfig::seeded(6);
    let seq = d2core::det::small::run(&g, &params, &cfg).expect("seq");
    // The driver runs sequentially; rebuild with a parallel driver.
    let scope = d2core::det::Scope::full_d2(&g);
    let mut driver = d2core::Driver::new(&g, cfg).parallel(4);
    let colors = d2core::det::small::pipeline(&mut driver, &scope).expect("par pipeline");
    let par = driver.finish(colors);
    assert_eq!(seq.colors, par.colors);
    assert_eq!(seq.metrics.messages, par.metrics.messages);
    assert_eq!(seq.metrics.rounds, par.metrics.rounds);
}

/// End-to-end coloring protocols — not just gossip — must be bit-identical
/// across runtimes, through the public `SimConfig::threads` knob that the
/// drivers thread down to the engine.
#[test]
fn coloring_pipelines_equivalent_across_runtimes() {
    let params = Params::practical();
    for (name, g) in [
        ("gnp", graphs::gen::gnp_capped(150, 0.06, 6, 9)),
        ("clique-ring", graphs::gen::clique_ring(4, 6)),
    ] {
        let seq_cfg = SimConfig::seeded(11);
        let rand_seq = d2core::rand::driver::improved(&g, &params, &seq_cfg).expect("rand seq");
        let det_seq = d2core::det::small::run(&g, &params, &seq_cfg).expect("det seq");
        assert!(
            graphs::verify::is_valid_d2_coloring(&g, &rand_seq.colors),
            "{name}"
        );
        for threads in [2usize, 4, 7] {
            let par_cfg = SimConfig::seeded(11).with_threads(Some(threads));
            let rand_par = d2core::rand::driver::improved(&g, &params, &par_cfg).expect("rand par");
            assert_eq!(
                rand_seq.colors, rand_par.colors,
                "{name}: randomized pipeline diverged with {threads} threads"
            );
            assert_eq!(rand_seq.metrics.rounds, rand_par.metrics.rounds, "{name}");
            assert_eq!(
                rand_seq.metrics.messages, rand_par.metrics.messages,
                "{name}"
            );
            assert_eq!(
                rand_seq.metrics.total_bits, rand_par.metrics.total_bits,
                "{name}"
            );
            let det_par = d2core::det::small::run(&g, &params, &par_cfg).expect("det par");
            assert_eq!(
                det_seq.colors, det_par.colors,
                "{name}: deterministic pipeline diverged with {threads} threads"
            );
            assert_eq!(det_seq.metrics.messages, det_par.metrics.messages, "{name}");
        }
    }
}

#[test]
fn similarity_construction_equivalent() {
    let g = graphs::gen::clique_ring(3, 7);
    let cfg = SimConfig::seeded(7);
    let proto = d2core::rand::similarity::ExactSimilarity::new(cfg.bandwidth_bits(g.n()));
    let seq = congest::run(&g, &proto, &cfg).expect("seq");
    let par = congest::run_parallel(&g, &proto, &cfg, 3).expect("par");
    for (a, b) in seq.states.iter().zip(&par.states) {
        assert_eq!(a.knowledge, b.knowledge);
    }
}
