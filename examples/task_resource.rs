//! Strong coloring of a task/resource hypergraph (the paper's §1
//! motivation): "task" nodes on one side, "resource" nodes on the other;
//! tasks using the same resource must receive different colors — which is
//! exactly a distance-2 constraint between task nodes through their shared
//! resource.
//!
//! The colors then form a conflict-free schedule: all tasks of one color
//! can run simultaneously without contending for any resource.
//!
//! ```sh
//! cargo run --release --example task_resource
//! ```

use d2color::prelude::*;

fn main() -> Result<(), SimError> {
    let tasks = 160;
    let resources = 40;
    let uses = 3;
    let g = graphs::gen::task_resource(tasks, resources, uses, 99);
    println!(
        "{tasks} tasks × {resources} resources, {uses} resources per task; ∆ = {}",
        g.max_degree()
    );

    let out = d2core::rand::driver::improved(&g, &Params::practical(), &SimConfig::seeded(7))?;
    assert!(graphs::verify::is_valid_d2_coloring(&g, &out.colors));

    // Build the schedule: group tasks by color.
    let mut schedule: std::collections::BTreeMap<u32, Vec<usize>> =
        std::collections::BTreeMap::new();
    for t in 0..tasks {
        schedule.entry(out.colors[t]).or_default().push(t);
    }
    println!(
        "schedule: {} slots for {tasks} tasks ({} rounds of CONGEST)",
        schedule.len(),
        out.rounds()
    );
    // Verify slot-internal conflict-freedom directly against resources.
    for (slot, batch) in &schedule {
        let mut used = vec![false; resources];
        for &t in batch {
            for &r in g.neighbors(t as NodeId) {
                let r = r as usize - tasks;
                assert!(!used[r], "slot {slot}: resource {r} double-booked");
                used[r] = true;
            }
        }
    }
    let largest = schedule.values().map(Vec::len).max().unwrap_or(0);
    println!("largest parallel batch: {largest} tasks; schedule verified conflict-free");
    Ok(())
}
