//! Wireless frequency assignment (the paper's §1 motivation).
//!
//! Nodes are radio transmitters in the unit square; two transmitters
//! interfere when they share a receiver in range — i.e. when they are
//! within distance 2 in the communication graph. A valid distance-2
//! coloring is exactly a frequency assignment with no hidden-terminal
//! collisions. ("Computing a coloring in a more powerful model (CONGEST)
//! than it would be used in (wireless channels) is in line with current
//! trends towards separation of control plane and data plane.")
//!
//! ```sh
//! cargo run --release --example wireless
//! ```

use d2color::prelude::*;

fn main() -> Result<(), SimError> {
    // Transmitter layout: a dense downtown core plus scattered suburbs.
    let mut points = Vec::new();
    let mut rng_state = 0x5EEDu64;
    let mut next = move || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng_state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..120 {
        points.push((0.4 + 0.2 * next(), 0.4 + 0.2 * next())); // core
    }
    for _ in 0..180 {
        points.push((next(), next())); // suburbs
    }
    let g = graphs::gen::unit_disk_from_points(&points, 0.07);
    let d = g.max_degree();
    println!(
        "transmitters: n = {}, interference edges = {}, ∆ = {d}",
        g.n(),
        g.m()
    );

    let params = Params::practical();
    let cfg = SimConfig::seeded(2026);
    let out = d2core::rand::driver::improved(&g, &params, &cfg)?;

    assert!(
        graphs::verify::is_valid_d2_coloring(&g, &out.colors),
        "frequency plan has hidden-terminal collisions"
    );
    let freqs = graphs::verify::num_colors(&out.colors);
    println!(
        "frequency plan: {} distinct frequencies (budget ∆²+1 = {}), {} rounds",
        freqs,
        (d * d).min(g.n() - 1) + 1,
        out.rounds()
    );
    println!("per-phase breakdown:");
    for ph in &out.phases {
        println!(
            "  {:<28} {:>7} rounds {:>9} msgs",
            ph.name, ph.metrics.rounds, ph.metrics.messages
        );
    }

    // Frequency-reuse statistics: how many cells per frequency?
    let mut histo = std::collections::HashMap::new();
    for &c in &out.colors {
        *histo.entry(c).or_insert(0u32) += 1;
    }
    let max_reuse = histo.values().max().copied().unwrap_or(0);
    println!("max spatial reuse of one frequency: {max_reuse} transmitters");
    Ok(())
}
