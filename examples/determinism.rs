//! Determinism showcase: the deterministic algorithms produce the same
//! coloring on every run and on every runtime (sequential vs. the
//! batched-transport parallel engine), and the randomized algorithm is
//! reproducible from its seed.
//!
//! ```sh
//! cargo run --release --example determinism
//! ```

use d2color::prelude::*;
use d2core::det::splitting::SplitMode;

fn main() -> Result<(), SimError> {
    let g = graphs::gen::gnp_capped(300, 0.03, 8, 5);
    let params = Params::practical();
    let cfg = SimConfig::seeded(11);

    // Deterministic Theorem 1.2 twice: identical.
    let a = d2core::det::small::run(&g, &params, &cfg)?;
    let b = d2core::det::small::run(&g, &params, &cfg)?;
    assert_eq!(a.colors, b.colors);
    assert_eq!(a.metrics, b.metrics);
    println!(
        "theorem 1.2: identical colorings across runs ({} rounds, palette {})",
        a.rounds(),
        a.palette_bound()
    );

    // Theorem 1.3 with the derandomized splitting: identical.
    let (c, _) =
        d2core::det::split_color::run(&g, &params, &cfg, 2.0, SplitMode::Deterministic, Some(1))?;
    let (d, _) =
        d2core::det::split_color::run(&g, &params, &cfg, 2.0, SplitMode::Deterministic, Some(1))?;
    assert_eq!(c.colors, d.colors);
    println!(
        "theorem 1.3: identical colorings across runs ({} rounds, palette {})",
        c.rounds(),
        c.palette_bound()
    );

    // Randomized: reproducible per seed, different across seeds.
    let r1 = d2core::rand::driver::improved(&g, &params, &cfg)?;
    let r2 = d2core::rand::driver::improved(&g, &params, &cfg)?;
    let r3 = d2core::rand::driver::improved(&g, &params, &SimConfig::seeded(12))?;
    assert_eq!(r1.colors, r2.colors);
    assert_ne!(r1.colors, r3.colors);
    println!("theorem 1.1: seed-reproducible ({} rounds)", r1.rounds());

    // Runtime equivalence on a raw protocol phase (experiment E12).
    let proto = d2core::rand::trials::RandomTrials::new(g.max_degree() as u32 * 4, 10);
    let seq = congest::run(&g, &proto, &cfg)?;
    let par = congest::run_parallel(&g, &proto, &cfg, 4)?;
    let seq_colors: Vec<u32> = seq.states.iter().map(|s| s.trial.color()).collect();
    let par_colors: Vec<u32> = par.states.iter().map(|s| s.trial.color()).collect();
    assert_eq!(seq_colors, par_colors);
    assert_eq!(seq.metrics, par.metrics);
    println!("runtimes: sequential ≡ parallel (bit-identical states and metrics)");
    Ok(())
}
