//! Quickstart: distance-2 color a random graph with every algorithm in
//! the library and compare rounds, palette sizes, and message loads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use d2color::prelude::*;
use d2core::det::splitting::SplitMode;

fn report(name: &str, g: &Graph, out: &ColoringOutcome) {
    let valid = graphs::verify::is_valid_d2_coloring(g, &out.colors);
    println!(
        "{name:<22} rounds {:>7}  palette {:>5}  colors {:>5}  max-msg {:>3}b  valid {valid}",
        out.rounds(),
        out.palette_bound(),
        graphs::verify::num_colors(&out.colors),
        out.metrics.max_message_bits,
    );
    assert!(valid, "{name} produced an invalid coloring");
}

fn main() -> Result<(), SimError> {
    let g = graphs::gen::gnp_capped(400, 0.02, 8, 7);
    let d = g.max_degree();
    println!(
        "graph: n = {}, m = {}, ∆ = {d}, ∆² + 1 = {}\n",
        g.n(),
        g.m(),
        d * d + 1
    );
    let params = Params::practical();
    let cfg = SimConfig::seeded(42);

    let out = d2core::rand::driver::improved(&g, &params, &cfg)?;
    report("randomized improved", &g, &out);

    let out = d2core::rand::driver::basic(&g, &params, &cfg)?;
    report("randomized basic", &g, &out);

    let out = d2core::det::small::run(&g, &params, &cfg)?;
    report("deterministic ∆²+1", &g, &out);

    let (out, rep) =
        d2core::det::split_color::run(&g, &params, &cfg, 2.0, SplitMode::Deterministic, Some(1))?;
    report(&format!("det (1+ε)∆², 2^{} parts", rep.levels), &g, &out);

    let out = d2core::baseline::oversampled(&g, 1.0, &cfg)?;
    report("baseline 2∆² trials", &g, &out);

    let out = d2core::baseline::naive_relay(&g, &cfg)?;
    report("baseline naive relay", &g, &out);

    let (_, k) = d2core::baseline::greedy_central(&g);
    println!(
        "{:<22} colors {k:>5}  (centralized reference)",
        "greedy central"
    );
    Ok(())
}
