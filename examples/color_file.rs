//! CLI-style example: distance-2 color a graph read from a file.
//!
//! ```sh
//! cargo run --release --example color_file -- <edges.txt> [algo] [seed]
//! ```
//!
//! `edges.txt` is a whitespace edge list (`u v` per line, `#` comments) or
//! DIMACS (`p edge …`, detected by extension `.col`). `algo` is one of
//! `improved` (default), `basic`, `det`, `oversampled`, `naive`.
//! Prints `node color` lines to stdout and a summary to stderr.
//!
//! With no arguments, runs on a built-in demo graph.

use d2color::prelude::*;
use std::io::BufReader;

fn load(path: &str) -> Result<Graph, Box<dyn std::error::Error>> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let g = if path.ends_with(".col") {
        graphs::io::read_dimacs(reader)?
    } else {
        graphs::io::read_edge_list(reader)?
    };
    Ok(g)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let g = match args.get(1) {
        Some(path) => load(path)?,
        None => {
            eprintln!("no input file; using a demo unit-disk graph");
            graphs::gen::unit_disk(200, 0.1, 1)
        }
    };
    let algo = args.get(2).map_or("improved", String::as_str);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);

    let params = Params::practical();
    let cfg = SimConfig::seeded(seed);
    let out = match algo {
        "improved" => d2core::rand::driver::improved(&g, &params, &cfg)?,
        "basic" => d2core::rand::driver::basic(&g, &params, &cfg)?,
        "det" => d2core::det::small::run(&g, &params, &cfg)?,
        "oversampled" => d2core::baseline::oversampled(&g, 1.0, &cfg)?,
        "naive" => d2core::baseline::naive_relay(&g, &cfg)?,
        other => return Err(format!("unknown algorithm {other:?}").into()),
    };

    assert!(
        graphs::verify::is_valid_d2_coloring(&g, &out.colors),
        "internal error: invalid coloring"
    );
    graphs::io::write_coloring(&out.colors, std::io::stdout().lock())?;
    eprintln!(
        "n={} m={} ∆={} | {algo}: {} rounds, palette {}, {} messages, max {} bits",
        g.n(),
        g.m(),
        g.max_degree(),
        out.rounds(),
        out.palette_bound(),
        out.metrics.messages,
        out.metrics.max_message_bits,
    );
    Ok(())
}
