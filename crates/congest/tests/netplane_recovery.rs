//! Property tests for rejoin-with-replay at the retention boundary.
//!
//! The recovery contract (PR 9): a rejoiner that announces `have_sync`
//! gets **exactly** the retained frames with newer syncs replayed, in
//! original order — or a structured [`NetError::ReplayGap`] when its ack
//! predates the retained window. Never a silently gapped stream. A frame
//! torn mid-replay (the survivor dying while replaying) must surface as a
//! structured [`FrameError`], never as a decoded partial payload.

use congest::netplane::{
    kind, read_frame, write_frame, write_torn_frame, FrameError, Link, NetError, Rejoin, Wire,
};
use std::io::Write as _;
use std::net::{Ipv4Addr, TcpListener, TcpStream};
use std::thread;

/// A connected localhost socket pair.
fn pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    let dial = thread::spawn(move || TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap());
    let (near, _) = listener.accept().unwrap();
    (near, dial.join().unwrap())
}

/// Drives one scenario: send `total` syncs under `window`, then resume a
/// fresh connection with `have_sync`. Returns the replayed sync values,
/// or the structured error.
fn replay_after(total: u64, window: u64, have_sync: u64) -> Result<Vec<u64>, NetError> {
    let (near, _far) = pair();
    let mut link = Link::new(7, near, window).unwrap();
    for sync in 1..=total {
        link.send_retained(sync, kind::ROUND, &sync.to_wire())
            .unwrap();
    }
    link.flush().unwrap();
    let (fresh_near, fresh_far) = pair();
    link.resume(fresh_near, have_sync)?;
    // Close the write side so the reader sees a clean end after the
    // replayed frames.
    drop(link);
    let mut far = fresh_far;
    let mut got = Vec::new();
    loop {
        match read_frame(&mut far) {
            Ok(frame) => {
                assert_eq!(frame.kind, kind::ROUND);
                got.push(u64::from_wire(&frame.payload).unwrap());
            }
            Err(FrameError::Closed) => break,
            Err(e) => panic!("replay stream must end cleanly, got {e}"),
        }
    }
    Ok(got)
}

/// Sweeping every (total, window, have_sync) combination in a small box:
/// the replay is exact — `(have_sync, total]` — whenever `have_sync` is
/// at or above the prune watermark, and a structured `ReplayGap` below
/// it. The boundary case `have_sync == pruned_through` must recover
/// exactly, not error.
#[test]
fn replay_is_exact_or_refused_across_the_retention_boundary() {
    for total in [3u64, 5, 8, 12] {
        for window in [1u64, 2, 3, 7, u64::MAX] {
            // The prune watermark after `total` sends under `window`:
            // everything at or below it is gone.
            let pruned_through = if window == u64::MAX {
                0
            } else {
                total.saturating_sub(window)
            };
            for have_sync in 0..=total {
                let case = format!(
                    "total={total} window={window} have_sync={have_sync} \
                     pruned_through={pruned_through}"
                );
                match replay_after(total, window, have_sync) {
                    Ok(got) => {
                        assert!(have_sync >= pruned_through, "gapped replay allowed: {case}");
                        let want: Vec<u64> = (have_sync + 1..=total).collect();
                        assert_eq!(got, want, "inexact replay: {case}");
                    }
                    Err(NetError::ReplayGap {
                        shard,
                        have_sync: h,
                        pruned_through: p,
                    }) => {
                        assert!(have_sync < pruned_through, "spurious refusal: {case}");
                        assert_eq!(
                            (shard, h, p),
                            (7, have_sync, pruned_through),
                            "wrong gap diagnostics: {case}"
                        );
                    }
                    Err(e) => panic!("unexpected error {e}: {case}"),
                }
            }
        }
    }
}

/// A survivor dying mid-replay tears a frame on the wire; the rejoiner's
/// decoder must surface a structured mid-frame EOF, never a partial
/// payload decoded as data.
#[test]
fn torn_frame_mid_replay_is_a_structured_error() {
    // Replay three frames; tear the middle one at every possible byte
    // boundary (header and payload).
    let payloads: Vec<Vec<u8>> = (1u64..=3).map(|s| s.to_wire()).collect();
    let frame_len = 6 + payloads[1].len();
    for tear_at in 0..frame_len {
        let (mut near, far) = pair();
        let reader = thread::spawn(move || {
            let mut far = far;
            let mut got = Vec::new();
            let err = loop {
                match read_frame(&mut far) {
                    Ok(frame) => got.push(u64::from_wire(&frame.payload).unwrap()),
                    Err(e) => break e,
                }
            };
            (got, err)
        });
        write_frame(&mut near, kind::ROUND, &payloads[0]).unwrap();
        write_torn_frame(&mut near, kind::ROUND, &payloads[1], tear_at).unwrap();
        near.flush().unwrap();
        drop(near); // the survivor is gone mid-replay
        let (got, err) = reader.join().unwrap();
        assert_eq!(got, vec![1], "tear_at={tear_at}");
        if tear_at == 0 {
            // Torn before any byte: a clean close at a frame boundary.
            assert_eq!(err, FrameError::Closed, "tear_at={tear_at}");
        } else {
            assert_eq!(err, FrameError::UnexpectedEof, "tear_at={tear_at}");
        }
    }
}

/// The `Rejoin` payload itself round-trips exactly at the boundary
/// values recovery depends on.
#[test]
fn rejoin_payload_roundtrips_boundary_values() {
    for have_sync in [0u64, 1, u64::MAX - 1, u64::MAX] {
        let rejoin = Rejoin { from: 3, have_sync };
        assert_eq!(Rejoin::from_wire(&rejoin.to_wire()).unwrap(), rejoin);
    }
}
