//! Property tests for the netplane frame + wire codec.
//!
//! Frames are torn at every byte boundary, prefixed with garbage, and
//! truncated at every length; in all cases decoding must either produce
//! the original frames or a structured [`FrameError`] — never a panic,
//! never a silently wrong frame.

use congest::netplane::{
    kind, read_frame, write_frame, Frame, FrameError, FrameReader, Wire, MAGIC,
};
use congest::Metrics;

/// A deterministic xorshift stream for payload fuzzing (no external RNG
/// in integration tests).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next() & 0xFF) as u8).collect()
    }
}

fn encode(frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for f in frames {
        write_frame(&mut buf, f.kind, &f.payload).unwrap();
    }
    buf
}

fn sample_frames() -> Vec<Frame> {
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let mut frames = vec![
        Frame {
            kind: kind::HELLO,
            payload: Vec::new(),
        },
        Frame {
            kind: kind::ROUND,
            payload: vec![0xC6; 3], // payload bytes that look like magic
        },
    ];
    for (k, len) in [
        (kind::ASSIGN, 1usize),
        (kind::JOIN, 17),
        (kind::REJOIN, 64),
        (kind::REDUCE, 255),
        (kind::STATS, 1024),
        (kind::RESULT, 4000),
    ] {
        frames.push(Frame {
            kind: k,
            payload: rng.bytes(len),
        });
    }
    frames
}

/// Every frame round-trips through the blocking reader.
#[test]
fn blocking_reader_roundtrips_every_kind() {
    let frames = sample_frames();
    let bytes = encode(&frames);
    let mut cursor = &bytes[..];
    for f in &frames {
        assert_eq!(&read_frame(&mut cursor).unwrap(), f);
    }
    assert_eq!(read_frame(&mut cursor), Err(FrameError::Closed));
}

/// The incremental reader produces identical frames no matter how the
/// byte stream is split: every single split point of the whole stream.
#[test]
fn incremental_reader_survives_all_torn_reads() {
    let frames = sample_frames();
    let bytes = encode(&frames);
    for split in 0..=bytes.len() {
        let mut r = FrameReader::new();
        r.feed(&bytes[..split]);
        let mut got = Vec::new();
        while let Some(f) = r.next_frame().unwrap() {
            got.push(f);
        }
        r.feed(&bytes[split..]);
        while let Some(f) = r.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames, "split at byte {split}");
        assert_eq!(r.pending(), 0, "split at byte {split} left residue");
    }
}

/// Byte-at-a-time feeding (the most extreme tearing) also works.
#[test]
fn incremental_reader_survives_byte_dribble() {
    let frames = sample_frames();
    let bytes = encode(&frames);
    let mut r = FrameReader::new();
    let mut got = Vec::new();
    for b in &bytes {
        r.feed(std::slice::from_ref(b));
        while let Some(f) = r.next_frame().unwrap() {
            got.push(f);
        }
    }
    assert_eq!(got, frames);
}

/// A stream that does not start with the magic byte fails structurally —
/// identifying the offending byte — and the reader stays poisoned.
#[test]
fn garbage_prefix_is_rejected_not_panicked() {
    for garbage in [0u8, 1, 0x55, MAGIC.wrapping_add(1), 0xFF] {
        let mut bytes = vec![garbage];
        bytes.extend_from_slice(&encode(&sample_frames()[..1]));

        let mut r = FrameReader::new();
        r.feed(&bytes);
        assert_eq!(r.next_frame(), Err(FrameError::BadMagic(garbage)));
        // Poisoned: the same structured error forever, no resync into the
        // valid frame that follows the garbage.
        assert_eq!(r.next_frame(), Err(FrameError::BadMagic(garbage)));

        let mut cursor = &bytes[..];
        assert_eq!(read_frame(&mut cursor), Err(FrameError::BadMagic(garbage)));
    }
}

/// Mid-stream corruption (valid frame, then garbage) is caught at the
/// next frame boundary.
#[test]
fn corruption_after_valid_frame_is_caught() {
    let frames = sample_frames();
    let mut bytes = encode(&frames[..1]);
    bytes.push(0x00); // not MAGIC
    bytes.extend_from_slice(&encode(&frames[1..2]));

    let mut r = FrameReader::new();
    r.feed(&bytes);
    assert_eq!(r.next_frame().unwrap().as_ref(), Some(&frames[0]));
    assert_eq!(r.next_frame(), Err(FrameError::BadMagic(0x00)));
}

/// A length prefix above the cap is rejected before any allocation.
#[test]
fn oversized_length_prefix_is_rejected() {
    let len = congest::netplane::MAX_FRAME_LEN + 1;
    let mut bytes = vec![MAGIC, kind::ROUND];
    bytes.extend_from_slice(&len.to_le_bytes());

    let mut r = FrameReader::new();
    r.feed(&bytes);
    let expected = FrameError::TooLarge {
        len,
        max: congest::netplane::MAX_FRAME_LEN,
    };
    assert_eq!(r.next_frame(), Err(expected.clone()));

    let mut cursor = &bytes[..];
    assert_eq!(read_frame(&mut cursor), Err(expected));
}

/// Truncating the stream at every byte gives `UnexpectedEof` (mid-frame)
/// or `Closed` (clean boundary) from the blocking reader, and `None`
/// (keep waiting) from the incremental one — never a wrong frame.
#[test]
fn every_truncation_is_structured() {
    let frames = sample_frames();
    let bytes = encode(&frames);
    let boundaries: Vec<usize> = {
        let mut acc = vec![0usize];
        for f in &frames {
            acc.push(acc.last().unwrap() + 6 + f.payload.len());
        }
        acc
    };
    for cut in 0..bytes.len() {
        let mut cursor = &bytes[..cut];
        loop {
            match read_frame(&mut cursor) {
                Ok(f) => assert!(frames.contains(&f), "cut {cut} invented a frame"),
                Err(FrameError::Closed) => {
                    assert!(boundaries.contains(&cut), "cut {cut} mid-frame gave Closed");
                    break;
                }
                Err(FrameError::UnexpectedEof) => {
                    assert!(!boundaries.contains(&cut), "cut {cut} at boundary gave Eof");
                    break;
                }
                Err(e) => panic!("cut {cut}: unexpected {e:?}"),
            }
        }

        let mut r = FrameReader::new();
        r.feed(&bytes[..cut]);
        while r.next_frame().unwrap().is_some() {}
        // Still waiting for more bytes, not an error.
        assert!(r.next_frame().unwrap().is_none());
    }
}

/// Wire values embedded in frames round-trip end to end, and truncated
/// payloads fail with structured `WireError`s (exercised through the
/// public codec exactly as the runtime uses it).
#[test]
fn wire_payloads_roundtrip_and_reject_truncation() {
    let metrics = Metrics {
        rounds: 41,
        messages: 123_456,
        total_bits: 7_890_123,
        max_message_bits: 96,
        ..Metrics::default()
    };
    let payload = (7u64, metrics.clone()).to_wire();
    let mut bytes = Vec::new();
    write_frame(&mut bytes, kind::STATS, &payload).unwrap();

    let frame = read_frame(&mut &bytes[..]).unwrap();
    let (epoch, back) = <(u64, Metrics)>::from_wire(&frame.payload).unwrap();
    assert_eq!(epoch, 7);
    assert_eq!(back, metrics);

    for cut in 0..payload.len() {
        assert!(
            <(u64, Metrics)>::from_wire(&payload[..cut]).is_err(),
            "truncation at {cut} decoded"
        );
    }
    let mut padded = payload.clone();
    padded.push(0);
    assert!(
        <(u64, Metrics)>::from_wire(&padded).is_err(),
        "trailing byte accepted"
    );
}
