//! Lock-down for the allocation-free round invariant (see
//! `congest::message` module docs): once the first rounds have warmed the
//! pooled delivery buffers, a steady-state communication round must not
//! touch the heap — payloads are inline [`SmallIds`], inboxes/outboxes
//! and the parallel transport cells recycle their vectors, and the inbox
//! sort is in-place.
//!
//! This test binary installs its own counting global allocator and runs a
//! list-pipelining protocol (the shape of every hot phase in the paper
//! pipelines) on both engines, snapshotting the allocation counter from
//! inside the protocol after warmup and near the end of the run.

use congest::{
    Inbox, Message, NodeCtx, NodeRng, Outbox, Port, Protocol, SimConfig, SmallIds, Status,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

static WARM_SNAPSHOT: AtomicU64 = AtomicU64::new(0);
static LATE_SNAPSHOT: AtomicU64 = AtomicU64::new(0);

type Batch = SmallIds<u64, 8>;

#[derive(Debug, Clone)]
enum PumpMsg {
    Batch(Batch),
}

impl Message for PumpMsg {
    fn bits(&self) -> u64 {
        let PumpMsg::Batch(ids) = self;
        8 + ids
            .iter()
            .map(|&x| congest::BitCost::uint(x).max(1))
            .sum::<u64>()
    }
}

/// Every node broadcasts an inline batch every round and folds whatever
/// arrives — the steady-state skeleton of the pipelined list exchanges.
struct Pump {
    rounds: u64,
    warm_round: u64,
}

struct PumpState {
    acc: u64,
}

impl Protocol for Pump {
    type State = PumpState;
    type Msg = PumpMsg;

    fn init(&self, _ctx: &NodeCtx, _rng: &mut NodeRng) -> PumpState {
        PumpState { acc: 0 }
    }

    fn round(
        &self,
        st: &mut PumpState,
        ctx: &NodeCtx,
        _rng: &mut NodeRng,
        inbox: &Inbox<PumpMsg>,
        out: &mut Outbox<PumpMsg>,
    ) -> Status {
        for (_, PumpMsg::Batch(ids)) in inbox.iter() {
            st.acc = st.acc.wrapping_add(ids.iter().sum::<u64>());
        }
        // Snapshot from node 0 only: after warmup, and on the last round.
        if ctx.index == 0 {
            if ctx.round == self.warm_round {
                WARM_SNAPSHOT.store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            if ctx.round == self.rounds - 1 {
                LATE_SNAPSHOT.store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        if ctx.round + 1 >= self.rounds {
            return Status::Done;
        }
        let batch = Batch::from_slice(&[ctx.ident, ctx.round, st.acc & 0xFF, 7]);
        assert!(batch.is_inline(), "test batch must stay inline");
        for p in 0..ctx.degree() as Port {
            out.send(p, PumpMsg::Batch(batch.clone()));
        }
        Status::Running
    }
}

/// One test function for both engines: the snapshot statics are shared,
/// so the engine runs must not interleave (and a single test keeps other
/// test threads from allocating inside the measurement window).
#[test]
fn steady_state_rounds_do_not_allocate() {
    let g = graphs::gen::random_regular(256, 8, 3);
    let proto = Pump {
        rounds: 200,
        warm_round: 10,
    };
    let res = congest::run(&g, &proto, &SimConfig::seeded(5)).expect("run");
    assert_eq!(res.metrics.rounds, 200);
    let warm = WARM_SNAPSHOT.load(Ordering::Relaxed);
    let late = LATE_SNAPSHOT.load(Ordering::Relaxed);
    assert!(warm > 0, "snapshots must have been taken");
    assert_eq!(
        late,
        warm,
        "steady-state rounds allocated {} times on the sequential engine",
        late - warm
    );

    // Parallel engine, generous warmup: the cross-shard cells and
    // private batch buffers grow over the first syncs.
    let proto = Pump {
        rounds: 200,
        warm_round: 30,
    };
    let res = congest::run_parallel(&g, &proto, &SimConfig::seeded(5), 3).expect("run");
    assert_eq!(res.metrics.rounds, 200);
    let warm = WARM_SNAPSHOT.load(Ordering::Relaxed);
    let late = LATE_SNAPSHOT.load(Ordering::Relaxed);
    assert_eq!(
        late,
        warm,
        "steady-state rounds allocated {} times on the parallel engine",
        late - warm
    );

    // Duplication-heavy fault plane: `Fate::Duplicate` delivers two copies
    // per port, so degree-sized inboxes would reallocate in steady state —
    // `Inbox::round_capacity` must pre-size for the worst case.
    let dup_cfg =
        SimConfig::seeded(5).with_faults(congest::FaultConfig::seeded(7).with_dups(400_000));
    let proto = Pump {
        rounds: 200,
        warm_round: 10,
    };
    let res = congest::run(&g, &proto, &dup_cfg).expect("run");
    assert_eq!(res.metrics.rounds, 200);
    assert!(res.metrics.faults_duplicated > 0, "plane must duplicate");
    let warm = WARM_SNAPSHOT.load(Ordering::Relaxed);
    let late = LATE_SNAPSHOT.load(Ordering::Relaxed);
    assert_eq!(
        late,
        warm,
        "dup-heavy steady-state rounds allocated {} times on the sequential engine",
        late - warm
    );
    let proto = Pump {
        rounds: 200,
        warm_round: 30,
    };
    let res = congest::run_parallel(&g, &proto, &dup_cfg, 3).expect("run");
    assert_eq!(res.metrics.rounds, 200);
    let warm = WARM_SNAPSHOT.load(Ordering::Relaxed);
    let late = LATE_SNAPSHOT.load(Ordering::Relaxed);
    assert_eq!(
        late,
        warm,
        "dup-heavy steady-state rounds allocated {} times on the parallel engine",
        late - warm
    );
}
