//! Property tests for the epoch-counter batch transport of the
//! single-barrier parallel runtime.
//!
//! The property: for every graph shape, shard count, message volume, and
//! seed, the full delivery trace each node observes — `(round, port,
//! payload)` for every message, in delivery order — is **exactly** the
//! trace the sequential inbox produces. That simultaneously rules out lost
//! deliveries (a missing trace entry), duplicated deliveries (an extra
//! entry), misrouted deliveries (wrong node or port), and reordering
//! (inboxes are sorted by port; rounds are tagged).

use congest::{Inbox, NodeCtx, NodeRng, Outbox, Port, Protocol, RuntimeMode, SimConfig, Status};
use graphs::{gen, Graph};
use rand::Rng;

/// Records every delivery it observes; sends on a random subset of ports
/// each round, with `density` controlling the volume (0 = silent network,
/// 100 = every port every round).
struct Recorder {
    rounds: u64,
    density: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Trace {
    log: Vec<(u64, Port, u64)>,
}

impl Protocol for Recorder {
    type State = Trace;
    type Msg = u64;
    fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> Trace {
        Trace { log: Vec::new() }
    }
    fn round(
        &self,
        st: &mut Trace,
        ctx: &NodeCtx,
        rng: &mut NodeRng,
        inbox: &Inbox<u64>,
        out: &mut Outbox<u64>,
    ) -> Status {
        for &(p, x) in inbox {
            st.log.push((ctx.round, p, x));
        }
        if ctx.round < self.rounds {
            for p in 0..ctx.degree() as Port {
                if rng.gen_range(0..100u32) < self.density {
                    out.send(p, rng.gen::<u64>() >> 8);
                }
            }
            Status::Running
        } else {
            Status::Done
        }
    }
}

fn shapes(seed: u64) -> Vec<(String, Graph)> {
    vec![
        ("gnp-capped".into(), gen::gnp_capped(110, 0.06, 8, seed)),
        ("cycle".into(), gen::cycle(33)),
        ("star".into(), gen::star(16)),
        (
            "disconnected".into(),
            gen::disjoint_union(&[
                gen::gnp_capped(30, 0.1, 5, seed),
                gen::cycle(11),
                gen::empty(4),
            ]),
        ),
        ("clique-ring".into(), gen::clique_ring(3, 5)),
    ]
}

/// The headline property: randomized shard counts × message volumes ×
/// shapes, full-trace equality against the sequential inbox.
#[test]
fn no_lost_duplicated_or_reordered_deliveries() {
    for seed in [1u64, 42] {
        for (name, g) in shapes(seed) {
            for density in [0u32, 30, 100] {
                let proto = Recorder {
                    rounds: 18,
                    density,
                };
                let cfg = SimConfig::seeded(seed ^ u64::from(density));
                let seq = congest::run(&g, &proto, &cfg).expect("sequential");
                for threads in [1usize, 2, 3, 5, 8, 13] {
                    let par = congest::run_parallel(&g, &proto, &cfg, threads).expect("parallel");
                    assert_eq!(
                        seq.states, par.states,
                        "{name}: trace diverged (density {density}, {threads} threads)"
                    );
                    assert_eq!(
                        seq.metrics, par.metrics,
                        "{name}: metrics diverged (density {density}, {threads} threads)"
                    );
                }
            }
        }
    }
}

/// A `sync_period = p` protocol: bursts on every port at communication
/// rounds, digests in silence in between. Delivery traces and metrics must
/// be engine-independent for every period and shard count.
struct PhasedBurst {
    period: u64,
    bursts: u64,
}

impl Protocol for PhasedBurst {
    type State = Trace;
    type Msg = u64;
    fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> Trace {
        Trace { log: Vec::new() }
    }
    fn round(
        &self,
        st: &mut Trace,
        ctx: &NodeCtx,
        rng: &mut NodeRng,
        inbox: &Inbox<u64>,
        out: &mut Outbox<u64>,
    ) -> Status {
        for &(p, x) in inbox {
            st.log.push((ctx.round, p, x));
        }
        let burst = ctx.round / self.period;
        if ctx.round.is_multiple_of(self.period) && burst < self.bursts {
            for p in 0..ctx.degree() as Port {
                out.send(p, rng.gen::<u64>() >> 8);
            }
        }
        if burst < self.bursts {
            Status::Running
        } else {
            Status::Done
        }
    }
    fn sync_period(&self) -> u64 {
        self.period
    }
}

#[test]
fn round_batched_protocols_equivalent_across_engines() {
    for (name, g) in shapes(7) {
        for period in [2u64, 3, 5] {
            let proto = PhasedBurst { period, bursts: 5 };
            let cfg = SimConfig::seeded(period * 31);
            let seq = congest::run(&g, &proto, &cfg).expect("sequential");
            // Done votes are evaluated at communication rounds only: the
            // first unanimous one is round `bursts * period`.
            assert_eq!(seq.metrics.rounds, 5 * period + 1, "{name}");
            for threads in [2usize, 4, 8] {
                let par = congest::run_parallel(&g, &proto, &cfg, threads).expect("parallel");
                assert_eq!(
                    seq.states, par.states,
                    "{name}: trace diverged (period {period}, {threads} threads)"
                );
                assert_eq!(seq.metrics, par.metrics, "{name}: metrics diverged");
            }
        }
    }
}

/// Messages delivered at a communication round must also arrive when the
/// *receiving* round is silent (sends at round `kp` arrive at `kp + 1`,
/// which the schedule marks silent) — the engine may skip the barrier in
/// silent rounds but never the local inbox rotation.
#[test]
fn silent_rounds_still_receive_prior_messages() {
    let g = gen::cycle(12);
    let proto = PhasedBurst {
        period: 4,
        bursts: 3,
    };
    let cfg = SimConfig::seeded(3);
    let res = congest::run(&g, &proto, &cfg).expect("run");
    for (v, st) in res.states.iter().enumerate() {
        let rounds: Vec<u64> = st.log.iter().map(|&(r, _, _)| r).collect();
        // Bursts at rounds 0, 4, 8 arrive at 1, 5, 9 — all silent rounds.
        assert_eq!(rounds, vec![1, 1, 5, 5, 9, 9], "node {v}: {rounds:?}");
    }
}

/// The silence contract is enforced on the parallel engine too, and the
/// violation panic propagates instead of deadlocking the other shards.
#[test]
fn parallel_silent_round_send_panics_cleanly() {
    struct Liar;
    impl Protocol for Liar {
        type State = ();
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
        fn round(
            &self,
            _: &mut (),
            _: &NodeCtx,
            _: &mut NodeRng,
            _: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            out.broadcast(1);
            Status::Running
        }
        fn sync_period(&self) -> u64 {
            3
        }
    }
    let g = gen::cycle(9);
    let caught = std::panic::catch_unwind(|| {
        let _ = congest::run_parallel(&g, &Liar, &SimConfig::default().with_max_rounds(9), 3);
    });
    assert!(caught.is_err(), "silent-round send must panic, not hang");
}

/// Volume stress: a dense all-ports burst for many rounds across shard
/// counts that do not divide the node count, so shard boundaries land in
/// the middle of neighborhoods.
#[test]
fn dense_volume_with_ragged_shards() {
    let g = gen::gnp_capped(97, 0.15, 11, 5);
    let proto = Recorder {
        rounds: 30,
        density: 100,
    };
    let cfg = SimConfig::seeded(11);
    let seq = congest::run(&g, &proto, &cfg).expect("sequential");
    assert!(seq.metrics.messages > 10_000, "stress must be dense");
    for threads in [3usize, 7, 10] {
        let par = congest::run_parallel(&g, &proto, &cfg, threads).expect("parallel");
        assert_eq!(seq.states, par.states, "{threads} threads");
    }
}

/// `run_with` + `RuntimeMode` dispatch: the same prebuilt tables serve
/// sequential, parallel, and auto runs with identical results.
#[test]
fn run_with_dispatches_identically_over_shared_tables() {
    let g = gen::gnp_capped(80, 0.08, 6, 2);
    let proto = Recorder {
        rounds: 12,
        density: 40,
    };
    let base = SimConfig::seeded(21);
    let net = congest::NetTables::build(&g, &base);
    let seq = congest::run_with(&g, &proto, &base, &net).expect("seq");
    for runtime in [
        RuntimeMode::Parallel(2),
        RuntimeMode::Parallel(5),
        RuntimeMode::Auto(4),
    ] {
        let cfg = base.clone().with_runtime(runtime);
        let res = congest::run_with(&g, &proto, &cfg, &net).expect("run");
        assert_eq!(seq.states, res.states, "{runtime:?}");
        assert_eq!(seq.metrics, res.metrics, "{runtime:?}");
    }
}
