//! Execution engines for [`Protocol`]s.

mod parallel;
mod sequential;

pub use parallel::ParallelRuntime;
pub use sequential::SequentialRuntime;

use crate::{IdAssignment, Metrics, NodeCtx, NodeRng, Port, Protocol, SimConfig};
use graphs::Graph;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Result of a completed run: final per-node states plus metrics.
#[derive(Debug)]
pub struct RunResult<S> {
    /// Final protocol state of each node, indexed by node index.
    pub states: Vec<S>,
    /// Aggregated measurements.
    pub metrics: Metrics,
}

/// Errors aborting a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The protocol did not terminate within `max_rounds`.
    RoundLimitExceeded {
        /// The configured limit that was hit.
        limit: u64,
    },
    /// A message exceeded the bandwidth budget while `strict_bandwidth` was
    /// set.
    Bandwidth {
        /// Round in which the violation occurred.
        round: u64,
        /// Size of the offending message.
        bits: u64,
        /// The budget it exceeded.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
            SimError::Bandwidth { round, bits, limit } => {
                write!(
                    f,
                    "message of {bits} bits exceeded the {limit}-bit budget in round {round}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs `protocol` on `graph` with the deterministic sequential runtime.
///
/// # Errors
///
/// Returns [`SimError`] on round-limit exhaustion, or on bandwidth
/// violations in strict mode.
pub fn run<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    config: &SimConfig,
) -> Result<RunResult<P::State>, SimError> {
    SequentialRuntime.execute(graph, protocol, config)
}

/// Runs `protocol` with the batched-transport parallel runtime on
/// `threads` worker threads (0 = number of available CPUs).
///
/// # Errors
///
/// Returns [`SimError`] on round-limit exhaustion, or on bandwidth
/// violations in strict mode.
pub fn run_parallel<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    config: &SimConfig,
    threads: usize,
) -> Result<RunResult<P::State>, SimError> {
    ParallelRuntime::new(threads).execute(graph, protocol, config)
}

/// The identifier assignment a run with `config` would use — what each
/// node sees as `ctx.ident`. Public so that phase drivers can precompute
/// schedules that depend only on information the nodes already possess
/// locally (e.g. ident-ordered turn-taking inside decomposition clusters).
#[must_use]
pub fn assigned_idents(graph: &Graph, config: &SimConfig) -> Vec<u64> {
    build_contexts(graph, config)
        .into_iter()
        .map(|c| c.ident)
        .collect()
}

/// Derives the private RNG stream of node `index` for run seed `seed`.
pub(crate) fn node_rng(seed: u64, index: u32) -> NodeRng {
    // SplitMix64 mixing decorrelates adjacent node indices.
    let mut z = seed ^ (u64::from(index).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ChaCha8Rng::seed_from_u64(z)
}

/// Assigns identifiers and builds each node's [`NodeCtx`].
pub(crate) fn build_contexts(graph: &Graph, config: &SimConfig) -> Vec<NodeCtx> {
    let n = graph.n();
    let idents: Vec<u64> = match config.ids {
        IdAssignment::Sequential => (0..n as u64).collect(),
        IdAssignment::Permuted => {
            let mut ids: Vec<u64> = (0..n as u64).collect();
            let mut r = ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0xA24B_AED4_963E_E407));
            ids.shuffle(&mut r);
            ids
        }
    };
    let max_degree = graph.max_degree();
    (0..n)
        .map(|v| NodeCtx {
            index: v as u32,
            ident: idents[v],
            n,
            max_degree,
            neighbor_idents: graph
                .neighbors(v as u32)
                .iter()
                .map(|&u| idents[u as usize])
                .collect(),
            round: 0,
        })
        .collect()
}

/// For each node and port, the arrival port at the other endpoint:
/// `rev[u][p]` is the port of `u` on `neighbors(u)[p]`.
pub(crate) fn build_reverse_ports(graph: &Graph) -> Vec<Vec<Port>> {
    (0..graph.n() as u32)
        .map(|u| {
            graph
                .neighbors(u)
                .iter()
                .map(|&v| {
                    graph
                        .port_of(v, u)
                        .expect("undirected graph: reverse edge exists") as Port
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn contexts_have_unique_idents_and_correct_ports() {
        let g = gen::cycle(6);
        let cfg = SimConfig::default();
        let ctxs = build_contexts(&g, &cfg);
        let mut ids: Vec<u64> = ctxs.iter().map(|c| c.ident).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6, "identifiers must be unique");
        for (v, c) in ctxs.iter().enumerate() {
            assert_eq!(c.degree(), 2);
            for (p, &nid) in c.neighbor_idents.iter().enumerate() {
                let u = g.neighbors(v as u32)[p];
                assert_eq!(ctxs[u as usize].ident, nid);
            }
        }
    }

    #[test]
    fn sequential_ids_are_indices() {
        let g = gen::path(4);
        let cfg = SimConfig {
            ids: IdAssignment::Sequential,
            ..SimConfig::default()
        };
        let ctxs = build_contexts(&g, &cfg);
        assert!(ctxs.iter().enumerate().all(|(i, c)| c.ident == i as u64));
    }

    #[test]
    fn reverse_ports_roundtrip() {
        let g = gen::gnp_capped(40, 0.2, 8, 1);
        let rev = build_reverse_ports(&g);
        for u in 0..g.n() as u32 {
            for (p, &v) in g.neighbors(u).iter().enumerate() {
                let back = rev[u as usize][p] as usize;
                assert_eq!(g.neighbors(v)[back], u);
            }
        }
    }

    #[test]
    fn node_rng_streams_differ() {
        use rand::RngCore;
        let a = node_rng(1, 0).next_u64();
        let b = node_rng(1, 1).next_u64();
        let a2 = node_rng(1, 0).next_u64();
        assert_ne!(a, b);
        assert_eq!(a, a2, "same (seed, index) must reproduce");
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::RoundLimitExceeded { limit: 5 };
        assert!(e.to_string().contains('5'));
        let b = SimError::Bandwidth {
            round: 1,
            bits: 99,
            limit: 64,
        };
        assert!(b.to_string().contains("99"));
    }
}
