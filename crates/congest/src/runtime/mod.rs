//! Execution engines for [`Protocol`]s.
//!
//! # One round loop, three transports
//!
//! The round loop exists exactly once, in the private `engine` module:
//! a generic core that owns node stepping, active-set scheduling,
//! fault-plane delivery, sync-period batching, strict-bandwidth abort
//! ordering, metrics accounting, and [`SimError`] construction. What a
//! runtime contributes is a `Transport` — how one shard's staged
//! messages and per-round control flags reach the other shards:
//!
//! * [`SequentialRuntime`] — the trivial transport: one shard owns every
//!   node, the barrier is a no-op, local flags are global. This is the
//!   deterministic reference every other transport is validated against.
//! * [`ParallelRuntime`] — nodes sharded over worker threads; the
//!   transport is a parity-double-buffered mailbox matrix plus a
//!   **single spin barrier per communication round** (see `parallel.rs`
//!   for the handshake protocol).
//! * [`crate::netplane`] — shards in separate OS processes; the
//!   transport is length-prefixed frames over sockets with retention,
//!   rejoin, and fault injection (see `netplane/runtime.rs`).
//!
//! The `Transport` contract (documented in full on the trait) is small:
//! *stage* a message for a remote node, *exchange* at the communication
//! round barrier — publish staged batches plus this shard's
//! `RoundFlags` (termination-vote AND, sticky-running sum, next-round
//! running projection, first strict-bandwidth violation), deliver
//! inbound messages, and return the flags merged identically on every
//! shard — and a *watchdog* that globalizes round-limit diagnostics.
//! Because termination, the crash-probe latch, and abort decisions are
//! all functions of the merged flags, every shard takes every
//! transition in lockstep, and adding a transport can never fork the
//! semantics.
//!
//! All engines are bit-identical for the same seed: per-node RNG streams
//! depend only on `(seed, index)`, inboxes are sorted by port before
//! delivery, and strict-bandwidth errors are resolved to the lowest
//! violating node index so the first error in sequential order wins
//! regardless of thread or process interleaving. The differential
//! harnesses (`tests/runtime_equivalence.rs`, `tests/net_equivalence.rs`)
//! assert this equivalence over full coloring pipelines.
//!
//! # Active-set scheduling
//!
//! By default ([`Scheduling::ActiveSet`](crate::Scheduling)) the engines
//! step only the **live frontier** each round instead of all `n` nodes. A
//! node is stepped in round `r` exactly when it is *woken* for `r`, which
//! happens iff
//!
//! 1. a message addressed to it arrives in round `r` (deliveries always
//!    wake their destination — staged at `r − 1`, stamped for `r`);
//! 2. its own [`Protocol::next_wake`] asked for it: [`Wake::Next`](crate::Wake::Next) after
//!    its round-`r − 1` step, or a matured [`Wake::At(r)`](crate::Wake)
//!    request; or
//! 3. the fault plane recovers it in round `r` (crash-window end).
//!
//! Round 0 wakes every node. Nodes the plane has crashed are skipped
//! while down without rescheduling. Per round the frontier is traversed
//! by a `Sweep`: index-ordered flag scan when dense (≥ `n/4`), sorted
//! sparse list otherwise — either way nodes step in index order, so the
//! sequential observables are unchanged. Sharded transports keep one
//! frontier per shard over shard-local indices; wakes for remote nodes
//! ride inside the same message batches the transport already exchanges
//! (a delivery always wakes its destination), so no extra barrier is
//! paid.
//!
//! **Termination** under parking uses *sticky votes*: each node's latest
//! communication-round vote stands in for it while parked (the parking
//! contract on [`Protocol::next_wake`] makes this exact — see its docs),
//! and the run ends at the first communication round where no non-crashed
//! node's sticky vote is `Running`. Two fault-plane escape hatches keep
//! the crash semantics identical to the reference:
//!
//! * when a crash removes the last sticky-`Running` vote, the engine
//!   **latches** back to stepping every node with the classic unanimity
//!   check, permanently (each shard publishes a one-round projection of
//!   its running count in its `RoundFlags`, so every shard latches on
//!   the same round);
//! * parking is disabled outright when crash faults meet a
//!   [`Protocol::sync_period`] `> 1` — a crash inside a silent window
//!   could flip unanimity between rounds the engines never compare votes
//!   at.
//!
//! [`Scheduling::AlwaysStep`](crate::Scheduling) forces the classic
//! every-node schedule ([`Protocol::next_wake`] is never called); the
//! differential harnesses hold active-set runs bit-identical to it with
//! only [`Metrics::stepped_nodes`](crate::Metrics) allowed to shrink.
//!
//! # Engine selection
//!
//! [`SimConfig::runtime`] picks the engine per run:
//!
//! * [`RuntimeMode::Sequential`] / [`RuntimeMode::Parallel`] — explicit.
//! * [`RuntimeMode::Auto`] — adaptive: the parallel engine only pays for
//!   itself when each round carries enough work to amortize the barrier,
//!   so `Auto` estimates per-round work as `n + 2m` (nodes stepped plus an
//!   upper bound on messages handled) and picks sequential below
//!   [`AUTO_WORK_THRESHOLD`](crate::AUTO_WORK_THRESHOLD). The threshold is
//!   calibrated from `BENCH_PR2.json`; its doc comment records how to
//!   re-derive it.
//!
//! # Round batching
//!
//! Protocols that communicate only every `p`-th round can declare it via
//! [`Protocol::sync_period`]; the core then evaluates termination (and
//! the transport synchronizes) only at those communication rounds,
//! cutting barrier traffic by `p×` while remaining bit-identical.
//!
//! # Per-network tables
//!
//! Context construction is backed by [`NetTables`], a
//! CSR-layout identifier/reverse-port table built once per
//! `(graph, config)`. Multi-phase drivers build the tables once and pass
//! them to [`run_with`]; the convenience entry points build them on the
//! fly.

mod barrier;
pub(crate) mod engine;
mod parallel;
mod sequential;

pub use parallel::ParallelRuntime;
pub use sequential::SequentialRuntime;

use crate::{Metrics, NetTables, NodeRng, Protocol, RuntimeMode, SimConfig};
use graphs::Graph;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::sync::Arc;

/// Result of a completed run: final per-node states plus metrics.
#[derive(Debug)]
pub struct RunResult<S> {
    /// Final protocol state of each node, indexed by node index.
    pub states: Vec<S>,
    /// Aggregated measurements.
    pub metrics: Metrics,
}

/// Errors aborting a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The protocol did not terminate within `max_rounds`.
    ///
    /// The watchdog fields turn a bare livelock cutoff into an actionable
    /// diagnostic for stalled large-scale runs: which pipeline phase hung,
    /// how many nodes were still working, and whether the run was making
    /// progress at all when the axe fell. "Progress" means some node
    /// changed its termination vote or some message was sent that round;
    /// a `last_progress_round` far below the limit is a livelock (e.g.
    /// fault-induced deadlock), one near the limit means the cutoff is
    /// simply too tight. All engines report bit-identical diagnostics.
    RoundLimitExceeded {
        /// The configured limit that was hit.
        limit: u64,
        /// Label of the pipeline phase that stalled
        /// ([`SimConfig::phase_label`](crate::SimConfig::phase_label);
        /// empty if the caller set none).
        phase: String,
        /// Nodes still voting [`Status::Running`](crate::Status) when the
        /// limit was hit.
        live_nodes: u64,
        /// Last round in which any node changed status or sent a message
        /// (0 if the run never progressed).
        last_progress_round: u64,
    },
    /// A message exceeded the bandwidth budget while `strict_bandwidth` was
    /// set.
    Bandwidth {
        /// Round in which the violation occurred.
        round: u64,
        /// Size of the offending message.
        bits: u64,
        /// The budget it exceeded.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded {
                limit,
                phase,
                live_nodes,
                last_progress_round,
            } => {
                let phase = if phase.is_empty() { "unnamed" } else { phase };
                write!(
                    f,
                    "protocol did not terminate within {limit} rounds \
                     (phase `{phase}`, {live_nodes} nodes still running, \
                     last progress at round {last_progress_round})"
                )
            }
            SimError::Bandwidth { round, bits, limit } => {
                write!(
                    f,
                    "message of {bits} bits exceeded the {limit}-bit budget in round {round}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs `protocol` on `graph` with the deterministic sequential runtime.
///
/// # Errors
///
/// Returns [`SimError`] on round-limit exhaustion, or on bandwidth
/// violations in strict mode.
pub fn run<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    config: &SimConfig,
) -> Result<RunResult<P::State>, SimError> {
    SequentialRuntime.execute(graph, protocol, config)
}

/// Runs `protocol` with the single-barrier parallel runtime on `threads`
/// worker threads (0 = number of available CPUs).
///
/// # Errors
///
/// Returns [`SimError`] on round-limit exhaustion, or on bandwidth
/// violations in strict mode.
pub fn run_parallel<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    config: &SimConfig,
    threads: usize,
) -> Result<RunResult<P::State>, SimError> {
    ParallelRuntime::new(threads).execute(graph, protocol, config)
}

/// Runs `protocol` on the engine selected by `config.runtime` (resolving
/// [`RuntimeMode::Auto`] against the graph), reusing prebuilt
/// [`NetTables`]. This is the entry point multi-phase drivers use: the
/// tables are built once per driver and shared across all phases.
///
/// # Errors
///
/// Returns [`SimError`] on round-limit exhaustion, or on bandwidth
/// violations in strict mode.
pub fn run_with<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    config: &SimConfig,
    net: &Arc<NetTables>,
) -> Result<RunResult<P::State>, SimError> {
    match config.runtime.resolve(graph) {
        RuntimeMode::Parallel(t) => {
            ParallelRuntime::new(t).execute_with(graph, protocol, config, net)
        }
        _ => SequentialRuntime.execute_with(graph, protocol, config, net),
    }
}

/// The identifier assignment a run with `config` would use — what each
/// node sees as `ctx.ident`. Public so that phase drivers can precompute
/// schedules that depend only on information the nodes already possess
/// locally (e.g. ident-ordered turn-taking inside decomposition clusters).
/// `O(n)` — computes the permutation alone, not the full [`NetTables`]
/// (drivers holding a `Driver` should prefer its cached
/// `idents()` accessor and skip even this).
#[must_use]
pub fn assigned_idents(graph: &Graph, config: &SimConfig) -> Vec<u64> {
    crate::net::ident_assignment(graph.n(), config)
}

/// Derives the private RNG stream of node `index` for run seed `seed`.
pub(crate) fn node_rng(seed: u64, index: u32) -> NodeRng {
    // SplitMix64 mixing decorrelates adjacent node indices.
    let mut z = seed ^ (u64::from(index).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ChaCha8Rng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdAssignment;
    use graphs::gen;

    #[test]
    fn contexts_have_unique_idents_and_correct_ports() {
        let g = gen::cycle(6);
        let cfg = SimConfig::default();
        let ctxs = NetTables::build(&g, &cfg).contexts();
        let mut ids: Vec<u64> = ctxs.iter().map(|c| c.ident).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6, "identifiers must be unique");
        for (v, c) in ctxs.iter().enumerate() {
            assert_eq!(c.degree(), 2);
            for (p, &nid) in c.neighbor_idents().iter().enumerate() {
                let u = g.neighbors(v as u32)[p];
                assert_eq!(ctxs[u as usize].ident, nid);
            }
        }
    }

    #[test]
    fn sequential_ids_are_indices() {
        let g = gen::path(4);
        let cfg = SimConfig {
            ids: IdAssignment::Sequential,
            ..SimConfig::default()
        };
        let ctxs = NetTables::build(&g, &cfg).contexts();
        assert!(ctxs.iter().enumerate().all(|(i, c)| c.ident == i as u64));
        assert_eq!(assigned_idents(&g, &cfg), vec![0, 1, 2, 3]);
    }

    #[test]
    fn reverse_ports_roundtrip() {
        let g = gen::gnp_capped(40, 0.2, 8, 1);
        let net = NetTables::build(&g, &SimConfig::default());
        for u in 0..g.n() as u32 {
            for (p, &v) in g.neighbors(u).iter().enumerate() {
                let back = net.reverse_ports_of(u)[p] as usize;
                assert_eq!(g.neighbors(v)[back], u);
            }
        }
    }

    #[test]
    fn node_rng_streams_differ() {
        use rand::RngCore;
        let a = node_rng(1, 0).next_u64();
        let b = node_rng(1, 1).next_u64();
        let a2 = node_rng(1, 0).next_u64();
        assert_ne!(a, b);
        assert_eq!(a, a2, "same (seed, index) must reproduce");
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::RoundLimitExceeded {
            limit: 5,
            phase: "loc-iter(q=9)".into(),
            live_nodes: 3,
            last_progress_round: 2,
        };
        let text = e.to_string();
        assert!(text.contains('5'));
        assert!(text.contains("loc-iter(q=9)"), "{text}");
        assert!(text.contains("3 nodes"), "{text}");
        assert!(text.contains("round 2"), "{text}");
        let unnamed = SimError::RoundLimitExceeded {
            limit: 1,
            phase: String::new(),
            live_nodes: 0,
            last_progress_round: 0,
        };
        assert!(unnamed.to_string().contains("unnamed"));
        let b = SimError::Bandwidth {
            round: 1,
            bits: 99,
            limit: 64,
        };
        assert!(b.to_string().contains("99"));
    }
}
