//! A hybrid spin/park sense-reversing barrier with panic poisoning.
//!
//! `std::sync::Barrier` parks every waiter on a mutex/condvar — a
//! syscall-heavy handshake that dominates light simulation rounds (the
//! BENCH_PR1 cells at `n ≤ 600` spent more time in the barrier than in
//! protocol code). When every worker has its own core, a short spin phase
//! catches the common case where the stragglers are microseconds away and
//! no syscall is needed at all.
//!
//! Pure spinning is catastrophic the moment workers are *oversubscribed*
//! (more workers than cores): a spinning waiter burns the very timeslice
//! the straggler needs, and `yield_now` loops degrade into a
//! `sched_yield` storm (observed: a 50× slowdown on a single-core
//! container). So the barrier adapts at construction: with enough cores it
//! spins briefly and then parks; oversubscribed it skips the spin phase and
//! parks immediately, costing exactly one condvar round-trip per barrier —
//! half of what the old two-barrier protocol paid.
//!
//! Poisoning: if a worker panics (a protocol bug — duplicate port send,
//! silent-round send, arbitrary user panic), every other worker would
//! otherwise block forever on a barrier the panicked worker never reaches.
//! [`SpinBarrier::poison`] (called from a drop guard on the unwinding
//! thread) wakes and panics every current and future waiter, so
//! `std::thread::scope` can join and propagate the original panic.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Spin iterations before parking, when workers are not oversubscribed.
const SPIN_LIMIT: u32 = 4096;

/// A reusable barrier for a fixed set of `total` threads.
pub(crate) struct SpinBarrier {
    total: usize,
    /// Spin budget before parking; 0 when oversubscribed.
    spin_limit: u32,
    /// Threads arrived in the current generation.
    count: AtomicUsize,
    /// Completed generations; waiters spin/park until it advances.
    generation: AtomicU64,
    poisoned: AtomicBool,
    /// Park support: waiters that exhausted the spin budget sleep on the
    /// condvar; the generation check happens under the mutex, so a leader
    /// advancing the generation (also under the mutex) cannot slip between
    /// the check and the wait.
    lock: Mutex<()>,
    cv: Condvar,
}

impl SpinBarrier {
    pub(crate) fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        SpinBarrier {
            total,
            spin_limit: if total <= cores { SPIN_LIMIT } else { 0 },
            count: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// The barrier's internal mutex guards no data, so a panic while
    /// holding it (a poisoned-barrier panic) leaves nothing inconsistent.
    fn guard(&self) -> MutexGuard<'_, ()> {
        self.lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocks until all `total` threads have called `wait` for this
    /// generation. Panics if the barrier is (or becomes) poisoned.
    ///
    /// The last thread to arrive resets the arrival count *before*
    /// advancing the generation, so a fast thread re-entering `wait` for
    /// the next generation cannot race the reset. Sequentially-consistent
    /// atomics make the barrier a full synchronization point: all writes
    /// before any thread's `wait` happen-before all reads after any
    /// thread's `wait` returns.
    pub(crate) fn wait(&self) {
        self.check_poison();
        if self.total <= 1 {
            return;
        }
        let generation = self.generation.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.total {
            self.count.store(0, Ordering::SeqCst);
            // Advance under the mutex so a parked (or about-to-park)
            // waiter cannot miss the wakeup.
            let _g = self.guard();
            self.generation.store(generation + 1, Ordering::SeqCst);
            self.cv.notify_all();
        } else {
            for _ in 0..self.spin_limit {
                if self.generation.load(Ordering::SeqCst) != generation {
                    self.check_poison();
                    return;
                }
                self.check_poison();
                std::hint::spin_loop();
            }
            let mut g = self.guard();
            while self.generation.load(Ordering::SeqCst) == generation
                && !self.poisoned.load(Ordering::SeqCst)
            {
                g = self
                    .cv
                    .wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            drop(g);
        }
        self.check_poison();
    }

    /// Marks the barrier poisoned; every thread waiting in [`wait`] (and
    /// every later caller) panics.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        let _g = self.guard();
        self.cv.notify_all();
    }

    fn check_poison(&self) {
        assert!(
            !self.poisoned.load(Ordering::SeqCst),
            "parallel runtime: a worker thread panicked, poisoning the round barrier"
        );
    }

    /// A guard that poisons the barrier if its owning thread unwinds.
    /// Workers hold one for their whole lifetime so a protocol panic in any
    /// shard aborts all shards instead of deadlocking them.
    pub(crate) fn poison_guard(&self) -> PoisonGuard<'_> {
        PoisonGuard { barrier: self }
    }
}

pub(crate) struct PoisonGuard<'a> {
    barrier: &'a SpinBarrier,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.barrier.poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    #[test]
    fn barrier_synchronizes_generations() {
        let rounds = 200u64;
        let threads = 4usize;
        let barrier = SpinBarrier::new(threads);
        let counter = Counter::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for r in 0..rounds {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // Between the two waits every thread observes the
                        // full per-round quota.
                        let seen = counter.load(Ordering::SeqCst);
                        assert_eq!(seen, (r + 1) * threads as u64);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn single_thread_barrier_is_free() {
        let b = SpinBarrier::new(1);
        b.wait();
        b.wait();
    }

    #[test]
    fn poisoned_barrier_panics_waiters() {
        let barrier = SpinBarrier::new(2);
        let result = std::thread::scope(|s| {
            let h = s.spawn(|| {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    barrier.wait();
                }));
                caught.is_err()
            });
            // Give the waiter a moment to start waiting, then poison.
            std::thread::sleep(std::time::Duration::from_millis(10));
            barrier.poison();
            h.join().expect("no double panic")
        });
        assert!(result, "waiter must panic when the barrier is poisoned");
    }

    #[test]
    fn guard_poisons_on_unwind() {
        let barrier = SpinBarrier::new(2);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = barrier.poison_guard();
            panic!("protocol bug");
        }));
        assert!(barrier.poisoned.load(Ordering::SeqCst));
    }

    /// A barrier with a pinned spin budget, bypassing the core-count
    /// heuristic so both waiter paths are testable on any box.
    fn with_spin_limit(total: usize, spin_limit: u32) -> SpinBarrier {
        SpinBarrier {
            spin_limit,
            ..SpinBarrier::new(total)
        }
    }

    /// Poisons a 2-thread barrier while the waiter sits in the given
    /// wait path and asserts the waiter panics out of it.
    fn poison_reaches_waiter(barrier: &SpinBarrier) {
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    barrier.wait();
                }))
                .is_err()
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            barrier.poison();
            assert!(
                h.join().expect("no double panic"),
                "waiter must panic when the barrier is poisoned"
            );
        });
    }

    #[test]
    fn poison_reaches_a_spinning_waiter() {
        // Unbounded spin budget: the waiter is guaranteed to still be in
        // the spin loop (never parks) when the poison lands, so this
        // covers the spin-path check_poison exit.
        poison_reaches_waiter(&with_spin_limit(2, u32::MAX));
    }

    #[test]
    fn poison_reaches_a_parked_waiter() {
        // Zero spin budget: the waiter parks on the condvar immediately,
        // so this covers the wakeup-then-panic park path.
        poison_reaches_waiter(&with_spin_limit(2, 0));
    }

    #[test]
    fn oversubscribed_barrier_parks_instead_of_spinning() {
        // 16 workers on however few cores this box has: must still make
        // fast progress (the old yield-loop design degraded ~50× here).
        let barrier = SpinBarrier::new(16);
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    for _ in 0..50 {
                        barrier.wait();
                    }
                });
            }
        });
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "oversubscribed barrier too slow: {:?}",
            t0.elapsed()
        );
    }
}
