//! The one round loop: a generic engine core shared by every runtime.
//!
//! The CONGEST model is a single abstraction — synchronous rounds,
//! bounded-bandwidth edges — and this module implements it exactly once.
//! [`drive`] owns everything the runtimes used to triplicate: active-set
//! scheduling (the wake frontier, `Wake::At` heap, sticky termination
//! votes with the crash-probe latch), fault-plane send/delivery fates,
//! sync-period batching, strict-bandwidth abort ordering, metrics
//! accounting, and structured [`SimError`] construction. What *varies*
//! between runtimes — how a shard's staged messages and votes reach the
//! other shards — is abstracted behind the [`Transport`] trait.
//!
//! # The `Transport` contract
//!
//! A transport connects one shard (a contiguous node range
//! `[start, start + local_n)`) to its peers through three operations:
//!
//! * [`Transport::stage`] — queue one message for a node another shard
//!   owns. Called only between barriers; a single-shard transport is
//!   never asked to stage anything.
//! * [`Transport::exchange`] — the **one synchronization point per
//!   communication round**. The transport must (a) make this shard's
//!   staged messages and [`RoundFlags`] visible to every peer, (b)
//!   deliver every inbound `(dest, port, msg)` through the provided
//!   callback, and (c) return the [`RoundFlags`] merged over **all**
//!   shards (AND of `all_done`, sums of `running`/`proj_running`,
//!   min-by-node `violation`). Every shard must observe the identical
//!   merged value — the core derives termination, strict-bandwidth
//!   aborts, and the crash-probe latch from it, and shards must take
//!   those transitions in lockstep.
//! * [`Transport::watchdog`] — called once, only on the round-limit
//!   path: globalize the diagnostics (sum of live nodes, max of
//!   last-progress rounds) for [`SimError::RoundLimitExceeded`].
//!
//! Everything else — which nodes step, what they send, how faults bite,
//! what the metrics say — is the core's business and therefore identical
//! across runtimes by construction. The differential harnesses
//! (`tests/runtime_equivalence.rs`, `tests/net_equivalence.rs`,
//! `tests/fault_equivalence.rs`) hold the three transports bit-identical
//! on every observable.
//!
//! # Why the merged flags are enough
//!
//! * **Termination.** Stepping all: unanimity is the AND over shards of
//!   the local ANDs (crashed nodes are skipped — they vote `Done`
//!   implicitly). Parking: the run ends when the summed count of
//!   non-crashed sticky-`Running` votes hits zero — exactly when the
//!   always-step reference would see unanimity (the parking contract on
//!   [`Protocol::next_wake`] makes sticky votes exact at such rounds).
//! * **Crash-probe latch.** When a scheduled crash removes the last
//!   sticky-`Running` vote, parked votes may go stale, so the engine
//!   must fall back to stepping everyone. Each shard publishes a
//!   one-round-ahead *projection* of its running count under the
//!   plane's statically-known crash/recovery events; a zero merged
//!   projection latches every shard back to the classic schedule on the
//!   same round.
//! * **Strict bandwidth.** Each shard reports its first violation in
//!   node order as `(node, bits)`; min-by-node across shards is the
//!   message the sequential sweep (which steps in index order) would
//!   have aborted on. The abort happens *after* the exchange, so every
//!   shard leaves the barrier protocol cleanly at the same round.

use super::barrier::SpinBarrier;
use super::{node_rng, SimError};
use crate::faults::{Fate, FaultPlane};
use crate::{
    Inbox, Message, Metrics, NetTables, NodeCtx, NodeRng, Outbox, Port, Protocol, SimConfig,
    Status, Wake,
};
use graphs::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The control word exchanged at every communication-round barrier.
///
/// Merging is associative and commutative, so transports may combine
/// contributions in any order: `all_done` by AND, `running` and
/// `proj_running` by sum, `violation` by minimum node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RoundFlags {
    /// AND of this shard's termination votes this round (crashed nodes
    /// excepted — they vote `Done` implicitly).
    pub all_done: bool,
    /// Non-crashed local nodes whose sticky communication-round vote is
    /// still [`Status::Running`].
    pub running: u64,
    /// Projection of `running` for the next round under the fault
    /// plane's scheduled crash/recovery events (0 when irrelevant).
    pub proj_running: u64,
    /// First strict-bandwidth violation this round in local node order,
    /// as `(node index, message bits)`; `None` outside strict mode.
    pub violation: Option<(u32, u64)>,
}

impl RoundFlags {
    /// Folds another shard's contribution into this one.
    pub(crate) fn absorb(&mut self, other: &RoundFlags) {
        self.all_done &= other.all_done;
        self.running += other.running;
        self.proj_running += other.proj_running;
        self.violation = match (self.violation, other.violation) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (a, b) => a.or(b),
        };
    }
}

/// A runtime's side of the round loop: how staged messages and round
/// flags travel between shards. See the [module docs](self) for the full
/// contract.
pub(crate) trait Transport<M> {
    /// Queues one message for a node owned by another shard
    /// (`dest` is a global node index, `port` the arrival port).
    fn stage(&mut self, dest: u32, port: Port, msg: M);

    /// The communication-round barrier: publish `local` and the staged
    /// batches, deliver every inbound message through `deliver`, and
    /// return the flags merged over all shards (identical everywhere).
    fn exchange(&mut self, local: RoundFlags, deliver: &mut dyn FnMut(u32, Port, M)) -> RoundFlags;

    /// Globalizes the round-limit diagnostics: returns
    /// `(sum of live, max of last_progress)` over all shards. Called at
    /// most once, after the last round, and only when no shard
    /// terminated or aborted — so every shard calls it together.
    fn watchdog(&mut self, live: u64, last_progress: u64) -> (u64, u64);
}

/// The trivial transport of a single shard that owns every node: nothing
/// crosses a boundary, the barrier is a no-op, the local flags are the
/// global flags. [`SequentialRuntime`](super::SequentialRuntime) is the
/// core plus this.
pub(crate) struct LocalTransport;

impl<M> Transport<M> for LocalTransport {
    fn stage(&mut self, dest: u32, _port: Port, _msg: M) {
        unreachable!("single-shard transport asked to stage a message for node {dest}");
    }
    fn exchange(
        &mut self,
        local: RoundFlags,
        _deliver: &mut dyn FnMut(u32, Port, M),
    ) -> RoundFlags {
        local
    }
    fn watchdog(&mut self, live: u64, last_progress: u64) -> (u64, u64) {
        (live, last_progress)
    }
}

/// One shard's slice of the deterministic world, indexed so that local
/// node `i` is global node `start + i`. The caller builds (and keeps) the
/// slices — runtimes that must return full-length state vectors
/// (sequential, netplane) pass sub-slices of them.
pub(crate) struct ShardWorld<'a, P: Protocol> {
    /// Global index of local node 0.
    pub start: usize,
    /// Contexts of the owned nodes (global `index`/`ident` preserved).
    pub ctxs: &'a mut [NodeCtx],
    /// States of the owned nodes.
    pub states: &'a mut [P::State],
    /// RNG streams of the owned nodes.
    pub rngs: &'a mut [NodeRng],
    /// The run's fault schedule, if any — a pure function of
    /// `(config, salt, n)`, so every shard holds the identical trace.
    pub plane: Option<&'a FaultPlane>,
}

/// Derives the per-node `(rng, state)` world for the contexts of one
/// shard, where `ctxs[i]` is global node `start + i`. RNG streams depend
/// only on `(seed, global index)`, so shards of any partition build the
/// same world rows.
pub(crate) fn init_nodes<P: Protocol>(
    protocol: &P,
    config: &SimConfig,
    ctxs: &[NodeCtx],
    start: usize,
) -> (Vec<NodeRng>, Vec<P::State>) {
    let mut rngs: Vec<NodeRng> = (0..ctxs.len())
        .map(|i| node_rng(config.rng_seed(), (start + i) as u32))
        .collect();
    let states = ctxs
        .iter()
        .zip(rngs.iter_mut())
        .map(|(c, r)| protocol.init(c, r))
        .collect();
    (rngs, states)
}

/// The aggregated per-communication-round bandwidth budget: a protocol
/// declaring [`Protocol::sync_period`] `p` may pack `p` rounds' worth of
/// per-edge bandwidth into each communication-round message.
pub(crate) fn round_budget(config: &SimConfig, n: usize, period: u64) -> u64 {
    config.bandwidth_bits(n).saturating_mul(period)
}

/// How one round's step set is traversed under active-set scheduling.
enum Sweep {
    /// Step every local node (always-step reference, or a latched probe).
    All,
    /// Step the sorted sparse frontier.
    Sparse,
    /// Scan all local indices against the frontier membership flags —
    /// preserves index order without sorting when the frontier is a
    /// large fraction of the shard.
    Dense,
}

/// Marks local node `i` as scheduled for round `t`, deduplicating via the
/// stamp array (`stamp[i] == t` ⇔ already queued for `t`).
#[inline]
fn wake(stamp: &mut [u64], queue: &mut Vec<u32>, i: usize, t: u64) {
    if stamp[i] != t {
        stamp[i] = t;
        queue.push(i as u32);
    }
}

/// Runs `protocol` on this shard's slice of `graph` to global
/// termination, synchronizing through `transport` once per communication
/// round. Returns the shard's **local** metrics (`rounds` set to the
/// global count, `bandwidth_bits` to the budget); the caller merges
/// across shards. Errors are constructed from globally-merged flags, so
/// every shard returns the identical [`SimError`].
///
/// The caller must handle `n == 0` itself (an empty graph has no round 0
/// to terminate at) and must pass a non-empty graph here.
///
/// # Panics
///
/// Panics if the protocol stages a message in a round its declared
/// [`Protocol::sync_period`] marks silent — a protocol bug, like a
/// duplicate send on a port.
#[allow(clippy::too_many_lines)]
pub(crate) fn drive<P: Protocol, T: Transport<P::Msg>>(
    graph: &Graph,
    protocol: &P,
    config: &SimConfig,
    net: &NetTables,
    world: ShardWorld<'_, P>,
    transport: &mut T,
) -> Result<Metrics, SimError> {
    let n = graph.n();
    let ShardWorld {
        start,
        ctxs,
        states,
        rngs,
        plane,
    } = world;
    let local_n = ctxs.len();
    let local = start..start + local_n;
    let period = protocol.sync_period().max(1);
    let budget = round_budget(config, n, period);
    let mut metrics = Metrics {
        bandwidth_bits: budget,
        ..Metrics::default()
    };

    // A duplicating plane can deliver two copies per port in one round;
    // size inboxes for it so the steady state stays allocation-free.
    let dups = config
        .faults
        .as_ref()
        .is_some_and(|f| f.dup_per_million > 0);
    let mut cur: Vec<Inbox<P::Msg>> = (0..local_n)
        .map(|i| {
            Inbox::with_capacity(Inbox::<P::Msg>::round_capacity(
                graph.degree((start + i) as u32),
                dups,
            ))
        })
        .collect();
    let mut next: Vec<Inbox<P::Msg>> = (0..local_n)
        .map(|i| {
            Inbox::with_capacity(Inbox::<P::Msg>::round_capacity(
                graph.degree((start + i) as u32),
                dups,
            ))
        })
        .collect();
    let mut out: Outbox<P::Msg> = Outbox::new(0);

    let has_crashes = plane.is_some_and(FaultPlane::has_crashes);
    // One rule for every transport: `Scheduling::effective` gates the
    // frontier identically on all shards, and all later transitions (the
    // probe latch) are driven by the merged flags, so shards always
    // agree on the mode.
    let mut active = config.scheduling.effective(has_crashes, period);

    // Sticky votes: each local node's latest communication-round vote.
    // While a node is parked its sticky vote stands in for it (the
    // parking contract on `Protocol::next_wake` makes that exact), so a
    // zero global sum of `running` counts is exactly the round where the
    // always-step reference would see unanimity.
    let mut sticky: Vec<Status> = vec![Status::Running; local_n];
    let mut running: u64 = local_n as u64;
    let mut last_progress: u64 = 0;

    // Frontier machinery over local indices (untouched when `!active`):
    // `frontier` holds this round's wakes, `next_frontier` the next
    // round's, `stamp` deduplicates insertions, `heap` carries `Wake::At`
    // requests with `heap_round[i]` = the latest requested target (stale
    // entries are skipped on pop), and the crash/recovery event lists
    // feed the plane's edges into the running count and the wake queue.
    let mut frontier: Vec<u32> = Vec::new();
    let mut next_frontier: Vec<u32> = Vec::new();
    let mut stamp: Vec<u64> = Vec::new();
    let mut in_cur: Vec<bool> = Vec::new();
    let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
    let mut heap_round: Vec<u64> = Vec::new();
    let mut crash_events: Vec<(u64, u32)> = Vec::new();
    let mut recovery_events: Vec<(u64, u32)> = Vec::new();
    let (mut ci, mut ri) = (0usize, 0usize);
    if active {
        frontier = (0..local_n as u32).collect(); // round 0 wakes everyone
        next_frontier = Vec::with_capacity(local_n);
        stamp = vec![0; local_n];
        in_cur = vec![false; local_n];
        heap_round = vec![u64::MAX; local_n];
        if let Some(p) = plane {
            for i in 0..local_n {
                if let Some((s, e)) = p.crash_window(start + i) {
                    crash_events.push((s, i as u32));
                    if e != u64::MAX {
                        recovery_events.push((e, i as u32));
                    }
                }
            }
            crash_events.sort_unstable();
            recovery_events.sort_unstable();
        }
    }

    let mut terminated = false;
    for round in 0..config.max_rounds {
        // Communication rounds carry messages and termination votes; the
        // `period - 1` rounds in between are declared-silent local
        // computation (see `Protocol::sync_period`).
        let comm = round.is_multiple_of(period);
        if active {
            // Assemble this round's frontier: last round's wakes are
            // already in `frontier`; add matured `Wake::At` requests and
            // fault-plane crash/recovery edges.
            while let Some(&(Reverse(t), i)) = heap.peek() {
                if t > round {
                    break;
                }
                heap.pop();
                if t == round && heap_round[i as usize] == t {
                    heap_round[i as usize] = u64::MAX;
                    wake(&mut stamp, &mut frontier, i as usize, round);
                }
            }
            while ci < crash_events.len() && crash_events[ci].0 == round {
                let i = crash_events[ci].1 as usize;
                ci += 1;
                if sticky[i] == Status::Running {
                    running -= 1;
                }
            }
            while ri < recovery_events.len() && recovery_events[ri].0 == round {
                let i = recovery_events[ri].1 as usize;
                ri += 1;
                if sticky[i] == Status::Running {
                    running += 1;
                }
                wake(&mut stamp, &mut frontier, i, round);
            }
        }
        let stepping_all = !active;
        let mut all_done = true;
        let mut progressed = false;
        let mut violation: Option<(u32, u64)> = None;

        let sweep = if stepping_all {
            Sweep::All
        } else if frontier.len() * 4 >= local_n {
            for &i in &frontier {
                in_cur[i as usize] = true;
            }
            Sweep::Dense
        } else {
            frontier.sort_unstable();
            Sweep::Sparse
        };
        let count = match sweep {
            Sweep::All | Sweep::Dense => local_n,
            Sweep::Sparse => frontier.len(),
        };
        for s in 0..count {
            let i = match sweep {
                Sweep::All => s,
                Sweep::Sparse => frontier[s] as usize,
                Sweep::Dense => {
                    if !in_cur[s] {
                        continue;
                    }
                    in_cur[s] = false;
                    s
                }
            };
            let v = start + i;
            if let Some(p) = plane {
                if p.is_crashed(v, round) {
                    // Crashed node: not stepped, sends nothing, votes
                    // Done implicitly (see `faults` module docs). Its
                    // crashed node-rounds are counted analytically at
                    // termination.
                    continue;
                }
            }
            ctxs[i].round = round;
            cur[i].finalize();
            out.reset(graph.degree(v as u32));
            metrics.stepped_nodes += 1;
            let status = protocol.round(&mut states[i], &ctxs[i], &mut rngs[i], &cur[i], &mut out);
            cur[i].clear();
            all_done &= status == Status::Done;
            if comm && status != sticky[i] {
                match status {
                    Status::Done => running -= 1,
                    Status::Running => running += 1,
                }
                sticky[i] = status;
                progressed = true;
            }
            if active {
                heap_round[i] = u64::MAX; // cancel any stale At request
                match protocol.next_wake(&states[i], &ctxs[i], status) {
                    Wake::At(t) if t > round + 1 => {
                        heap_round[i] = t;
                        heap.push((Reverse(t), i as u32));
                    }
                    Wake::Next | Wake::At(_) => {
                        wake(&mut stamp, &mut next_frontier, i, round + 1);
                    }
                    Wake::Message => {}
                }
            }
            assert!(
                comm || out.is_empty(),
                "protocol declared sync_period {period} but node {v} sent in silent round {round}"
            );
            for (port, msg) in out.drain() {
                progressed = true;
                let bits = msg.bits();
                metrics.record_message(bits, budget);
                if config.strict_bandwidth && bits > budget && violation.is_none() {
                    // First violation in local node order; the exchange
                    // min-merges across shards to the globally first.
                    violation = Some((v as u32, bits));
                }
                let copies = match plane.map_or(Fate::Deliver, |p| p.fate(round, v as u32, port)) {
                    Fate::Drop => {
                        metrics.faults_dropped += 1;
                        0
                    }
                    Fate::Deliver => 1,
                    Fate::Duplicate => {
                        metrics.faults_duplicated += 1;
                        2
                    }
                };
                if copies == 0 {
                    continue;
                }
                let dest = graph.neighbors(v as u32)[port as usize] as usize;
                // Delivery lands at round + 1; a receiver crashed then
                // loses the message (and any duplicate of it). Charged
                // at the sender — the plane is shared knowledge.
                if plane.is_some_and(|p| p.is_crashed(dest, round + 1)) {
                    metrics.crash_drops += 1;
                    continue;
                }
                let arrival = net.reverse_ports_of(v as u32)[port as usize];
                if local.contains(&dest) {
                    let li = dest - start;
                    if copies == 2 {
                        next[li].push(arrival, msg.clone());
                    }
                    next[li].push(arrival, msg);
                    if active {
                        // Message arrivals always wake their destination.
                        wake(&mut stamp, &mut next_frontier, li, round + 1);
                    }
                } else {
                    if copies == 2 {
                        transport.stage(dest as u32, arrival, msg.clone());
                    }
                    transport.stage(dest as u32, arrival, msg);
                }
            }
        }
        if progressed {
            last_progress = round;
        }
        metrics.rounds = round + 1;

        if !comm {
            // Silent round: no messages in flight anywhere, so just
            // rotate buffers locally and move on — no staging, no
            // exchange. Stepped nodes cleared their inboxes at their
            // step and parked ones hold empty inboxes, so the swap alone
            // readies both buffers.
            std::mem::swap(&mut cur, &mut next);
            if active {
                std::mem::swap(&mut frontier, &mut next_frontier);
                next_frontier.clear();
            }
            continue;
        }

        // Project this shard's running count at round + 1 by peeking the
        // event cursors without advancing them — the top of round + 1
        // will consume the same events for real. A zero *merged*
        // projection is the only way every shard can latch the crash
        // probe before stepping round + 1. (`active` under crashes
        // forces period == 1, so every round passes here.)
        let mut proj = 0;
        if !stepping_all && has_crashes {
            proj = running;
            let mut cj = ci;
            while cj < crash_events.len() && crash_events[cj].0 == round + 1 {
                let i = crash_events[cj].1 as usize;
                cj += 1;
                if sticky[i] == Status::Running {
                    proj -= 1;
                }
            }
            let mut rj = ri;
            while rj < recovery_events.len() && recovery_events[rj].0 == round + 1 {
                let i = recovery_events[rj].1 as usize;
                rj += 1;
                if sticky[i] == Status::Running {
                    proj += 1;
                }
            }
        }

        // The barrier: publish, deliver inbound (arrivals wake their
        // destinations — this is where peer shards' wake lists merge
        // into the local frontier), and merge the flags.
        let merged = transport.exchange(
            RoundFlags {
                all_done,
                running,
                proj_running: proj,
                violation,
            },
            &mut |dest, port, msg| {
                let li = dest as usize - start;
                next[li].push(port, msg);
                if active {
                    wake(&mut stamp, &mut next_frontier, li, round + 1);
                }
            },
        );
        std::mem::swap(&mut cur, &mut next);
        if active {
            std::mem::swap(&mut frontier, &mut next_frontier);
            next_frontier.clear();
        }
        if let Some((_, bits)) = merged.violation {
            // Globally-first violating message: lowest node index across
            // shards this round — the message a single index-ordered
            // sweep would have aborted at. Post-exchange, so every shard
            // leaves the barrier protocol cleanly with this same error.
            return Err(SimError::Bandwidth {
                round,
                bits,
                limit: budget,
            });
        }
        if if stepping_all {
            merged.all_done
        } else {
            // Zero sticky-Running votes globally ⇔ the always-step
            // reference would see unanimity.
            merged.running == 0
        } {
            terminated = true;
            break;
        }
        // A zero projected running count for round + 1 can only come
        // from crash events there: a crash is about to remove the last
        // Running vote, after which a parked node's sticky vote may
        // disagree with what it would vote in any given round (the
        // contract only pins votes at rounds where unanimity is
        // otherwise possible). Latch a probe — step every node every
        // round with the classic unanimity check, permanently — in
        // lockstep across shards.
        if !stepping_all && has_crashes && merged.proj_running == 0 {
            active = false;
        }
    }
    if terminated {
        // Crashed node-rounds, analytically: the engine never scans
        // crashed nodes, so count each local crash window's overlap with
        // the rounds actually executed (every shard broke at the same
        // round, so `metrics.rounds` is the global count here).
        if let Some(p) = plane {
            let r = metrics.rounds;
            for i in 0..local_n {
                if let Some((s, e)) = p.crash_window(start + i) {
                    metrics.crashed_rounds += e.min(r) - s.min(r);
                }
            }
        }
        return Ok(metrics);
    }
    // Live nodes: still voting Running per their latest (sticky)
    // communication-round vote, excluding nodes the plane had crashed
    // when the limit hit — crashed nodes vote Done implicitly and must
    // not be reported as live work.
    let last = config.max_rounds.saturating_sub(1);
    let live = (0..local_n)
        .filter(|&i| {
            sticky[i] == Status::Running && !plane.is_some_and(|p| p.is_crashed(start + i, last))
        })
        .count() as u64;
    let (live_nodes, last_progress_round) = transport.watchdog(live, last_progress);
    Err(SimError::RoundLimitExceeded {
        limit: config.max_rounds,
        phase: config.phase_label.clone(),
        live_nodes,
        last_progress_round,
    })
}

/// Shared flag slots of the in-process parallel transport, rotated over
/// three sync epochs with the same discipline as the mailbox parities:
/// written in phase A (before the barrier), read in phase B (after), and
/// reset by shard 0 two syncs later — the earliest point at which the
/// barrier ordering proves no reader or writer can still touch the slot.
/// (An unrotated slot would let a shard observe a value published one
/// sync in the future and break early, deserting its peers at the next
/// barrier.)
pub(crate) struct SharedFlags {
    /// AND of `all_done`: initialized `true`, cleared by any shard whose
    /// local AND is false.
    done: [AtomicBool; 3],
    /// Sum of sticky-Running counts.
    running: [AtomicU64; 3],
    /// Sum of next-round running projections.
    proj: [AtomicU64; 3],
    /// Min-by-node strict-bandwidth violation. A mutex, not an atomic:
    /// touched only in strict mode, where violations abort the run.
    violation: [Mutex<Option<(u32, u64)>>; 3],
    /// Round-limit diagnostics, written once per shard on that path.
    live_total: AtomicU64,
    progress_max: AtomicU64,
}

impl SharedFlags {
    pub(crate) fn new() -> Self {
        SharedFlags {
            done: [
                AtomicBool::new(true),
                AtomicBool::new(true),
                AtomicBool::new(true),
            ],
            running: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            proj: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            violation: [Mutex::new(None), Mutex::new(None), Mutex::new(None)],
            live_total: AtomicU64::new(0),
            progress_max: AtomicU64::new(0),
        }
    }
}

/// One staged cross-shard message: destination node index, arrival port,
/// payload.
type Staged<M> = (u32, Port, M);

/// One direction of one shard pair: two parity buffers, each with the
/// epoch stamp of its most recent non-empty publish.
///
/// The stamp is per *parity buffer*, not per cell: a consumer's phase B
/// of sync `k` runs concurrently with the producer's phase A of sync
/// `k + 1`, so a shared stamp could be overwritten (to `k + 2`) before
/// the consumer compares it against `k + 1` — silently skipping a full
/// batch.
pub(crate) struct MailCell<M> {
    bufs: [Mutex<Vec<Staged<M>>>; 2],
    epochs: [AtomicU64; 2],
}

impl<M> MailCell<M> {
    pub(crate) fn new() -> Self {
        MailCell {
            bufs: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            epochs: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

/// The in-process parallel transport: one worker thread per shard,
/// parity-double-buffered mailbox cells for the batches, a spin barrier
/// as the sync point, and epoch-rotated [`SharedFlags`] for the control
/// word (see `parallel.rs` for the single-barrier protocol argument).
pub(crate) struct MailboxTransport<'a, M> {
    shard: usize,
    threads: usize,
    chunk: usize,
    strict: bool,
    /// Completed synchronizations; drives the cell parity and slot
    /// rotation. Equals the round number while `sync_period == 1`.
    sync: u64,
    /// Private outgoing batch per destination shard, reused (and
    /// capacity-recycled via the publish swap) every sync.
    out_bufs: Vec<Vec<Staged<M>>>,
    mailboxes: &'a [Vec<MailCell<M>>],
    barrier: &'a SpinBarrier,
    flags: &'a SharedFlags,
}

impl<'a, M> MailboxTransport<'a, M> {
    pub(crate) fn new(
        shard: usize,
        threads: usize,
        chunk: usize,
        strict: bool,
        mailboxes: &'a [Vec<MailCell<M>>],
        barrier: &'a SpinBarrier,
        flags: &'a SharedFlags,
    ) -> Self {
        MailboxTransport {
            shard,
            threads,
            chunk,
            strict,
            sync: 0,
            out_bufs: (0..threads).map(|_| Vec::new()).collect(),
            mailboxes,
            barrier,
            flags,
        }
    }
}

impl<M> Transport<M> for MailboxTransport<'_, M> {
    fn stage(&mut self, dest: u32, port: Port, msg: M) {
        let ds = (dest as usize / self.chunk).min(self.threads - 1);
        debug_assert_ne!(ds, self.shard, "local delivery routed through stage");
        self.out_bufs[ds].push((dest, port, msg));
    }

    fn exchange(&mut self, local: RoundFlags, deliver: &mut dyn FnMut(u32, Port, M)) -> RoundFlags {
        let parity = (self.sync % 2) as usize;
        let slot = (self.sync % 3) as usize;
        // ---- Phase A: publish this sync's batches — swap each non-empty
        // private buffer into its parity cell (taking back the buffer
        // drained two syncs ago) and stamp the cell's epoch so consumers
        // can skip empty cells with one atomic load — then the flags.
        for (ds, buf) in self.out_bufs.iter_mut().enumerate() {
            if ds != self.shard && !buf.is_empty() {
                let cell = &self.mailboxes[self.shard][ds];
                {
                    let mut cell_buf = cell.bufs[parity].lock().expect("no poisoned lock");
                    debug_assert!(cell_buf.is_empty(), "cell drained two syncs ago");
                    std::mem::swap(&mut *cell_buf, buf);
                }
                cell.epochs[parity].store(self.sync + 1, Ordering::SeqCst);
            }
        }
        if !local.all_done {
            self.flags.done[slot].store(false, Ordering::SeqCst);
        }
        self.flags.running[slot].fetch_add(local.running, Ordering::SeqCst);
        self.flags.proj[slot].fetch_add(local.proj_running, Ordering::SeqCst);
        if let Some(v) = local.violation {
            let mut g = self.flags.violation[slot].lock().expect("no poisoned lock");
            if g.is_none_or(|cur| v.0 < cur.0) {
                *g = Some(v);
            }
        }

        self.barrier.wait();

        // ---- Phase B: drain the inbound column, read the merged flags.
        for row in self.mailboxes {
            let cell = &row[self.shard];
            if cell.epochs[parity].load(Ordering::SeqCst) == self.sync + 1 {
                let mut cell_buf = cell.bufs[parity].lock().expect("no poisoned lock");
                for (dest, port, msg) in cell_buf.drain(..) {
                    deliver(dest, port, msg);
                }
            }
        }
        let merged = RoundFlags {
            all_done: self.flags.done[slot].load(Ordering::SeqCst),
            running: self.flags.running[slot].load(Ordering::SeqCst),
            proj_running: self.flags.proj[slot].load(Ordering::SeqCst),
            violation: if self.strict {
                *self.flags.violation[slot].lock().expect("no poisoned lock")
            } else {
                None
            },
        };
        if self.shard == 0 {
            // Reset the slots for sync + 2: their last readers finished
            // in phase B of sync - 1, which happens-before this phase B;
            // their next writers start in phase A of sync + 2, which
            // happens-after (see `parallel.rs`).
            let reset = ((self.sync + 2) % 3) as usize;
            self.flags.done[reset].store(true, Ordering::SeqCst);
            self.flags.running[reset].store(0, Ordering::SeqCst);
            self.flags.proj[reset].store(0, Ordering::SeqCst);
            if self.strict {
                *self.flags.violation[reset]
                    .lock()
                    .expect("no poisoned lock") = None;
            }
        }
        self.sync += 1;
        merged
    }

    fn watchdog(&mut self, live: u64, last_progress: u64) -> (u64, u64) {
        // Every shard reaches the round limit together (no shard saw a
        // terminate/abort flag — those are merged, hence unanimous), so
        // one extra barrier separates all contributions from all reads.
        self.flags.live_total.fetch_add(live, Ordering::SeqCst);
        self.flags
            .progress_max
            .fetch_max(last_progress, Ordering::SeqCst);
        self.barrier.wait();
        (
            self.flags.live_total.load(Ordering::SeqCst),
            self.flags.progress_max.load(Ordering::SeqCst),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_flags_merge_is_and_sum_min() {
        let mut a = RoundFlags {
            all_done: true,
            running: 3,
            proj_running: 1,
            violation: Some((7, 100)),
        };
        a.absorb(&RoundFlags {
            all_done: false,
            running: 2,
            proj_running: 0,
            violation: Some((4, 200)),
        });
        assert_eq!(
            a,
            RoundFlags {
                all_done: false,
                running: 5,
                proj_running: 1,
                violation: Some((4, 200)),
            }
        );
        // None never displaces a violation; ties keep the first.
        a.absorb(&RoundFlags {
            all_done: true,
            running: 0,
            proj_running: 0,
            violation: None,
        });
        assert_eq!(a.violation, Some((4, 200)));
        a.absorb(&RoundFlags {
            all_done: true,
            running: 0,
            proj_running: 0,
            violation: Some((4, 999)),
        });
        assert_eq!(a.violation, Some((4, 200)));
    }
}
