//! Deterministic single-threaded runtime.

use super::{node_rng, wake, RunResult, SimError, Sweep};
use crate::faults::{Fate, FaultPlane};
use crate::{
    Inbox, Message, Metrics, NetTables, Outbox, Protocol, Scheduling, SimConfig, Status, Wake,
};
use graphs::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Single-threaded engine: woken nodes are stepped in index order each
/// round (see the [module docs](crate::runtime) for the active-set
/// scheduling contract; [`Scheduling::AlwaysStep`] forces the classic
/// every-node schedule).
///
/// This is the reference implementation; the parallel runtime is validated
/// against it. It honors the same [`Protocol::sync_period`] communication
/// schedule as the parallel engine — sends are rejected and termination
/// votes ignored in silent rounds — so a protocol declaring a period
/// behaves bit-identically on both engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialRuntime;

impl SequentialRuntime {
    /// Runs `protocol` to unanimous [`Status::Done`], building the network
    /// tables on the fly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    pub fn execute<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
    ) -> Result<RunResult<P::State>, SimError> {
        self.execute_with(graph, protocol, config, &NetTables::build(graph, config))
    }

    /// [`SequentialRuntime::execute`] with prebuilt [`NetTables`] — the
    /// allocation-light path multi-phase drivers use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    ///
    /// # Panics
    ///
    /// Panics if `net` was not built for `graph` (node or edge count
    /// mismatch — proceeding would mis-route messages and return silently
    /// wrong results), or if the protocol stages a message in a round its
    /// declared [`Protocol::sync_period`] marks silent — a protocol bug,
    /// like a duplicate send on a port.
    pub fn execute_with<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
        net: &Arc<NetTables>,
    ) -> Result<RunResult<P::State>, SimError> {
        assert!(net.matches(graph), "NetTables built for a different graph");
        let n = graph.n();
        let period = protocol.sync_period().max(1);
        // A protocol declaring sync_period `p` communicates once per `p`
        // rounds, so a communication-round message may aggregate the `p`
        // rounds' worth of per-edge bandwidth it stands in for (see
        // `Protocol::sync_period`). For the default `p = 1` this is the
        // classic per-round budget.
        let budget = config.bandwidth_bits(n).saturating_mul(period);
        let mut metrics = Metrics {
            bandwidth_bits: budget,
            ..Metrics::default()
        };
        let mut ctxs = net.contexts();
        let mut rngs: Vec<_> = (0..n as u32)
            .map(|v| node_rng(config.rng_seed(), v))
            .collect();
        let mut states: Vec<P::State> = ctxs
            .iter()
            .zip(rngs.iter_mut())
            .map(|(c, r)| protocol.init(c, r))
            .collect();

        // A duplicating plane can deliver two copies per port in one round;
        // size inboxes for it so the steady state stays allocation-free.
        let dups = config
            .faults
            .as_ref()
            .is_some_and(|f| f.dup_per_million > 0);
        let mut cur: Vec<Inbox<P::Msg>> = (0..n)
            .map(|v| {
                Inbox::with_capacity(Inbox::<P::Msg>::round_capacity(
                    graph.degree(v as u32),
                    dups,
                ))
            })
            .collect();
        let mut next: Vec<Inbox<P::Msg>> = (0..n)
            .map(|v| {
                Inbox::with_capacity(Inbox::<P::Msg>::round_capacity(
                    graph.degree(v as u32),
                    dups,
                ))
            })
            .collect();
        let mut out: Outbox<P::Msg> = Outbox::new(0);

        if n == 0 {
            return Ok(RunResult { states, metrics });
        }

        let plane = config
            .faults
            .as_ref()
            .map(|f| FaultPlane::new(f, config.rng_salt, n));
        let has_crashes = plane.as_ref().is_some_and(FaultPlane::has_crashes);
        // Active-set scheduling. Parking is disabled when crashes meet
        // round batching: a crash landing in a silent window could flip the
        // unanimity outcome between rounds the engines never compare votes
        // at, and no in-repo workload combines the two (see module docs).
        let mut active = config.scheduling == Scheduling::ActiveSet && !(has_crashes && period > 1);

        // Sticky votes: each node's latest communication-round vote. While
        // a node is parked its sticky vote stands in for it (the parking
        // contract on `Protocol::next_wake` makes that exact), so
        // `running` — non-crashed nodes whose sticky vote is Running — is
        // zero exactly when the always-step reference would see unanimity.
        let mut sticky: Vec<Status> = vec![Status::Running; n];
        let mut running: u64 = n as u64;
        let mut last_progress: u64 = 0;

        // Frontier machinery (untouched when `!active`): `frontier` holds
        // this round's wakes, `next_frontier` the next round's, `stamp`
        // deduplicates insertions, `heap` carries `Wake::At` requests with
        // `heap_round[v]` = the latest requested target (stale entries are
        // skipped on pop), and the crash/recovery event lists feed the
        // plane's edges into the running count and the wake queue.
        let mut frontier: Vec<u32> = Vec::new();
        let mut next_frontier: Vec<u32> = Vec::new();
        let mut stamp: Vec<u64> = Vec::new();
        let mut in_cur: Vec<bool> = Vec::new();
        let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
        let mut heap_round: Vec<u64> = Vec::new();
        let mut crash_events: Vec<(u64, u32)> = Vec::new();
        let mut recovery_events: Vec<(u64, u32)> = Vec::new();
        let (mut ci, mut ri) = (0usize, 0usize);
        if active {
            frontier = (0..n as u32).collect(); // round 0 wakes everyone
            next_frontier = Vec::with_capacity(n);
            stamp = vec![0; n];
            in_cur = vec![false; n];
            heap_round = vec![u64::MAX; n];
            if let Some(p) = &plane {
                for v in 0..n {
                    if let Some((s, e)) = p.crash_window(v) {
                        crash_events.push((s, v as u32));
                        if e != u64::MAX {
                            recovery_events.push((e, v as u32));
                        }
                    }
                }
                crash_events.sort_unstable();
                recovery_events.sort_unstable();
            }
        }

        let mut terminated = false;
        for round in 0..config.max_rounds {
            // Communication rounds carry messages and termination votes;
            // the `period - 1` rounds in between are declared-silent local
            // computation (see `Protocol::sync_period`).
            let comm = round.is_multiple_of(period);
            if active {
                // Assemble this round's frontier: last round's wakes are
                // already in `frontier`; add matured `Wake::At` requests
                // and fault-plane crash/recovery edges.
                while let Some(&(Reverse(t), v)) = heap.peek() {
                    if t > round {
                        break;
                    }
                    heap.pop();
                    if t == round && heap_round[v as usize] == t {
                        heap_round[v as usize] = u64::MAX;
                        wake(&mut stamp, &mut frontier, v as usize, round);
                    }
                }
                while ci < crash_events.len() && crash_events[ci].0 == round {
                    let v = crash_events[ci].1 as usize;
                    ci += 1;
                    if sticky[v] == Status::Running {
                        running -= 1;
                    }
                }
                while ri < recovery_events.len() && recovery_events[ri].0 == round {
                    let v = recovery_events[ri].1 as usize;
                    ri += 1;
                    if sticky[v] == Status::Running {
                        running += 1;
                    }
                    wake(&mut stamp, &mut frontier, v, round);
                }
                // A crash just removed the last sticky Running vote. From
                // here on a parked node's sticky vote may disagree with
                // what it would vote in any given round (the contract only
                // pins votes at rounds where unanimity is otherwise
                // possible), so latch a probe: step every node every round
                // and use the classic unanimity check, permanently.
                if running == 0 {
                    active = false;
                }
            }
            let stepping_all = !active;
            let mut all_done = true;
            let mut progressed = false;

            let sweep = if stepping_all {
                Sweep::All
            } else if frontier.len() * 4 >= n {
                for &v in &frontier {
                    in_cur[v as usize] = true;
                }
                Sweep::Dense
            } else {
                frontier.sort_unstable();
                Sweep::Sparse
            };
            let count = match sweep {
                Sweep::All | Sweep::Dense => n,
                Sweep::Sparse => frontier.len(),
            };
            for i in 0..count {
                let v = match sweep {
                    Sweep::All => i,
                    Sweep::Sparse => frontier[i] as usize,
                    Sweep::Dense => {
                        if !in_cur[i] {
                            continue;
                        }
                        in_cur[i] = false;
                        i
                    }
                };
                if let Some(p) = &plane {
                    if p.is_crashed(v, round) {
                        // Crashed node: not stepped, sends nothing, votes
                        // Done implicitly (see `faults` module docs). Its
                        // crashed node-rounds are counted analytically at
                        // termination.
                        continue;
                    }
                }
                ctxs[v].round = round;
                cur[v].finalize();
                out.reset(graph.degree(v as u32));
                metrics.stepped_nodes += 1;
                let status =
                    protocol.round(&mut states[v], &ctxs[v], &mut rngs[v], &cur[v], &mut out);
                cur[v].clear();
                all_done &= status == Status::Done;
                if comm && status != sticky[v] {
                    match status {
                        Status::Done => running -= 1,
                        Status::Running => running += 1,
                    }
                    sticky[v] = status;
                    progressed = true;
                }
                if active {
                    heap_round[v] = u64::MAX; // cancel any stale At request
                    match protocol.next_wake(&states[v], &ctxs[v], status) {
                        Wake::At(t) if t > round + 1 => {
                            heap_round[v] = t;
                            heap.push((Reverse(t), v as u32));
                        }
                        Wake::Next | Wake::At(_) => {
                            wake(&mut stamp, &mut next_frontier, v, round + 1);
                        }
                        Wake::Message => {}
                    }
                }
                assert!(
                    comm || out.is_empty(),
                    "protocol declared sync_period {period} but node {v} sent in silent round {round}"
                );
                for (port, msg) in out.drain() {
                    progressed = true;
                    let bits = msg.bits();
                    metrics.record_message(bits, budget);
                    if config.strict_bandwidth && bits > budget {
                        return Err(SimError::Bandwidth {
                            round,
                            bits,
                            limit: budget,
                        });
                    }
                    let dest = graph.neighbors(v as u32)[port as usize] as usize;
                    let arrival = net.reverse_ports_of(v as u32)[port as usize];
                    let copies = match plane
                        .as_ref()
                        .map_or(Fate::Deliver, |p| p.fate(round, v as u32, port))
                    {
                        Fate::Drop => {
                            metrics.faults_dropped += 1;
                            0
                        }
                        Fate::Deliver => 1,
                        Fate::Duplicate => {
                            metrics.faults_duplicated += 1;
                            2
                        }
                    };
                    if copies == 0 {
                        continue;
                    }
                    // Delivery lands at round + 1; a receiver crashed then
                    // loses the message (and any duplicate of it).
                    if plane
                        .as_ref()
                        .is_some_and(|p| p.is_crashed(dest, round + 1))
                    {
                        metrics.crash_drops += 1;
                        continue;
                    }
                    if copies == 2 {
                        next[dest].push(arrival, msg.clone());
                    }
                    next[dest].push(arrival, msg);
                    if active {
                        // Message arrivals always wake their destination.
                        wake(&mut stamp, &mut next_frontier, dest, round + 1);
                    }
                }
            }
            if progressed {
                last_progress = round;
            }
            metrics.rounds = round + 1;
            // Every stepped node cleared its inbox right after its step and
            // parked nodes hold empty inboxes (every delivery wakes its
            // destination; crashed-destination deliveries are dropped at
            // staging), so the swap alone readies both buffers — no O(n)
            // clear/finalize sweeps.
            std::mem::swap(&mut cur, &mut next);
            if active {
                std::mem::swap(&mut frontier, &mut next_frontier);
                next_frontier.clear();
            }
            if comm && if stepping_all { all_done } else { running == 0 } {
                terminated = true;
                break;
            }
        }
        if terminated {
            // Crashed node-rounds, analytically: the engine never scans
            // crashed nodes, so count each crash window's overlap with the
            // rounds actually executed.
            if let Some(p) = &plane {
                let r = metrics.rounds;
                for v in 0..n {
                    if let Some((s, e)) = p.crash_window(v) {
                        metrics.crashed_rounds += e.min(r) - s.min(r);
                    }
                }
            }
            return Ok(RunResult { states, metrics });
        }
        // Live nodes: still voting Running per their latest (sticky)
        // communication-round vote, excluding nodes the plane had crashed
        // when the limit hit — crashed nodes vote Done implicitly and must
        // not be reported as live work.
        let last = config.max_rounds.saturating_sub(1);
        let live_nodes = (0..n)
            .filter(|&v| {
                sticky[v] == Status::Running
                    && !plane.as_ref().is_some_and(|p| p.is_crashed(v, last))
            })
            .count() as u64;
        Err(SimError::RoundLimitExceeded {
            limit: config.max_rounds,
            phase: config.phase_label.clone(),
            live_nodes,
            last_progress_round: last_progress,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeCtx, NodeRng};
    use graphs::gen;

    /// Flood the maximum identifier: classic O(diameter) protocol.
    struct MaxFlood;

    #[derive(Debug, Clone)]
    struct FloodState {
        best: u64,
        changed: bool,
    }

    impl Protocol for MaxFlood {
        type State = FloodState;
        type Msg = u64;
        fn init(&self, ctx: &NodeCtx, _rng: &mut NodeRng) -> FloodState {
            FloodState {
                best: ctx.ident,
                changed: true,
            }
        }
        fn round(
            &self,
            st: &mut FloodState,
            _ctx: &NodeCtx,
            _rng: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(_, id) in inbox {
                if id > st.best {
                    st.best = id;
                    st.changed = true;
                }
            }
            if st.changed {
                st.changed = false;
                out.broadcast(st.best);
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn flood_converges_to_global_max_on_path() {
        let g = gen::path(16);
        // Sequential ids put the max identifier at an endpoint, so it must
        // travel the full diameter (permuted ids could place it centrally).
        let cfg = SimConfig {
            ids: crate::IdAssignment::Sequential,
            ..SimConfig::default()
        };
        let res = SequentialRuntime.execute(&g, &MaxFlood, &cfg).unwrap();
        assert!(res.states.iter().all(|s| s.best == 15));
        // The max must travel the diameter; rounds is Θ(n) on a path.
        assert!(res.metrics.rounds >= 15, "rounds = {}", res.metrics.rounds);
        assert!(res.metrics.is_congest_compliant());
    }

    #[test]
    fn round_limit_is_enforced() {
        /// A protocol that never terminates.
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let g = gen::path(3);
        let err = SequentialRuntime
            .execute(
                &g,
                &Forever,
                &SimConfig::default()
                    .with_max_rounds(10)
                    .with_phase_label("forever"),
            )
            .unwrap_err();
        // Forever never sends and never changes its vote after round 0:
        // all 3 nodes live, no progress ever.
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 10,
                phase: "forever".into(),
                live_nodes: 3,
                last_progress_round: 0,
            }
        );
    }

    #[test]
    fn strict_bandwidth_aborts() {
        /// Sends one absurdly large message.
        struct Fat;
        #[derive(Debug, Clone)]
        struct Huge;
        impl Message for Huge {
            fn bits(&self) -> u64 {
                1 << 20
            }
        }
        impl Protocol for Fat {
            type State = ();
            type Msg = Huge;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                ctx: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<Huge>,
                out: &mut Outbox<Huge>,
            ) -> Status {
                if ctx.round == 0 {
                    out.broadcast(Huge);
                    Status::Running
                } else {
                    Status::Done
                }
            }
        }
        let g = gen::path(3);
        let err = SequentialRuntime
            .execute(&g, &Fat, &SimConfig::default().strict())
            .unwrap_err();
        match err {
            SimError::Bandwidth { bits, .. } => assert_eq!(bits, 1 << 20),
            other => panic!("expected bandwidth error, got {other:?}"),
        }
        // Non-strict mode records instead of aborting.
        let res = SequentialRuntime
            .execute(&g, &Fat, &SimConfig::default())
            .unwrap();
        assert_eq!(res.metrics.bandwidth_violations, 4); // 2 inner edges × 2 endpoints... path(3) has 2 edges = 4 directed
        assert!(!res.metrics.is_congest_compliant());
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = gen::empty(0);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        assert_eq!(res.metrics.rounds, 0);
        assert!(res.states.is_empty());
    }

    #[test]
    fn isolated_nodes_run_and_finish() {
        let g = gen::empty(5);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        // Every node keeps its own ident (no one to talk to).
        let mut bests: Vec<u64> = res.states.iter().map(|s| s.best).collect();
        bests.sort_unstable();
        assert_eq!(bests, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn message_metrics_counted() {
        let g = gen::cycle(4);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        assert!(res.metrics.messages > 0);
        assert!(res.metrics.total_bits >= res.metrics.messages);
        assert!(res.metrics.max_message_bits <= 3); // idents 0..3 fit in ≤2 bits, +min 1
    }

    /// A k-periodic protocol: pulse a counter to all neighbors at
    /// communication rounds, accumulate locally in between.
    struct Pulse {
        period: u64,
        pulses: u64,
    }

    impl Protocol for Pulse {
        type State = u64;
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> u64 {
            0
        }
        fn round(
            &self,
            st: &mut u64,
            ctx: &NodeCtx,
            _: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(p, x) in inbox {
                *st = st.wrapping_add(x ^ u64::from(p));
            }
            let pulse = ctx.round / self.period;
            if ctx.round.is_multiple_of(self.period) && pulse < self.pulses {
                out.broadcast(ctx.ident + pulse);
                Status::Running
            } else if pulse < self.pulses {
                Status::Running
            } else {
                Status::Done
            }
        }
        fn sync_period(&self) -> u64 {
            self.period
        }
    }

    #[test]
    fn periodic_protocol_terminates_at_comm_round() {
        let g = gen::cycle(8);
        let p = Pulse {
            period: 3,
            pulses: 4,
        };
        let res = SequentialRuntime
            .execute(&g, &p, &SimConfig::seeded(2))
            .unwrap();
        // Done votes only count at rounds ≡ 0 (mod 3): the first unanimous
        // one is round 12 (pulse index 4), so 13 rounds execute.
        assert_eq!(res.metrics.rounds, 13);
        // 4 pulses × 8 nodes × degree 2.
        assert_eq!(res.metrics.messages, 64);
    }

    /// Parking exercise: the hub parks to round 2 and pings; the leaves —
    /// parked on `Message` — wake only for the ping.
    struct WakeOnPing;

    impl Protocol for WakeOnPing {
        type State = ();
        type Msg = u32;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
        fn round(
            &self,
            _: &mut (),
            ctx: &NodeCtx,
            _: &mut NodeRng,
            inbox: &Inbox<u32>,
            out: &mut Outbox<u32>,
        ) -> Status {
            if ctx.degree() > 1 {
                // Hub: ping everyone at round 2, then done.
                if ctx.round == 2 {
                    out.broadcast(7);
                }
                if ctx.round >= 2 {
                    Status::Done
                } else {
                    Status::Running
                }
            } else if inbox.is_empty() {
                Status::Running
            } else {
                Status::Done
            }
        }
        fn next_wake(&self, _: &(), ctx: &NodeCtx, status: Status) -> Wake {
            if status == Status::Done {
                Wake::Message
            } else if ctx.degree() > 1 {
                Wake::At(2)
            } else {
                Wake::Message
            }
        }
    }

    #[test]
    fn parking_steps_only_the_frontier() {
        let g = gen::star(4); // hub + 4 leaves
        let active = SequentialRuntime
            .execute(&g, &WakeOnPing, &SimConfig::default())
            .unwrap();
        let reference = SequentialRuntime
            .execute(
                &g,
                &WakeOnPing,
                &SimConfig {
                    scheduling: Scheduling::AlwaysStep,
                    ..SimConfig::default()
                },
            )
            .unwrap();
        // Identical observables: terminate at round 3 (leaves' Done lands
        // one round after the ping), one ping per leaf.
        assert_eq!(active.metrics.rounds, 4);
        assert_eq!(reference.metrics.rounds, 4);
        assert_eq!(active.metrics.messages, 4);
        assert_eq!(reference.metrics.messages, 4);
        // Reference steps all 5 nodes all 4 rounds; active steps round 0
        // (everyone), round 2 (hub wake), round 3 (the pinged leaves).
        assert_eq!(reference.metrics.stepped_nodes, 20);
        assert_eq!(active.metrics.stepped_nodes, 10);
    }

    #[test]
    fn round_limit_live_nodes_excludes_crashed() {
        /// A protocol that never terminates (and never sends).
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let n = 40;
        let g = gen::path(n);
        let fc = crate::FaultConfig::seeded(5).with_crashes(400_000, 6, u64::MAX);
        let cfg = SimConfig::default()
            .with_faults(fc.clone())
            .with_max_rounds(10);
        // Nodes the plane has down when the limit hits vote Done implicitly
        // and must not be reported as live work.
        let plane = FaultPlane::new(&fc, cfg.rng_salt, n);
        let crashed = (0..n).filter(|&v| plane.is_crashed(v, 9)).count();
        assert!(crashed > 0, "plane must crash someone for this test");
        let err = SequentialRuntime.execute(&g, &Forever, &cfg).unwrap_err();
        let expect = SimError::RoundLimitExceeded {
            limit: 10,
            phase: String::new(),
            live_nodes: (n - crashed) as u64,
            last_progress_round: 0,
        };
        assert_eq!(err, expect);
        // Engine-identical diagnostic.
        let perr = crate::runtime::ParallelRuntime::new(4)
            .execute(&g, &Forever, &cfg)
            .unwrap_err();
        assert_eq!(perr, expect);
    }

    #[test]
    #[should_panic(expected = "silent round")]
    fn silent_round_send_is_rejected() {
        /// Claims period 2 but sends every round.
        struct Liar;
        impl Protocol for Liar {
            type State = ();
            type Msg = u64;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<u64>,
                out: &mut Outbox<u64>,
            ) -> Status {
                out.broadcast(1);
                Status::Running
            }
            fn sync_period(&self) -> u64 {
                2
            }
        }
        let g = gen::cycle(4);
        let _ = SequentialRuntime.execute(&g, &Liar, &SimConfig::default().with_max_rounds(10));
    }
}
