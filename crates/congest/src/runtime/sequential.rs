//! Deterministic single-threaded runtime.
//!
//! The round loop itself lives in [`super::engine`]; this runtime is the
//! [`engine::LocalTransport`] instantiation — one shard owning every
//! node, no barriers, no staging. It exists as a named type because it
//! is the *reference*: every other transport is differentially tested
//! against it.

use super::engine::{self, LocalTransport, ShardWorld};
use super::{RunResult, SimError};
use crate::faults::FaultPlane;
use crate::{Metrics, NetTables, Protocol, SimConfig};
use graphs::Graph;
use std::sync::Arc;

/// Single-threaded engine: woken nodes are stepped in index order each
/// round (see the [module docs](crate::runtime) for the active-set
/// scheduling contract; [`Scheduling::AlwaysStep`](crate::Scheduling)
/// forces the classic every-node schedule).
///
/// This is the reference implementation; the parallel and netplane
/// runtimes are validated against it. All three share the round loop in
/// [`crate::runtime`]'s private `engine` module, so a protocol behaves
/// bit-identically on each — what this runtime pins down is the
/// *transport-free* observable behavior the others must reproduce.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialRuntime;

impl SequentialRuntime {
    /// Runs `protocol` to unanimous [`Status::Done`](crate::Status),
    /// building the network tables on the fly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    pub fn execute<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
    ) -> Result<RunResult<P::State>, SimError> {
        self.execute_with(graph, protocol, config, &NetTables::build(graph, config))
    }

    /// [`SequentialRuntime::execute`] with prebuilt [`NetTables`] — the
    /// allocation-light path multi-phase drivers use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    ///
    /// # Panics
    ///
    /// Panics if `net` was not built for `graph` (node or edge count
    /// mismatch — proceeding would mis-route messages and return silently
    /// wrong results), or if the protocol stages a message in a round its
    /// declared [`Protocol::sync_period`] marks silent — a protocol bug,
    /// like a duplicate send on a port.
    pub fn execute_with<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
        net: &Arc<NetTables>,
    ) -> Result<RunResult<P::State>, SimError> {
        assert!(net.matches(graph), "NetTables built for a different graph");
        let n = graph.n();
        let period = protocol.sync_period().max(1);
        let mut ctxs = net.contexts();
        let (mut rngs, mut states) = engine::init_nodes(protocol, config, &ctxs, 0);
        if n == 0 {
            return Ok(RunResult {
                states,
                metrics: Metrics {
                    bandwidth_bits: engine::round_budget(config, n, period),
                    ..Metrics::default()
                },
            });
        }
        let plane = config
            .faults
            .as_ref()
            .map(|f| FaultPlane::new(f, config.rng_salt, n));
        let metrics = engine::drive(
            graph,
            protocol,
            config,
            net,
            ShardWorld {
                start: 0,
                ctxs: &mut ctxs,
                states: &mut states,
                rngs: &mut rngs,
                plane: plane.as_ref(),
            },
            &mut LocalTransport,
        )?;
        Ok(RunResult { states, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Inbox, Message, NodeCtx, NodeRng, Outbox, Scheduling, Status, Wake};
    use graphs::gen;

    /// Flood the maximum identifier: classic O(diameter) protocol.
    struct MaxFlood;

    #[derive(Debug, Clone)]
    struct FloodState {
        best: u64,
        changed: bool,
    }

    impl Protocol for MaxFlood {
        type State = FloodState;
        type Msg = u64;
        fn init(&self, ctx: &NodeCtx, _rng: &mut NodeRng) -> FloodState {
            FloodState {
                best: ctx.ident,
                changed: true,
            }
        }
        fn round(
            &self,
            st: &mut FloodState,
            _ctx: &NodeCtx,
            _rng: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(_, id) in inbox {
                if id > st.best {
                    st.best = id;
                    st.changed = true;
                }
            }
            if st.changed {
                st.changed = false;
                out.broadcast(st.best);
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn flood_converges_to_global_max_on_path() {
        let g = gen::path(16);
        // Sequential ids put the max identifier at an endpoint, so it must
        // travel the full diameter (permuted ids could place it centrally).
        let cfg = SimConfig {
            ids: crate::IdAssignment::Sequential,
            ..SimConfig::default()
        };
        let res = SequentialRuntime.execute(&g, &MaxFlood, &cfg).unwrap();
        assert!(res.states.iter().all(|s| s.best == 15));
        // The max must travel the diameter; rounds is Θ(n) on a path.
        assert!(res.metrics.rounds >= 15, "rounds = {}", res.metrics.rounds);
        assert!(res.metrics.is_congest_compliant());
    }

    #[test]
    fn round_limit_is_enforced() {
        /// A protocol that never terminates.
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let g = gen::path(3);
        let err = SequentialRuntime
            .execute(
                &g,
                &Forever,
                &SimConfig::default()
                    .with_max_rounds(10)
                    .with_phase_label("forever"),
            )
            .unwrap_err();
        // Forever never sends and never changes its vote after round 0:
        // all 3 nodes live, no progress ever.
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 10,
                phase: "forever".into(),
                live_nodes: 3,
                last_progress_round: 0,
            }
        );
    }

    #[test]
    fn strict_bandwidth_aborts() {
        /// Sends one absurdly large message.
        struct Fat;
        #[derive(Debug, Clone)]
        struct Huge;
        impl Message for Huge {
            fn bits(&self) -> u64 {
                1 << 20
            }
        }
        impl Protocol for Fat {
            type State = ();
            type Msg = Huge;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                ctx: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<Huge>,
                out: &mut Outbox<Huge>,
            ) -> Status {
                if ctx.round == 0 {
                    out.broadcast(Huge);
                    Status::Running
                } else {
                    Status::Done
                }
            }
        }
        let g = gen::path(3);
        let err = SequentialRuntime
            .execute(&g, &Fat, &SimConfig::default().strict())
            .unwrap_err();
        match err {
            SimError::Bandwidth { bits, .. } => assert_eq!(bits, 1 << 20),
            other => panic!("expected bandwidth error, got {other:?}"),
        }
        // Non-strict mode records instead of aborting.
        let res = SequentialRuntime
            .execute(&g, &Fat, &SimConfig::default())
            .unwrap();
        assert_eq!(res.metrics.bandwidth_violations, 4); // 2 inner edges × 2 endpoints... path(3) has 2 edges = 4 directed
        assert!(!res.metrics.is_congest_compliant());
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = gen::empty(0);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        assert_eq!(res.metrics.rounds, 0);
        assert!(res.states.is_empty());
    }

    #[test]
    fn isolated_nodes_run_and_finish() {
        let g = gen::empty(5);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        // Every node keeps its own ident (no one to talk to).
        let mut bests: Vec<u64> = res.states.iter().map(|s| s.best).collect();
        bests.sort_unstable();
        assert_eq!(bests, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn message_metrics_counted() {
        let g = gen::cycle(4);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        assert!(res.metrics.messages > 0);
        assert!(res.metrics.total_bits >= res.metrics.messages);
        assert!(res.metrics.max_message_bits <= 3); // idents 0..3 fit in ≤2 bits, +min 1
    }

    /// A k-periodic protocol: pulse a counter to all neighbors at
    /// communication rounds, accumulate locally in between.
    struct Pulse {
        period: u64,
        pulses: u64,
    }

    impl Protocol for Pulse {
        type State = u64;
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> u64 {
            0
        }
        fn round(
            &self,
            st: &mut u64,
            ctx: &NodeCtx,
            _: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(p, x) in inbox {
                *st = st.wrapping_add(x ^ u64::from(p));
            }
            let pulse = ctx.round / self.period;
            if ctx.round.is_multiple_of(self.period) && pulse < self.pulses {
                out.broadcast(ctx.ident + pulse);
                Status::Running
            } else if pulse < self.pulses {
                Status::Running
            } else {
                Status::Done
            }
        }
        fn sync_period(&self) -> u64 {
            self.period
        }
    }

    #[test]
    fn periodic_protocol_terminates_at_comm_round() {
        let g = gen::cycle(8);
        let p = Pulse {
            period: 3,
            pulses: 4,
        };
        let res = SequentialRuntime
            .execute(&g, &p, &SimConfig::seeded(2))
            .unwrap();
        // Done votes only count at rounds ≡ 0 (mod 3): the first unanimous
        // one is round 12 (pulse index 4), so 13 rounds execute.
        assert_eq!(res.metrics.rounds, 13);
        // 4 pulses × 8 nodes × degree 2.
        assert_eq!(res.metrics.messages, 64);
    }

    /// Parking exercise: the hub parks to round 2 and pings; the leaves —
    /// parked on `Message` — wake only for the ping.
    struct WakeOnPing;

    impl Protocol for WakeOnPing {
        type State = ();
        type Msg = u32;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
        fn round(
            &self,
            _: &mut (),
            ctx: &NodeCtx,
            _: &mut NodeRng,
            inbox: &Inbox<u32>,
            out: &mut Outbox<u32>,
        ) -> Status {
            if ctx.degree() > 1 {
                // Hub: ping everyone at round 2, then done.
                if ctx.round == 2 {
                    out.broadcast(7);
                }
                if ctx.round >= 2 {
                    Status::Done
                } else {
                    Status::Running
                }
            } else if inbox.is_empty() {
                Status::Running
            } else {
                Status::Done
            }
        }
        fn next_wake(&self, _: &(), ctx: &NodeCtx, status: Status) -> Wake {
            if status == Status::Done {
                Wake::Message
            } else if ctx.degree() > 1 {
                Wake::At(2)
            } else {
                Wake::Message
            }
        }
    }

    #[test]
    fn parking_steps_only_the_frontier() {
        let g = gen::star(4); // hub + 4 leaves
        let active = SequentialRuntime
            .execute(&g, &WakeOnPing, &SimConfig::default())
            .unwrap();
        let reference = SequentialRuntime
            .execute(
                &g,
                &WakeOnPing,
                &SimConfig {
                    scheduling: Scheduling::AlwaysStep,
                    ..SimConfig::default()
                },
            )
            .unwrap();
        // Identical observables: terminate at round 3 (leaves' Done lands
        // one round after the ping), one ping per leaf.
        assert_eq!(active.metrics.rounds, 4);
        assert_eq!(reference.metrics.rounds, 4);
        assert_eq!(active.metrics.messages, 4);
        assert_eq!(reference.metrics.messages, 4);
        // Reference steps all 5 nodes all 4 rounds; active steps round 0
        // (everyone), round 2 (hub wake), round 3 (the pinged leaves).
        assert_eq!(reference.metrics.stepped_nodes, 20);
        assert_eq!(active.metrics.stepped_nodes, 10);
    }

    #[test]
    fn round_limit_live_nodes_excludes_crashed() {
        /// A protocol that never terminates (and never sends).
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let n = 40;
        let g = gen::path(n);
        let fc = crate::FaultConfig::seeded(5).with_crashes(400_000, 6, u64::MAX);
        let cfg = SimConfig::default()
            .with_faults(fc.clone())
            .with_max_rounds(10);
        // Nodes the plane has down when the limit hits vote Done implicitly
        // and must not be reported as live work.
        let plane = FaultPlane::new(&fc, cfg.rng_salt, n);
        let crashed = (0..n).filter(|&v| plane.is_crashed(v, 9)).count();
        assert!(crashed > 0, "plane must crash someone for this test");
        let err = SequentialRuntime.execute(&g, &Forever, &cfg).unwrap_err();
        let expect = SimError::RoundLimitExceeded {
            limit: 10,
            phase: String::new(),
            live_nodes: (n - crashed) as u64,
            last_progress_round: 0,
        };
        assert_eq!(err, expect);
        // Engine-identical diagnostic.
        let perr = crate::runtime::ParallelRuntime::new(4)
            .execute(&g, &Forever, &cfg)
            .unwrap_err();
        assert_eq!(perr, expect);
    }

    #[test]
    #[should_panic(expected = "silent round")]
    fn silent_round_send_is_rejected() {
        /// Claims period 2 but sends every round.
        struct Liar;
        impl Protocol for Liar {
            type State = ();
            type Msg = u64;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<u64>,
                out: &mut Outbox<u64>,
            ) -> Status {
                out.broadcast(1);
                Status::Running
            }
            fn sync_period(&self) -> u64 {
                2
            }
        }
        let g = gen::cycle(4);
        let _ = SequentialRuntime.execute(&g, &Liar, &SimConfig::default().with_max_rounds(10));
    }
}
