//! Deterministic single-threaded runtime.

use super::{node_rng, RunResult, SimError};
use crate::faults::{Fate, FaultPlane};
use crate::{Inbox, Message, Metrics, NetTables, Outbox, Protocol, SimConfig, Status};
use graphs::Graph;
use std::sync::Arc;

/// Single-threaded engine: nodes are stepped in index order each round.
///
/// This is the reference implementation; the parallel runtime is validated
/// against it. It honors the same [`Protocol::sync_period`] communication
/// schedule as the parallel engine — sends are rejected and termination
/// votes ignored in silent rounds — so a protocol declaring a period
/// behaves bit-identically on both engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialRuntime;

impl SequentialRuntime {
    /// Runs `protocol` to unanimous [`Status::Done`], building the network
    /// tables on the fly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    pub fn execute<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
    ) -> Result<RunResult<P::State>, SimError> {
        self.execute_with(graph, protocol, config, &NetTables::build(graph, config))
    }

    /// [`SequentialRuntime::execute`] with prebuilt [`NetTables`] — the
    /// allocation-light path multi-phase drivers use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    ///
    /// # Panics
    ///
    /// Panics if `net` was not built for `graph` (node or edge count
    /// mismatch — proceeding would mis-route messages and return silently
    /// wrong results), or if the protocol stages a message in a round its
    /// declared [`Protocol::sync_period`] marks silent — a protocol bug,
    /// like a duplicate send on a port.
    pub fn execute_with<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
        net: &Arc<NetTables>,
    ) -> Result<RunResult<P::State>, SimError> {
        assert!(net.matches(graph), "NetTables built for a different graph");
        let n = graph.n();
        let period = protocol.sync_period().max(1);
        // A protocol declaring sync_period `p` communicates once per `p`
        // rounds, so a communication-round message may aggregate the `p`
        // rounds' worth of per-edge bandwidth it stands in for (see
        // `Protocol::sync_period`). For the default `p = 1` this is the
        // classic per-round budget.
        let budget = config.bandwidth_bits(n).saturating_mul(period);
        let mut metrics = Metrics {
            bandwidth_bits: budget,
            ..Metrics::default()
        };
        let mut ctxs = net.contexts();
        let mut rngs: Vec<_> = (0..n as u32)
            .map(|v| node_rng(config.rng_seed(), v))
            .collect();
        let mut states: Vec<P::State> = ctxs
            .iter()
            .zip(rngs.iter_mut())
            .map(|(c, r)| protocol.init(c, r))
            .collect();

        let mut cur: Vec<Inbox<P::Msg>> = (0..n)
            .map(|v| Inbox::with_capacity(graph.degree(v as u32)))
            .collect();
        let mut next: Vec<Inbox<P::Msg>> = (0..n)
            .map(|v| Inbox::with_capacity(graph.degree(v as u32)))
            .collect();
        let mut out: Outbox<P::Msg> = Outbox::new(0);

        if n == 0 {
            return Ok(RunResult { states, metrics });
        }

        let plane = config
            .faults
            .as_ref()
            .map(|f| FaultPlane::new(f, config.rng_salt, n));
        // Watchdog bookkeeping for the structured round-limit diagnostic:
        // last per-node status vote, and the last round any node changed
        // its vote or sent a message.
        let mut prev_status: Vec<Status> = vec![Status::Running; n];
        let mut last_progress: u64 = 0;

        for round in 0..config.max_rounds {
            // Communication rounds carry messages and termination votes;
            // the `period - 1` rounds in between are declared-silent local
            // computation (see `Protocol::sync_period`).
            let comm = round.is_multiple_of(period);
            let mut all_done = true;
            let mut progressed = false;
            for v in 0..n {
                if let Some(p) = &plane {
                    if p.is_crashed(v, round) {
                        // Crashed node: not stepped, sends nothing, votes
                        // Done implicitly (see `faults` module docs).
                        metrics.crashed_rounds += 1;
                        continue;
                    }
                }
                ctxs[v].round = round;
                out.reset(graph.degree(v as u32));
                let status =
                    protocol.round(&mut states[v], &ctxs[v], &mut rngs[v], &cur[v], &mut out);
                all_done &= status == Status::Done;
                if status != prev_status[v] {
                    prev_status[v] = status;
                    progressed = true;
                }
                assert!(
                    comm || out.is_empty(),
                    "protocol declared sync_period {period} but node {v} sent in silent round {round}"
                );
                for (port, msg) in out.drain() {
                    progressed = true;
                    let bits = msg.bits();
                    metrics.record_message(bits, budget);
                    if config.strict_bandwidth && bits > budget {
                        return Err(SimError::Bandwidth {
                            round,
                            bits,
                            limit: budget,
                        });
                    }
                    let dest = graph.neighbors(v as u32)[port as usize] as usize;
                    let arrival = net.reverse_ports_of(v as u32)[port as usize];
                    let copies = match plane
                        .as_ref()
                        .map_or(Fate::Deliver, |p| p.fate(round, v as u32, port))
                    {
                        Fate::Drop => {
                            metrics.faults_dropped += 1;
                            0
                        }
                        Fate::Deliver => 1,
                        Fate::Duplicate => {
                            metrics.faults_duplicated += 1;
                            2
                        }
                    };
                    if copies == 0 {
                        continue;
                    }
                    // Delivery lands at round + 1; a receiver crashed then
                    // loses the message (and any duplicate of it).
                    if plane
                        .as_ref()
                        .is_some_and(|p| p.is_crashed(dest, round + 1))
                    {
                        metrics.crash_drops += 1;
                        continue;
                    }
                    if copies == 2 {
                        next[dest].push(arrival, msg.clone());
                    }
                    next[dest].push(arrival, msg);
                }
            }
            if progressed {
                last_progress = round;
            }
            metrics.rounds = round + 1;
            for inbox in &mut cur {
                inbox.clear();
            }
            std::mem::swap(&mut cur, &mut next);
            for inbox in &mut cur {
                inbox.finalize();
            }
            if comm && all_done {
                return Ok(RunResult { states, metrics });
            }
        }
        let live_nodes = prev_status.iter().filter(|&&s| s != Status::Done).count() as u64;
        Err(SimError::RoundLimitExceeded {
            limit: config.max_rounds,
            phase: config.phase_label.clone(),
            live_nodes,
            last_progress_round: last_progress,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeCtx, NodeRng};
    use graphs::gen;

    /// Flood the maximum identifier: classic O(diameter) protocol.
    struct MaxFlood;

    #[derive(Debug, Clone)]
    struct FloodState {
        best: u64,
        changed: bool,
    }

    impl Protocol for MaxFlood {
        type State = FloodState;
        type Msg = u64;
        fn init(&self, ctx: &NodeCtx, _rng: &mut NodeRng) -> FloodState {
            FloodState {
                best: ctx.ident,
                changed: true,
            }
        }
        fn round(
            &self,
            st: &mut FloodState,
            _ctx: &NodeCtx,
            _rng: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(_, id) in inbox {
                if id > st.best {
                    st.best = id;
                    st.changed = true;
                }
            }
            if st.changed {
                st.changed = false;
                out.broadcast(st.best);
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn flood_converges_to_global_max_on_path() {
        let g = gen::path(16);
        // Sequential ids put the max identifier at an endpoint, so it must
        // travel the full diameter (permuted ids could place it centrally).
        let cfg = SimConfig {
            ids: crate::IdAssignment::Sequential,
            ..SimConfig::default()
        };
        let res = SequentialRuntime.execute(&g, &MaxFlood, &cfg).unwrap();
        assert!(res.states.iter().all(|s| s.best == 15));
        // The max must travel the diameter; rounds is Θ(n) on a path.
        assert!(res.metrics.rounds >= 15, "rounds = {}", res.metrics.rounds);
        assert!(res.metrics.is_congest_compliant());
    }

    #[test]
    fn round_limit_is_enforced() {
        /// A protocol that never terminates.
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let g = gen::path(3);
        let err = SequentialRuntime
            .execute(
                &g,
                &Forever,
                &SimConfig::default()
                    .with_max_rounds(10)
                    .with_phase_label("forever"),
            )
            .unwrap_err();
        // Forever never sends and never changes its vote after round 0:
        // all 3 nodes live, no progress ever.
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 10,
                phase: "forever".into(),
                live_nodes: 3,
                last_progress_round: 0,
            }
        );
    }

    #[test]
    fn strict_bandwidth_aborts() {
        /// Sends one absurdly large message.
        struct Fat;
        #[derive(Debug, Clone)]
        struct Huge;
        impl Message for Huge {
            fn bits(&self) -> u64 {
                1 << 20
            }
        }
        impl Protocol for Fat {
            type State = ();
            type Msg = Huge;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                ctx: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<Huge>,
                out: &mut Outbox<Huge>,
            ) -> Status {
                if ctx.round == 0 {
                    out.broadcast(Huge);
                    Status::Running
                } else {
                    Status::Done
                }
            }
        }
        let g = gen::path(3);
        let err = SequentialRuntime
            .execute(&g, &Fat, &SimConfig::default().strict())
            .unwrap_err();
        match err {
            SimError::Bandwidth { bits, .. } => assert_eq!(bits, 1 << 20),
            other => panic!("expected bandwidth error, got {other:?}"),
        }
        // Non-strict mode records instead of aborting.
        let res = SequentialRuntime
            .execute(&g, &Fat, &SimConfig::default())
            .unwrap();
        assert_eq!(res.metrics.bandwidth_violations, 4); // 2 inner edges × 2 endpoints... path(3) has 2 edges = 4 directed
        assert!(!res.metrics.is_congest_compliant());
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = gen::empty(0);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        assert_eq!(res.metrics.rounds, 0);
        assert!(res.states.is_empty());
    }

    #[test]
    fn isolated_nodes_run_and_finish() {
        let g = gen::empty(5);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        // Every node keeps its own ident (no one to talk to).
        let mut bests: Vec<u64> = res.states.iter().map(|s| s.best).collect();
        bests.sort_unstable();
        assert_eq!(bests, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn message_metrics_counted() {
        let g = gen::cycle(4);
        let res = SequentialRuntime
            .execute(&g, &MaxFlood, &SimConfig::default())
            .unwrap();
        assert!(res.metrics.messages > 0);
        assert!(res.metrics.total_bits >= res.metrics.messages);
        assert!(res.metrics.max_message_bits <= 3); // idents 0..3 fit in ≤2 bits, +min 1
    }

    /// A k-periodic protocol: pulse a counter to all neighbors at
    /// communication rounds, accumulate locally in between.
    struct Pulse {
        period: u64,
        pulses: u64,
    }

    impl Protocol for Pulse {
        type State = u64;
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> u64 {
            0
        }
        fn round(
            &self,
            st: &mut u64,
            ctx: &NodeCtx,
            _: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(p, x) in inbox {
                *st = st.wrapping_add(x ^ u64::from(p));
            }
            let pulse = ctx.round / self.period;
            if ctx.round.is_multiple_of(self.period) && pulse < self.pulses {
                out.broadcast(ctx.ident + pulse);
                Status::Running
            } else if pulse < self.pulses {
                Status::Running
            } else {
                Status::Done
            }
        }
        fn sync_period(&self) -> u64 {
            self.period
        }
    }

    #[test]
    fn periodic_protocol_terminates_at_comm_round() {
        let g = gen::cycle(8);
        let p = Pulse {
            period: 3,
            pulses: 4,
        };
        let res = SequentialRuntime
            .execute(&g, &p, &SimConfig::seeded(2))
            .unwrap();
        // Done votes only count at rounds ≡ 0 (mod 3): the first unanimous
        // one is round 12 (pulse index 4), so 13 rounds execute.
        assert_eq!(res.metrics.rounds, 13);
        // 4 pulses × 8 nodes × degree 2.
        assert_eq!(res.metrics.messages, 64);
    }

    #[test]
    #[should_panic(expected = "silent round")]
    fn silent_round_send_is_rejected() {
        /// Claims period 2 but sends every round.
        struct Liar;
        impl Protocol for Liar {
            type State = ();
            type Msg = u64;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<u64>,
                out: &mut Outbox<u64>,
            ) -> Status {
                out.broadcast(1);
                Status::Running
            }
            fn sync_period(&self) -> u64 {
                2
            }
        }
        let g = gen::cycle(4);
        let _ = SequentialRuntime.execute(&g, &Liar, &SimConfig::default().with_max_rounds(10));
    }
}
