//! Channel-based parallel runtime.
//!
//! Nodes are sharded over worker threads. Within a round, each worker steps
//! its own nodes; messages crossing shard boundaries travel through
//! `crossbeam` channels (one channel per destination shard). Two barriers
//! per round keep the system synchronous — exactly the lockstep semantics
//! of the CONGEST model, now with real inter-thread message passing.
//!
//! Determinism: per-node RNG streams depend only on `(seed, index)`, and
//! inboxes are sorted by port before delivery, so the observable behavior
//! is bit-identical to [`SequentialRuntime`](super::SequentialRuntime)
//! regardless of thread interleaving (asserted by tests and experiment E12).

use super::{build_contexts, build_reverse_ports, node_rng, RunResult, SimError};
use crate::{Inbox, Message, Metrics, NodeCtx, Outbox, Port, Protocol, SimConfig, Status};
use crossbeam::channel::{unbounded, Receiver, Sender};
use graphs::Graph;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// Multi-threaded engine with crossbeam-channel message transport.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRuntime {
    threads: usize,
}

impl Default for ParallelRuntime {
    fn default() -> Self {
        ParallelRuntime::new(0)
    }
}

impl ParallelRuntime {
    /// Creates a runtime with the given worker-thread count
    /// (0 = available parallelism).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            threads
        };
        ParallelRuntime { threads }
    }

    /// Runs `protocol` to unanimous [`Status::Done`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    pub fn execute<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
    ) -> Result<RunResult<P::State>, SimError> {
        let n = graph.n();
        let budget = config.bandwidth_bits(n);
        if n == 0 {
            return Ok(RunResult {
                states: Vec::new(),
                metrics: Metrics { bandwidth_bits: budget, ..Metrics::default() },
            });
        }
        let t = self.threads.min(n).max(1);
        let chunk = n.div_ceil(t);
        let shard_of = |v: usize| (v / chunk).min(t - 1);

        let mut ctxs = build_contexts(graph, config);
        let rev = build_reverse_ports(graph);

        // One channel per destination shard; payload = (dest index, arrival port, msg).
        let mut senders: Vec<Sender<(u32, Port, P::Msg)>> = Vec::with_capacity(t);
        let mut receivers: Vec<Receiver<(u32, Port, P::Msg)>> = Vec::with_capacity(t);
        for _ in 0..t {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }

        let barrier = Barrier::new(t);
        let done_counts = [AtomicU64::new(0), AtomicU64::new(0)];
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<SimError>> = Mutex::new(None);
        let global_metrics: Mutex<Metrics> =
            Mutex::new(Metrics { bandwidth_bits: budget, ..Metrics::default() });
        let out_states: Mutex<Vec<(usize, Vec<P::State>)>> = Mutex::new(Vec::new());

        // Disjoint mutable context slices, one per shard.
        let mut ctx_chunks: Vec<&mut [NodeCtx]> = ctxs.chunks_mut(chunk).collect();
        while ctx_chunks.len() < t {
            ctx_chunks.push(&mut []);
        }

        std::thread::scope(|scope| {
            for (shard, ctx_slice) in ctx_chunks.into_iter().enumerate() {
                let start = shard * chunk;
                let senders = senders.clone();
                let receiver = receivers[shard].clone();
                let barrier = &barrier;
                let done_counts = &done_counts;
                let abort = &abort;
                let first_error = &first_error;
                let global_metrics = &global_metrics;
                let out_states = &out_states;
                let rev = &rev;
                scope.spawn(move || {
                    let local_n = ctx_slice.len();
                    let mut rngs: Vec<_> = (0..local_n)
                        .map(|i| node_rng(config.rng_seed(), (start + i) as u32))
                        .collect();
                    let mut states: Vec<P::State> = ctx_slice
                        .iter()
                        .zip(rngs.iter_mut())
                        .map(|(c, r)| protocol.init(c, r))
                        .collect();
                    let mut cur: Vec<Inbox<P::Msg>> =
                        (0..local_n).map(|_| Inbox::new()).collect();
                    let mut next: Vec<Inbox<P::Msg>> =
                        (0..local_n).map(|_| Inbox::new()).collect();
                    let mut out: Outbox<P::Msg> = Outbox::new(0);
                    let mut metrics = Metrics { bandwidth_bits: budget, ..Metrics::default() };

                    let mut finished_ok = false;
                    for round in 0..config.max_rounds {
                        // ---- Phase A: step local nodes, route messages.
                        let mut local_done = 0u64;
                        for i in 0..local_n {
                            let v = start + i;
                            ctx_slice[i].round = round;
                            out.reset(ctx_slice[i].degree());
                            let status = protocol.round(
                                &mut states[i],
                                &ctx_slice[i],
                                &mut rngs[i],
                                &cur[i],
                                &mut out,
                            );
                            if status == Status::Done {
                                local_done += 1;
                            }
                            for (port, msg) in out.drain() {
                                let bits = msg.bits();
                                metrics.record_message(bits, budget);
                                if config.strict_bandwidth && bits > budget {
                                    let mut e = first_error.lock();
                                    if e.is_none() {
                                        *e = Some(SimError::Bandwidth {
                                            round,
                                            bits,
                                            limit: budget,
                                        });
                                    }
                                    abort.store(true, Ordering::SeqCst);
                                }
                                let dest =
                                    graph.neighbors(v as u32)[port as usize] as usize;
                                let arrival = rev[v][port as usize];
                                let ds = shard_of(dest);
                                if ds == shard {
                                    next[dest - start].push(arrival, msg);
                                } else {
                                    senders[ds]
                                        .send((dest as u32, arrival, msg))
                                        .expect("receiver lives for the whole scope");
                                }
                            }
                        }
                        done_counts[(round % 2) as usize]
                            .fetch_add(local_done, Ordering::SeqCst);
                        barrier.wait();

                        // ---- Phase B: deliver cross-shard messages, rotate inboxes.
                        for (dest, port, msg) in receiver.try_iter() {
                            next[dest as usize - start].push(port, msg);
                        }
                        for inbox in &mut cur {
                            inbox.clear();
                        }
                        std::mem::swap(&mut cur, &mut next);
                        for inbox in &mut cur {
                            inbox.finalize();
                        }
                        metrics.rounds = round + 1;
                        let all_done =
                            done_counts[(round % 2) as usize].load(Ordering::SeqCst) == n as u64;
                        let aborted = abort.load(Ordering::SeqCst);
                        if shard == 0 {
                            done_counts[((round + 1) % 2) as usize].store(0, Ordering::SeqCst);
                        }
                        barrier.wait();
                        if aborted {
                            break;
                        }
                        if all_done {
                            finished_ok = true;
                            break;
                        }
                    }
                    if !finished_ok && !abort.load(Ordering::SeqCst) {
                        let mut e = first_error.lock();
                        if e.is_none() {
                            *e = Some(SimError::RoundLimitExceeded { limit: config.max_rounds });
                        }
                    }
                    // Only shard 0 reports the round count (identical everywhere).
                    if shard != 0 {
                        metrics.rounds = 0;
                    }
                    global_metrics.lock().absorb(&metrics);
                    out_states.lock().push((start, states));
                });
            }
        });

        if let Some(err) = first_error.into_inner() {
            return Err(err);
        }
        let mut shards = out_states.into_inner();
        shards.sort_by_key(|&(s, _)| s);
        let states: Vec<P::State> = shards.into_iter().flat_map(|(_, v)| v).collect();
        let mut metrics = global_metrics.into_inner();
        metrics.bandwidth_bits = budget;
        Ok(RunResult { states, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeRng;
    use graphs::gen;
    use rand::Rng;

    /// Randomized gossip: each node repeatedly sends a random value to a
    /// random neighbor and tracks the sum of everything it received.
    /// Exercises RNG determinism and cross-shard delivery.
    struct Gossip {
        rounds: u64,
    }

    #[derive(Debug, Clone, PartialEq)]
    struct GossipState {
        sum: u64,
    }

    impl Protocol for Gossip {
        type State = GossipState;
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> GossipState {
            GossipState { sum: 0 }
        }
        fn round(
            &self,
            st: &mut GossipState,
            ctx: &NodeCtx,
            rng: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(p, x) in inbox {
                st.sum = st.sum.wrapping_add(x.wrapping_mul(u64::from(p) + 1));
            }
            if ctx.round < self.rounds && ctx.degree() > 0 {
                let port = rng.gen_range(0..ctx.degree()) as Port;
                out.send(port, rng.gen_range(0..1000));
                Status::Running
            } else if ctx.round < self.rounds {
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_graph() {
        let g = gen::gnp_capped(150, 0.08, 10, 77);
        let cfg = SimConfig::seeded(123);
        let p = Gossip { rounds: 25 };
        let seq = super::super::run(&g, &p, &cfg).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = ParallelRuntime::new(threads).execute(&g, &p, &cfg).unwrap();
            assert_eq!(
                seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                par.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                "mismatch with {threads} threads"
            );
            assert_eq!(seq.metrics.rounds, par.metrics.rounds);
            assert_eq!(seq.metrics.messages, par.metrics.messages);
            assert_eq!(seq.metrics.total_bits, par.metrics.total_bits);
        }
    }

    #[test]
    fn parallel_round_limit() {
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let g = gen::cycle(12);
        let err = ParallelRuntime::new(3)
            .execute(&g, &Forever, &SimConfig::default().with_max_rounds(5))
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
    }

    #[test]
    fn parallel_empty_graph() {
        let g = gen::empty(0);
        let res = ParallelRuntime::new(4)
            .execute(&g, &Gossip { rounds: 3 }, &SimConfig::default())
            .unwrap();
        assert!(res.states.is_empty());
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = gen::path(3);
        let p = Gossip { rounds: 5 };
        let cfg = SimConfig::seeded(5);
        let seq = super::super::run(&g, &p, &cfg).unwrap();
        let par = ParallelRuntime::new(64).execute(&g, &p, &cfg).unwrap();
        assert_eq!(
            seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
            par.states.iter().map(|s| s.sum).collect::<Vec<_>>()
        );
    }
}
