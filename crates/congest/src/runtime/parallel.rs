//! Single-barrier batched-transport parallel runtime.
//!
//! Nodes are sharded over worker threads; each worker runs the shared
//! round-loop core (see the [module docs](super)) over its shard through
//! the in-process mailbox transport (`engine::MailboxTransport`) this
//! module's docs specify. Within a round, each worker steps its own
//! nodes; messages crossing shard boundaries are accumulated in
//! per-(source-shard → destination-shard) batch buffers exchanged
//! wholesale at a round barrier — zero per-message channel sends or
//! allocations on the cross-shard path.
//!
//! # The single-barrier protocol
//!
//! Each communication round has two phases: **A** (step nodes, stage
//! outgoing batches, count termination votes) and **B** (drain inbound
//! batches, rotate inboxes, evaluate termination). One barrier separates
//! A from B; there is **no second barrier** between B and the next round's
//! A. The earlier two-barrier design needed the second one so that a fast
//! shard's next publish could not overwrite a batch a slow shard was still
//! draining. That hand-off is now race-free by construction:
//!
//! * **Parity-double-buffered cells.** The mailbox cell for
//!   `(src, dst)` is an array of two buffers indexed by `sync % 2`, where
//!   `sync` counts barriers so far. Phase A of sync `k` writes parity
//!   `k % 2`; phase B of sync `k` drains the same parity. The next write
//!   to that parity happens in phase A of sync `k + 2`. The barrier of
//!   sync `k + 1` sits between — and a shard only reaches it after
//!   finishing its phase B of sync `k` — so every drain strictly precedes
//!   the next overwrite. (Phase B of sync `k` runs concurrently with other
//!   shards' phase A of sync `k + 1`, which touches the *other* parity.)
//! * **Epoch stamps.** Each parity buffer carries an atomic epoch; a
//!   producer publishing a non-empty batch at sync `k` stamps it `k + 1`.
//!   Consumers skip the (uncontended, but not free) cell lock entirely
//!   unless the stamp matches the current sync — the swap handshake
//!   reduced to one atomic load per cell on the empty path. The stamp
//!   lives beside its buffer (not per cell) because phase B of sync `k`
//!   overlaps phase A of sync `k + 1`.
//! * **Epoch-rotated flag slots.** The core's per-round control word
//!   (`RoundFlags`: termination-vote AND, sticky-running sum, crash
//!   projection sum, strict-bandwidth violation) lives in three slot
//!   arrays indexed by `sync % 3`: written in phase A, read in phase B,
//!   and reset by shard 0 two syncs later — the earliest point at which
//!   the barrier ordering proves no reader or writer can still touch the
//!   slot. (A single, unrotated slot would let a shard observe a value
//!   published one sync in the future and break early — deserting its
//!   peers at the next barrier.)
//!
//! The barrier itself is a sense-reversing spin barrier
//! ([`super::barrier::SpinBarrier`]): worker counts are small and rounds
//! are short, so spinning beats the mutex/condvar handshake of
//! `std::sync::Barrier` by an order of magnitude on light rounds. A panic
//! in any worker (protocol bug) poisons the barrier so the remaining
//! workers panic too instead of deadlocking.
//!
//! # Round batching
//!
//! Protocols declaring a [`Protocol::sync_period`] of `p` communicate only
//! every `p`-th round; the engine then runs the `p - 1` silent rounds
//! between communication rounds entirely locally — no publish, no barrier,
//! no drain — and synchronizes once per `p` simulator rounds.
//!
//! # Active-set scheduling
//!
//! Under the default active-set schedule (see the [module docs](super))
//! each shard keeps a wake frontier over its *local* indices; wakes for
//! nodes in other shards ride in the same epoch-stamped mail cells as the
//! messages that cause them (a drained delivery wakes its destination for
//! the next round in phase B), so parking adds no synchronization beyond
//! the existing barrier. The sticky-vote unanimity check and the
//! crash-probe latch ride in the same epoch-rotated `RoundFlags` slots as
//! the termination votes (a zero merged `running` sum is exactly the
//! reference's unanimity; a zero merged projection latches every shard
//! back to always-stepping on the same round).
//!
//! # Determinism
//!
//! Per-node RNG streams depend only on `(seed, index)`, at most one
//! message arrives per port per round (the `Outbox` enforces the CONGEST
//! discipline), and inboxes are sorted by port before delivery, so the
//! observable behavior is bit-identical to
//! [`SequentialRuntime`](super::SequentialRuntime) regardless of thread
//! interleaving or batch arrival order (asserted by the differential
//! harness and the transport property tests).

use super::barrier::SpinBarrier;
use super::engine::{self, MailCell, MailboxTransport, ShardWorld, SharedFlags};
use super::{RunResult, SimError};
use crate::faults::FaultPlane;
use crate::{Metrics, NetTables, NodeCtx, Protocol, SimConfig};
use graphs::Graph;
use std::sync::{Arc, Mutex};

/// Multi-threaded engine with single-barrier batched message transport.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRuntime {
    threads: usize,
}

impl Default for ParallelRuntime {
    fn default() -> Self {
        ParallelRuntime::new(0)
    }
}

impl ParallelRuntime {
    /// Creates a runtime with the given worker-thread count
    /// (0 = available parallelism).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            threads
        };
        ParallelRuntime { threads }
    }

    /// Runs `protocol` to unanimous [`Status::Done`](crate::Status),
    /// building the network tables on the fly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    pub fn execute<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
    ) -> Result<RunResult<P::State>, SimError> {
        self.execute_with(graph, protocol, config, &NetTables::build(graph, config))
    }

    /// [`ParallelRuntime::execute`] with prebuilt [`NetTables`] — the
    /// allocation-light path multi-phase drivers use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    ///
    /// # Panics
    ///
    /// Panics if `net` was not built for `graph` (node or edge count
    /// mismatch — proceeding would mis-route messages and return silently
    /// wrong results), or if the protocol stages a message in a round its
    /// declared [`Protocol::sync_period`] marks silent — a protocol bug,
    /// like a duplicate send on a port.
    pub fn execute_with<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
        net: &Arc<NetTables>,
    ) -> Result<RunResult<P::State>, SimError> {
        assert!(net.matches(graph), "NetTables built for a different graph");
        let n = graph.n();
        let period = protocol.sync_period().max(1);
        let budget = engine::round_budget(config, n, period);
        if n == 0 {
            return Ok(RunResult {
                states: Vec::new(),
                metrics: Metrics {
                    bandwidth_bits: budget,
                    ..Metrics::default()
                },
            });
        }
        let t = self.threads.min(n).max(1);
        let chunk = n.div_ceil(t);

        let mut ctxs = net.contexts();

        // The t×t transport matrix: `mailboxes[src][dst]` carries batches
        // from shard `src` to shard `dst`, parity-double-buffered per sync
        // (see the module docs). The same allocations shuttle back and
        // forth for the whole run.
        let mailboxes: Vec<Vec<MailCell<P::Msg>>> = (0..t)
            .map(|_| (0..t).map(|_| MailCell::new()).collect())
            .collect();
        let barrier = SpinBarrier::new(t);
        let flags = SharedFlags::new();

        // Errors need no (round, node) ordering key anymore: the core
        // derives every abort from the barrier-merged flags, so all
        // shards return the identical error — first writer wins.
        let first_error: Mutex<Option<SimError>> = Mutex::new(None);
        let global_metrics: Mutex<Metrics> = Mutex::new(Metrics {
            bandwidth_bits: budget,
            ..Metrics::default()
        });
        let out_states: Mutex<Vec<(usize, Vec<P::State>)>> = Mutex::new(Vec::new());
        // The fault schedule is built once, before the workers spawn, and
        // consulted read-only: fates are pure functions of (round, node,
        // port) and crash windows are precomputed, so every shard computes
        // the same trace as the sequential engine (see `faults`).
        let plane: Option<FaultPlane> = config
            .faults
            .as_ref()
            .map(|f| FaultPlane::new(f, config.rng_salt, n));

        // Disjoint mutable context slices, one per shard.
        let mut ctx_chunks: Vec<&mut [NodeCtx]> = ctxs.chunks_mut(chunk).collect();
        while ctx_chunks.len() < t {
            ctx_chunks.push(&mut []);
        }

        std::thread::scope(|scope| {
            for (shard, ctx_slice) in ctx_chunks.into_iter().enumerate() {
                let start = shard * chunk;
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                let flags = &flags;
                let first_error = &first_error;
                let global_metrics = &global_metrics;
                let out_states = &out_states;
                let net = &net;
                let plane = plane.as_ref();
                scope.spawn(move || {
                    // Poison the barrier if this worker unwinds (protocol
                    // bug) so peers panic instead of spinning forever.
                    let _poison = barrier.poison_guard();
                    let (mut rngs, mut states) =
                        engine::init_nodes(protocol, config, ctx_slice, start);
                    let mut transport = MailboxTransport::new(
                        shard,
                        t,
                        chunk,
                        config.strict_bandwidth,
                        mailboxes,
                        barrier,
                        flags,
                    );
                    match engine::drive(
                        graph,
                        protocol,
                        config,
                        net,
                        ShardWorld {
                            start,
                            ctxs: ctx_slice,
                            states: &mut states,
                            rngs: &mut rngs,
                            plane,
                        },
                        &mut transport,
                    ) {
                        Ok(mut metrics) => {
                            // Only shard 0 reports the round count
                            // (identical everywhere).
                            if shard != 0 {
                                metrics.rounds = 0;
                            }
                            global_metrics
                                .lock()
                                .expect("no poisoned lock")
                                .absorb(&metrics);
                            out_states
                                .lock()
                                .expect("no poisoned lock")
                                .push((start, states));
                        }
                        Err(e) => {
                            // Every shard computes the identical error from
                            // the merged flags; keep the first.
                            let mut g = first_error.lock().expect("no poisoned lock");
                            if g.is_none() {
                                *g = Some(e);
                            }
                        }
                    }
                });
            }
        });

        if let Some(err) = first_error.into_inner().expect("no poisoned lock") {
            return Err(err);
        }
        let mut shards = out_states.into_inner().expect("no poisoned lock");
        shards.sort_by_key(|&(s, _)| s);
        let states: Vec<P::State> = shards.into_iter().flat_map(|(_, v)| v).collect();
        let mut metrics = global_metrics.into_inner().expect("no poisoned lock");
        metrics.bandwidth_bits = budget;
        Ok(RunResult { states, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Inbox, Message, NodeCtx, NodeRng, Outbox, Port, Status};
    use graphs::gen;
    use rand::Rng;

    /// Randomized gossip: each node repeatedly sends a random value to a
    /// random neighbor and tracks the sum of everything it received.
    /// Exercises RNG determinism and cross-shard delivery.
    struct Gossip {
        rounds: u64,
    }

    #[derive(Debug, Clone, PartialEq)]
    struct GossipState {
        sum: u64,
    }

    impl Protocol for Gossip {
        type State = GossipState;
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> GossipState {
            GossipState { sum: 0 }
        }
        fn round(
            &self,
            st: &mut GossipState,
            ctx: &NodeCtx,
            rng: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(p, x) in inbox {
                st.sum = st.sum.wrapping_add(x.wrapping_mul(u64::from(p) + 1));
            }
            if ctx.round < self.rounds && ctx.degree() > 0 {
                let port = rng.gen_range(0..ctx.degree()) as Port;
                out.send(port, rng.gen_range(0..1000));
                Status::Running
            } else if ctx.round < self.rounds {
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_graph() {
        let g = gen::gnp_capped(150, 0.08, 10, 77);
        let cfg = SimConfig::seeded(123);
        let p = Gossip { rounds: 25 };
        let seq = super::super::run(&g, &p, &cfg).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = ParallelRuntime::new(threads).execute(&g, &p, &cfg).unwrap();
            assert_eq!(
                seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                par.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                "mismatch with {threads} threads"
            );
            assert_eq!(seq.metrics.rounds, par.metrics.rounds);
            assert_eq!(seq.metrics.messages, par.metrics.messages);
            assert_eq!(seq.metrics.total_bits, par.metrics.total_bits);
        }
    }

    #[test]
    fn parallel_round_limit() {
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let g = gen::cycle(12);
        let cfg = SimConfig::default()
            .with_max_rounds(5)
            .with_phase_label("forever");
        let err = ParallelRuntime::new(3)
            .execute(&g, &Forever, &cfg)
            .unwrap_err();
        // The structured watchdog diagnostics must match the sequential
        // engine's bit for bit.
        let seq_err = super::super::SequentialRuntime
            .execute(&g, &Forever, &cfg)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 5,
                phase: "forever".into(),
                live_nodes: 12,
                last_progress_round: 0,
            }
        );
        assert_eq!(err, seq_err);
    }

    #[test]
    fn fault_plane_trace_is_engine_independent() {
        use crate::faults::FaultConfig;
        let g = gen::gnp_capped(150, 0.08, 10, 77);
        let p = Gossip { rounds: 25 };
        for faults in [
            FaultConfig::seeded(7).with_drops(80_000),
            FaultConfig::seeded(7).with_drops(50_000).with_dups(50_000),
            FaultConfig::seeded(9)
                .with_drops(30_000)
                .with_crashes(120_000, 20, 5),
        ] {
            let cfg = SimConfig::seeded(123).with_faults(faults);
            let seq = super::super::run(&g, &p, &cfg).unwrap();
            assert!(
                seq.metrics.faults_dropped > 0,
                "fault plane must actually fire for the test to mean anything"
            );
            for threads in [1, 2, 3, 8] {
                let par = ParallelRuntime::new(threads).execute(&g, &p, &cfg).unwrap();
                assert_eq!(
                    seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                    par.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                    "fault trace diverged with {threads} threads"
                );
                assert_eq!(seq.metrics, par.metrics, "metrics diverged at {threads}");
            }
        }
    }

    #[test]
    fn faults_disabled_is_bit_identical_to_no_fault_field() {
        // `faults: None` must leave the engine byte-for-byte on its
        // fault-free path — the PR5 benchmarks depend on it.
        let g = gen::gnp_capped(80, 0.1, 8, 3);
        let p = Gossip { rounds: 15 };
        let base = SimConfig::seeded(9);
        let with_field = base.clone().without_faults();
        let a = super::super::run(&g, &p, &base).unwrap();
        let b = super::super::run(&g, &p, &with_field).unwrap();
        assert_eq!(
            a.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
            b.states.iter().map(|s| s.sum).collect::<Vec<_>>()
        );
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.faults_dropped, 0);
        assert_eq!(a.metrics.crashed_rounds, 0);
    }

    #[test]
    fn drops_shrink_delivery_and_duplicates_add_copies() {
        use crate::faults::FaultConfig;
        /// Counts every message copy that arrives, making delivered
        /// (post-fault) traffic observable.
        struct CountArrivals;
        impl Protocol for CountArrivals {
            type State = u64;
            type Msg = u32;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> u64 {
                0
            }
            fn round(
                &self,
                st: &mut u64,
                ctx: &NodeCtx,
                _: &mut NodeRng,
                inbox: &Inbox<u32>,
                out: &mut Outbox<u32>,
            ) -> Status {
                *st += inbox.len() as u64;
                if ctx.round < 30 {
                    out.broadcast(1);
                    Status::Running
                } else {
                    Status::Done
                }
            }
        }
        let g = gen::cycle(40);
        let clean = super::super::run(&g, &CountArrivals, &SimConfig::seeded(4)).unwrap();
        let dropped = super::super::run(
            &g,
            &CountArrivals,
            &SimConfig::seeded(4).with_faults(FaultConfig::seeded(1).with_drops(200_000)),
        )
        .unwrap();
        let duped = super::super::run(
            &g,
            &CountArrivals,
            &SimConfig::seeded(4).with_faults(FaultConfig::seeded(1).with_dups(200_000)),
        )
        .unwrap();
        let arrivals = |r: &RunResult<u64>| r.states.iter().sum::<u64>();
        // Send-side accounting is fate-independent…
        assert_eq!(clean.metrics.messages, dropped.metrics.messages);
        assert_eq!(clean.metrics.messages, duped.metrics.messages);
        // …but delivery reflects the injected faults exactly.
        assert_eq!(
            arrivals(&dropped),
            arrivals(&clean) - dropped.metrics.faults_dropped
        );
        assert_eq!(
            arrivals(&duped),
            arrivals(&clean) + duped.metrics.faults_duplicated
        );
        assert!(dropped.metrics.faults_dropped > 0);
        assert!(duped.metrics.faults_duplicated > 0);
    }

    #[test]
    fn crashed_receiver_loses_messages() {
        use crate::faults::FaultConfig;
        let g = gen::cycle(30);
        let p = Gossip { rounds: 20 };
        // Crash probability high enough that some node crashes, window
        // inside the active rounds.
        let faults = FaultConfig::seeded(3).with_crashes(300_000, 10, 4);
        let cfg = SimConfig::seeded(8).with_faults(faults);
        let res = super::super::run(&g, &p, &cfg).unwrap();
        assert!(res.metrics.crashed_rounds > 0, "no node ever crashed");
        assert!(res.metrics.crash_drops > 0, "no message hit a crashed node");
        // Parallel engine agrees on the crash trace too.
        let par = ParallelRuntime::new(4).execute(&g, &p, &cfg).unwrap();
        assert_eq!(res.metrics, par.metrics);
    }

    #[test]
    fn parallel_empty_graph() {
        let g = gen::empty(0);
        let res = ParallelRuntime::new(4)
            .execute(&g, &Gossip { rounds: 3 }, &SimConfig::default())
            .unwrap();
        assert!(res.states.is_empty());
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = gen::path(3);
        let p = Gossip { rounds: 5 };
        let cfg = SimConfig::seeded(5);
        let seq = super::super::run(&g, &p, &cfg).unwrap();
        let par = ParallelRuntime::new(64).execute(&g, &p, &cfg).unwrap();
        assert_eq!(
            seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
            par.states.iter().map(|s| s.sum).collect::<Vec<_>>()
        );
    }

    #[test]
    fn strict_bandwidth_aborts_in_parallel_with_sequential_error() {
        /// Every node sends one oversized message whose size encodes its
        /// index, so the *identity* of the reported violation is
        /// observable: it must be the first one in node order — the same
        /// error the sequential runtime returns — on every run.
        struct Fat;
        #[derive(Debug, Clone)]
        struct Huge(u64);
        impl Message for Huge {
            fn bits(&self) -> u64 {
                (1 << 20) + self.0
            }
        }
        impl Protocol for Fat {
            type State = ();
            type Msg = Huge;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                ctx: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<Huge>,
                out: &mut Outbox<Huge>,
            ) -> Status {
                if ctx.round == 0 {
                    out.broadcast(Huge(u64::from(ctx.index)));
                    Status::Running
                } else {
                    Status::Done
                }
            }
        }
        let g = gen::cycle(9);
        let cfg = SimConfig::default().strict();
        let seq_err = super::super::SequentialRuntime
            .execute(&g, &Fat, &cfg)
            .unwrap_err();
        match seq_err {
            SimError::Bandwidth { bits, .. } => assert_eq!(bits, 1 << 20),
            ref other => panic!("expected bandwidth error, got {other:?}"),
        }
        for threads in [2usize, 3, 5] {
            for _ in 0..3 {
                let err = ParallelRuntime::new(threads)
                    .execute(&g, &Fat, &cfg)
                    .unwrap_err();
                assert_eq!(err, seq_err, "error diverged with {threads} threads");
            }
        }
    }

    #[test]
    fn worker_panic_poisons_instead_of_deadlocking() {
        /// Panics at round 2 on exactly one node; without barrier
        /// poisoning the other shards would spin forever.
        struct Bomb;
        impl Protocol for Bomb {
            type State = ();
            type Msg = u64;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                ctx: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<u64>,
                out: &mut Outbox<u64>,
            ) -> Status {
                assert!(
                    !(ctx.round == 2 && ctx.index == 7),
                    "deliberate protocol bug"
                );
                out.broadcast(1);
                Status::Running
            }
        }
        let g = gen::cycle(12);
        let caught = std::panic::catch_unwind(|| {
            let _ = ParallelRuntime::new(4).execute(
                &g,
                &Bomb,
                &SimConfig::default().with_max_rounds(10),
            );
        });
        assert!(caught.is_err(), "panic must propagate, not deadlock");

        // Same bomb with workers oversubscribed (more threads than cores),
        // which zeroes the barrier's spin budget and forces every waiter
        // onto the condvar park path — the poison wakeup must reach parked
        // shards too. (The spin path is covered above whenever the box has
        // ≥ 4 cores, and deterministically by the barrier unit tests.)
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let threads = (2 * cores + 2).min(48);
        let g = gen::cycle(4 * threads);
        let caught = std::panic::catch_unwind(|| {
            let _ = ParallelRuntime::new(threads).execute(
                &g,
                &Bomb,
                &SimConfig::default().with_max_rounds(10),
            );
        });
        assert!(caught.is_err(), "park-path panic must propagate");
    }
}
