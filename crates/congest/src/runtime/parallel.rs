//! Batched-transport parallel runtime.
//!
//! Nodes are sharded over worker threads. Within a round, each worker steps
//! its own nodes; messages crossing shard boundaries are accumulated in
//! per-(source-shard → destination-shard) batch buffers that are exchanged
//! wholesale at the existing round barrier — **zero per-message channel
//! sends or allocations** on the cross-shard path. Each cell of the t×t
//! buffer matrix is double-buffered by a `Vec` swap: the worker fills its
//! private buffer during the step phase, swaps it into the shared cell
//! before the barrier, and gets last round's drained (capacity-retaining)
//! buffer back. Two barriers per round keep the system synchronous —
//! exactly the lockstep semantics of the CONGEST model.
//!
//! Determinism: per-node RNG streams depend only on `(seed, index)`, at
//! most one message arrives per port per round (the `Outbox` enforces the
//! CONGEST discipline), and inboxes are sorted by port before delivery, so
//! the observable behavior is bit-identical to
//! [`SequentialRuntime`](super::SequentialRuntime) regardless of thread
//! interleaving or batch arrival order (asserted by tests and experiment
//! E12).

use super::{build_contexts, build_reverse_ports, node_rng, RunResult, SimError};
use crate::{Inbox, Message, Metrics, NodeCtx, Outbox, Port, Protocol, SimConfig, Status};
use graphs::Graph;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// One staged cross-shard message: destination node index, arrival port,
/// payload.
type Staged<M> = (u32, Port, M);

/// The t×t batch-buffer matrix: `matrix[src][dst]` carries one round's
/// messages from shard `src` to shard `dst`.
type MailboxMatrix<M> = Vec<Vec<Mutex<Vec<Staged<M>>>>>;

/// Multi-threaded engine with barrier-batched message transport.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRuntime {
    threads: usize,
}

impl Default for ParallelRuntime {
    fn default() -> Self {
        ParallelRuntime::new(0)
    }
}

impl ParallelRuntime {
    /// Creates a runtime with the given worker-thread count
    /// (0 = available parallelism).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            threads
        };
        ParallelRuntime { threads }
    }

    /// Runs `protocol` to unanimous [`Status::Done`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    #[allow(clippy::too_many_lines)]
    pub fn execute<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
    ) -> Result<RunResult<P::State>, SimError> {
        let n = graph.n();
        let budget = config.bandwidth_bits(n);
        if n == 0 {
            return Ok(RunResult {
                states: Vec::new(),
                metrics: Metrics {
                    bandwidth_bits: budget,
                    ..Metrics::default()
                },
            });
        }
        let t = self.threads.min(n).max(1);
        let chunk = n.div_ceil(t);
        let shard_of = |v: usize| (v / chunk).min(t - 1);

        let mut ctxs = build_contexts(graph, config);
        let rev = build_reverse_ports(graph);

        // The t×t transport matrix: `mailboxes[src][dst]` holds the batch
        // of messages from shard `src` to shard `dst` for the current
        // round. Workers swap their full private buffer in before the
        // barrier and drain their column after it; the same allocations
        // shuttle back and forth for the whole run.
        let mailboxes: MailboxMatrix<P::Msg> = (0..t)
            .map(|_| (0..t).map(|_| Mutex::new(Vec::new())).collect())
            .collect();

        let barrier = Barrier::new(t);
        let done_counts = [AtomicU64::new(0), AtomicU64::new(0)];
        let abort = AtomicBool::new(false);
        // Errors are keyed by (round, node index) and the minimum key wins,
        // so the reported error is the first one in the sequential runtime's
        // node order — deterministic regardless of which shard records it
        // first. RoundLimitExceeded uses the maximum key: any bandwidth
        // violation outranks it.
        let first_error: Mutex<Option<((u64, usize), SimError)>> = Mutex::new(None);
        let global_metrics: Mutex<Metrics> = Mutex::new(Metrics {
            bandwidth_bits: budget,
            ..Metrics::default()
        });
        let out_states: Mutex<Vec<(usize, Vec<P::State>)>> = Mutex::new(Vec::new());

        // Disjoint mutable context slices, one per shard.
        let mut ctx_chunks: Vec<&mut [NodeCtx]> = ctxs.chunks_mut(chunk).collect();
        while ctx_chunks.len() < t {
            ctx_chunks.push(&mut []);
        }

        std::thread::scope(|scope| {
            for (shard, ctx_slice) in ctx_chunks.into_iter().enumerate() {
                let start = shard * chunk;
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                let done_counts = &done_counts;
                let abort = &abort;
                let first_error = &first_error;
                let global_metrics = &global_metrics;
                let out_states = &out_states;
                let rev = &rev;
                scope.spawn(move || {
                    let local_n = ctx_slice.len();
                    let mut rngs: Vec<_> = (0..local_n)
                        .map(|i| node_rng(config.rng_seed(), (start + i) as u32))
                        .collect();
                    let mut states: Vec<P::State> = ctx_slice
                        .iter()
                        .zip(rngs.iter_mut())
                        .map(|(c, r)| protocol.init(c, r))
                        .collect();
                    let mut cur: Vec<Inbox<P::Msg>> = (0..local_n).map(|_| Inbox::new()).collect();
                    let mut next: Vec<Inbox<P::Msg>> = (0..local_n).map(|_| Inbox::new()).collect();
                    let mut out: Outbox<P::Msg> = Outbox::new(0);
                    // Private outgoing batch per destination shard, reused
                    // (and capacity-recycled via the swap) every round.
                    let mut out_bufs: Vec<Vec<Staged<P::Msg>>> =
                        (0..t).map(|_| Vec::new()).collect();
                    let mut metrics = Metrics {
                        bandwidth_bits: budget,
                        ..Metrics::default()
                    };

                    let mut finished_ok = false;
                    for round in 0..config.max_rounds {
                        // ---- Phase A: step local nodes, stage messages.
                        let mut local_done = 0u64;
                        for i in 0..local_n {
                            let v = start + i;
                            ctx_slice[i].round = round;
                            out.reset(ctx_slice[i].degree());
                            let status = protocol.round(
                                &mut states[i],
                                &ctx_slice[i],
                                &mut rngs[i],
                                &cur[i],
                                &mut out,
                            );
                            if status == Status::Done {
                                local_done += 1;
                            }
                            for (port, msg) in out.drain() {
                                let bits = msg.bits();
                                metrics.record_message(bits, budget);
                                if config.strict_bandwidth && bits > budget {
                                    let mut e = first_error.lock().expect("no poisoned lock");
                                    let key = (round, v);
                                    if e.as_ref().is_none_or(|(k, _)| key < *k) {
                                        *e = Some((
                                            key,
                                            SimError::Bandwidth {
                                                round,
                                                bits,
                                                limit: budget,
                                            },
                                        ));
                                    }
                                    abort.store(true, Ordering::SeqCst);
                                }
                                let dest = graph.neighbors(v as u32)[port as usize] as usize;
                                let arrival = rev[v][port as usize];
                                let ds = shard_of(dest);
                                if ds == shard {
                                    next[dest - start].push(arrival, msg);
                                } else {
                                    out_bufs[ds].push((dest as u32, arrival, msg));
                                }
                            }
                        }
                        // Publish this round's batches: swap each full
                        // private buffer into the matrix cell, taking back
                        // the drained buffer from last round.
                        for (ds, buf) in out_bufs.iter_mut().enumerate() {
                            if ds != shard {
                                let mut cell =
                                    mailboxes[shard][ds].lock().expect("no poisoned lock");
                                std::mem::swap(&mut *cell, buf);
                            }
                        }
                        done_counts[(round % 2) as usize].fetch_add(local_done, Ordering::SeqCst);
                        barrier.wait();

                        // ---- Phase B: drain the inbound column, rotate
                        // inboxes.
                        for (src, row) in mailboxes.iter().enumerate() {
                            if src == shard {
                                continue;
                            }
                            let mut cell = row[shard].lock().expect("no poisoned lock");
                            for (dest, port, msg) in cell.drain(..) {
                                next[dest as usize - start].push(port, msg);
                            }
                        }
                        for inbox in &mut cur {
                            inbox.clear();
                        }
                        std::mem::swap(&mut cur, &mut next);
                        for inbox in &mut cur {
                            inbox.finalize();
                        }
                        metrics.rounds = round + 1;
                        let all_done =
                            done_counts[(round % 2) as usize].load(Ordering::SeqCst) == n as u64;
                        let aborted = abort.load(Ordering::SeqCst);
                        if shard == 0 {
                            done_counts[((round + 1) % 2) as usize].store(0, Ordering::SeqCst);
                        }
                        barrier.wait();
                        if aborted {
                            break;
                        }
                        if all_done {
                            finished_ok = true;
                            break;
                        }
                    }
                    if !finished_ok && !abort.load(Ordering::SeqCst) {
                        let mut e = first_error.lock().expect("no poisoned lock");
                        if e.is_none() {
                            *e = Some((
                                (u64::MAX, usize::MAX),
                                SimError::RoundLimitExceeded {
                                    limit: config.max_rounds,
                                },
                            ));
                        }
                    }
                    // Only shard 0 reports the round count (identical everywhere).
                    if shard != 0 {
                        metrics.rounds = 0;
                    }
                    global_metrics
                        .lock()
                        .expect("no poisoned lock")
                        .absorb(&metrics);
                    out_states
                        .lock()
                        .expect("no poisoned lock")
                        .push((start, states));
                });
            }
        });

        if let Some((_, err)) = first_error.into_inner().expect("no poisoned lock") {
            return Err(err);
        }
        let mut shards = out_states.into_inner().expect("no poisoned lock");
        shards.sort_by_key(|&(s, _)| s);
        let states: Vec<P::State> = shards.into_iter().flat_map(|(_, v)| v).collect();
        let mut metrics = global_metrics.into_inner().expect("no poisoned lock");
        metrics.bandwidth_bits = budget;
        Ok(RunResult { states, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeRng;
    use graphs::gen;
    use rand::Rng;

    /// Randomized gossip: each node repeatedly sends a random value to a
    /// random neighbor and tracks the sum of everything it received.
    /// Exercises RNG determinism and cross-shard delivery.
    struct Gossip {
        rounds: u64,
    }

    #[derive(Debug, Clone, PartialEq)]
    struct GossipState {
        sum: u64,
    }

    impl Protocol for Gossip {
        type State = GossipState;
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> GossipState {
            GossipState { sum: 0 }
        }
        fn round(
            &self,
            st: &mut GossipState,
            ctx: &NodeCtx,
            rng: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(p, x) in inbox {
                st.sum = st.sum.wrapping_add(x.wrapping_mul(u64::from(p) + 1));
            }
            if ctx.round < self.rounds && ctx.degree() > 0 {
                let port = rng.gen_range(0..ctx.degree()) as Port;
                out.send(port, rng.gen_range(0..1000));
                Status::Running
            } else if ctx.round < self.rounds {
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_graph() {
        let g = gen::gnp_capped(150, 0.08, 10, 77);
        let cfg = SimConfig::seeded(123);
        let p = Gossip { rounds: 25 };
        let seq = super::super::run(&g, &p, &cfg).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = ParallelRuntime::new(threads).execute(&g, &p, &cfg).unwrap();
            assert_eq!(
                seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                par.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                "mismatch with {threads} threads"
            );
            assert_eq!(seq.metrics.rounds, par.metrics.rounds);
            assert_eq!(seq.metrics.messages, par.metrics.messages);
            assert_eq!(seq.metrics.total_bits, par.metrics.total_bits);
        }
    }

    #[test]
    fn parallel_round_limit() {
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let g = gen::cycle(12);
        let err = ParallelRuntime::new(3)
            .execute(&g, &Forever, &SimConfig::default().with_max_rounds(5))
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
    }

    #[test]
    fn parallel_empty_graph() {
        let g = gen::empty(0);
        let res = ParallelRuntime::new(4)
            .execute(&g, &Gossip { rounds: 3 }, &SimConfig::default())
            .unwrap();
        assert!(res.states.is_empty());
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = gen::path(3);
        let p = Gossip { rounds: 5 };
        let cfg = SimConfig::seeded(5);
        let seq = super::super::run(&g, &p, &cfg).unwrap();
        let par = ParallelRuntime::new(64).execute(&g, &p, &cfg).unwrap();
        assert_eq!(
            seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
            par.states.iter().map(|s| s.sum).collect::<Vec<_>>()
        );
    }

    #[test]
    fn strict_bandwidth_aborts_in_parallel_with_sequential_error() {
        /// Every node sends one oversized message whose size encodes its
        /// index, so the *identity* of the reported violation is
        /// observable: it must be the first one in node order — the same
        /// error the sequential runtime returns — on every run.
        struct Fat;
        #[derive(Debug, Clone)]
        struct Huge(u64);
        impl Message for Huge {
            fn bits(&self) -> u64 {
                (1 << 20) + self.0
            }
        }
        impl Protocol for Fat {
            type State = ();
            type Msg = Huge;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                ctx: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<Huge>,
                out: &mut Outbox<Huge>,
            ) -> Status {
                if ctx.round == 0 {
                    out.broadcast(Huge(u64::from(ctx.index)));
                    Status::Running
                } else {
                    Status::Done
                }
            }
        }
        let g = gen::cycle(9);
        let cfg = SimConfig::default().strict();
        let seq_err = super::super::SequentialRuntime
            .execute(&g, &Fat, &cfg)
            .unwrap_err();
        match seq_err {
            SimError::Bandwidth { bits, .. } => assert_eq!(bits, 1 << 20),
            ref other => panic!("expected bandwidth error, got {other:?}"),
        }
        for threads in [2usize, 3, 5] {
            for _ in 0..3 {
                let err = ParallelRuntime::new(threads)
                    .execute(&g, &Fat, &cfg)
                    .unwrap_err();
                assert_eq!(err, seq_err, "error diverged with {threads} threads");
            }
        }
    }
}
