//! Single-barrier batched-transport parallel runtime.
//!
//! Nodes are sharded over worker threads. Within a round, each worker steps
//! its own nodes; messages crossing shard boundaries are accumulated in
//! per-(source-shard → destination-shard) batch buffers exchanged wholesale
//! at a round barrier — zero per-message channel sends or allocations on
//! the cross-shard path.
//!
//! # The single-barrier protocol
//!
//! Each communication round has two phases: **A** (step nodes, stage
//! outgoing batches, count termination votes) and **B** (drain inbound
//! batches, rotate inboxes, evaluate termination). One barrier separates
//! A from B; there is **no second barrier** between B and the next round's
//! A. The earlier two-barrier design needed the second one so that a fast
//! shard's next publish could not overwrite a batch a slow shard was still
//! draining. That hand-off is now race-free by construction:
//!
//! * **Parity-double-buffered cells.** The mailbox cell for
//!   `(src, dst)` is an array of two buffers indexed by `sync % 2`, where
//!   `sync` counts barriers so far. Phase A of sync `k` writes parity
//!   `k % 2`; phase B of sync `k` drains the same parity. The next write
//!   to that parity happens in phase A of sync `k + 2`. The barrier of
//!   sync `k + 1` sits between — and a shard only reaches it after
//!   finishing its phase B of sync `k` — so every drain strictly precedes
//!   the next overwrite. (Phase B of sync `k` runs concurrently with other
//!   shards' phase A of sync `k + 1`, which touches the *other* parity.)
//! * **Epoch stamps.** Each parity buffer carries an atomic epoch; a
//!   producer publishing a non-empty batch at sync `k` stamps it `k + 1`.
//!   Consumers skip the (uncontended, but not free) cell lock entirely
//!   unless the stamp matches the current sync — the swap handshake
//!   reduced to one atomic load per cell on the empty path. The stamp
//!   lives beside its buffer (not per cell) because phase B of sync `k`
//!   overlaps phase A of sync `k + 1`.
//! * **Epoch-rotated vote counters.** Unanimous-`Done` counts and the
//!   strict-bandwidth abort flag live in three atomic slots indexed by
//!   `sync % 3`: written in phase A, read in phase B, and reset by shard 0
//!   two syncs later — the earliest point at which the barrier ordering
//!   proves no reader or writer can still touch the slot. (A single,
//!   unrotated flag would let a shard observe a flag raised one sync in
//!   the future and break early — deserting the flagging shard at the next
//!   barrier.)
//!
//! The barrier itself is a sense-reversing spin barrier
//! ([`super::barrier::SpinBarrier`]): worker counts are small and rounds
//! are short, so spinning beats the mutex/condvar handshake of
//! `std::sync::Barrier` by an order of magnitude on light rounds. A panic
//! in any worker (protocol bug) poisons the barrier so the remaining
//! workers panic too instead of deadlocking.
//!
//! # Round batching
//!
//! Protocols declaring a [`Protocol::sync_period`] of `p` communicate only
//! every `p`-th round; the engine then runs the `p - 1` silent rounds
//! between communication rounds entirely locally — no publish, no barrier,
//! no drain — and synchronizes once per `p` simulator rounds.
//!
//! # Active-set scheduling
//!
//! Under the default active-set schedule (see the [module docs](super))
//! each shard keeps a wake frontier over its *local* indices; wakes for
//! nodes in other shards ride in the same epoch-stamped mail cells as the
//! messages that cause them (a drained delivery wakes its destination for
//! the next round in phase B), so parking adds no synchronization beyond
//! the existing barrier. The sticky-vote unanimity check uses two extra
//! epoch-rotated slot arrays with the same `sync % 3` discipline as the
//! done counters: `running_slots` accumulates per-shard sticky-`Running`
//! totals (a zero sum is exactly the reference's unanimity), and
//! `proj_slots` carries a one-round-ahead projection of the running count
//! under the plane's scheduled crash/recovery events, so that when a
//! crash removes the last `Running` vote every shard latches back to
//! always-stepping on the same round.
//!
//! # Determinism
//!
//! Per-node RNG streams depend only on `(seed, index)`, at most one
//! message arrives per port per round (the `Outbox` enforces the CONGEST
//! discipline), and inboxes are sorted by port before delivery, so the
//! observable behavior is bit-identical to
//! [`SequentialRuntime`](super::SequentialRuntime) regardless of thread
//! interleaving or batch arrival order (asserted by the differential
//! harness and the transport property tests).

use super::barrier::SpinBarrier;
use super::{node_rng, wake, RunResult, SimError, Sweep};
use crate::faults::{Fate, FaultPlane};
use crate::{
    Inbox, Message, Metrics, NetTables, NodeCtx, Outbox, Port, Protocol, Scheduling, SimConfig,
    Status, Wake,
};
use graphs::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One staged cross-shard message: destination node index, arrival port,
/// payload.
type Staged<M> = (u32, Port, M);

/// One direction of one shard pair: two parity buffers, each with the
/// epoch stamp of its most recent non-empty publish.
///
/// The stamp is per *parity buffer*, not per cell: a consumer's phase B of
/// sync `k` runs concurrently with the producer's phase A of sync `k + 1`,
/// so a shared stamp could be overwritten (to `k + 2`) before the consumer
/// compares it against `k + 1` — silently skipping a full batch.
struct MailCell<M> {
    bufs: [Mutex<Vec<Staged<M>>>; 2],
    epochs: [AtomicU64; 2],
}

impl<M> MailCell<M> {
    fn new() -> Self {
        MailCell {
            bufs: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            epochs: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

/// Multi-threaded engine with single-barrier batched message transport.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRuntime {
    threads: usize,
}

impl Default for ParallelRuntime {
    fn default() -> Self {
        ParallelRuntime::new(0)
    }
}

impl ParallelRuntime {
    /// Creates a runtime with the given worker-thread count
    /// (0 = available parallelism).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            threads
        };
        ParallelRuntime { threads }
    }

    /// Runs `protocol` to unanimous [`Status::Done`], building the network
    /// tables on the fly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    pub fn execute<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
    ) -> Result<RunResult<P::State>, SimError> {
        self.execute_with(graph, protocol, config, &NetTables::build(graph, config))
    }

    /// [`ParallelRuntime::execute`] with prebuilt [`NetTables`] — the
    /// allocation-light path multi-phase drivers use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or [`SimError::Bandwidth`] in strict mode.
    ///
    /// # Panics
    ///
    /// Panics if `net` was not built for `graph` (node or edge count
    /// mismatch — proceeding would mis-route messages and return silently
    /// wrong results), or if the protocol stages a message in a round its
    /// declared [`Protocol::sync_period`] marks silent — a protocol bug,
    /// like a duplicate send on a port.
    #[allow(clippy::too_many_lines)]
    pub fn execute_with<P: Protocol>(
        &self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
        net: &Arc<NetTables>,
    ) -> Result<RunResult<P::State>, SimError> {
        assert!(net.matches(graph), "NetTables built for a different graph");
        let n = graph.n();
        let period = protocol.sync_period().max(1);
        // Same aggregated budget rule as the sequential engine: a protocol
        // with sync_period `p` may pack `p` rounds of per-edge bandwidth
        // into each communication-round message.
        let budget = config.bandwidth_bits(n).saturating_mul(period);
        if n == 0 {
            return Ok(RunResult {
                states: Vec::new(),
                metrics: Metrics {
                    bandwidth_bits: budget,
                    ..Metrics::default()
                },
            });
        }
        let t = self.threads.min(n).max(1);
        let chunk = n.div_ceil(t);
        let shard_of = |v: usize| (v / chunk).min(t - 1);

        let mut ctxs = net.contexts();

        // The t×t transport matrix: `mailboxes[src][dst]` carries batches
        // from shard `src` to shard `dst`, parity-double-buffered per sync
        // (see the module docs). The same allocations shuttle back and
        // forth for the whole run.
        let mailboxes: Vec<Vec<MailCell<P::Msg>>> = (0..t)
            .map(|_| (0..t).map(|_| MailCell::new()).collect())
            .collect();

        let barrier = SpinBarrier::new(t);
        // Unanimous-Done vote counts and the strict-bandwidth abort flag,
        // both rotated over three sync epochs. A *single* abort flag would
        // deadlock the single-barrier protocol: phase B of sync `k`
        // overlaps other shards' phase A of sync `k + 1`, so a violation
        // flagged at `k + 1` could be (racily) observed by a shard still
        // evaluating sync `k`, making it break one sync earlier than the
        // flagging shard — which then waits forever on a barrier the early
        // breaker never reaches. Slot rotation pins every flag to the sync
        // it was raised in, so all shards break at the same sync.
        let done_slots = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
        // Active-set termination counters, rotated like `done_slots`: each
        // shard adds its count of non-crashed nodes whose sticky vote is
        // Running (`running_slots`, zero total ⇔ the always-step reference
        // would see unanimity this round) and its *projection* of that
        // count for the next round given the statically-known crash and
        // recovery events there (`proj_slots` — a zero total latches the
        // probe; see the module docs).
        let running_slots = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
        let proj_slots = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
        let abort_slots = [
            AtomicBool::new(false),
            AtomicBool::new(false),
            AtomicBool::new(false),
        ];
        // Errors are keyed by (round, node index) and the minimum key wins,
        // so the reported error is the first one in the sequential runtime's
        // node order — deterministic regardless of which shard records it
        // first. RoundLimitExceeded uses the maximum key: any bandwidth
        // violation outranks it.
        let first_error: Mutex<Option<((u64, usize), SimError)>> = Mutex::new(None);
        let global_metrics: Mutex<Metrics> = Mutex::new(Metrics {
            bandwidth_bits: budget,
            ..Metrics::default()
        });
        let out_states: Mutex<Vec<(usize, Vec<P::State>)>> = Mutex::new(Vec::new());
        // The fault schedule is built once, before the workers spawn, and
        // consulted read-only: fates are pure functions of (round, node,
        // port) and crash windows are precomputed, so every shard computes
        // the same trace as the sequential engine (see `faults`).
        let plane: Option<FaultPlane> = config
            .faults
            .as_ref()
            .map(|f| FaultPlane::new(f, config.rng_salt, n));
        // Watchdog aggregation for the structured round-limit diagnostic.
        // Both quantities are shard-decomposable: global live count is the
        // sum of per-shard live counts, global last-progress round is the
        // max over shards. Written only on the round-limit path, where all
        // shards exhaust the loop together.
        let live_total = AtomicU64::new(0);
        let progress_max = AtomicU64::new(0);

        // Disjoint mutable context slices, one per shard.
        let mut ctx_chunks: Vec<&mut [NodeCtx]> = ctxs.chunks_mut(chunk).collect();
        while ctx_chunks.len() < t {
            ctx_chunks.push(&mut []);
        }

        std::thread::scope(|scope| {
            for (shard, ctx_slice) in ctx_chunks.into_iter().enumerate() {
                let start = shard * chunk;
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                let done_slots = &done_slots;
                let running_slots = &running_slots;
                let proj_slots = &proj_slots;
                let abort_slots = &abort_slots;
                let first_error = &first_error;
                let global_metrics = &global_metrics;
                let out_states = &out_states;
                let net = &net;
                let plane = plane.as_ref();
                let live_total = &live_total;
                let progress_max = &progress_max;
                scope.spawn(move || {
                    // Poison the barrier if this worker unwinds (protocol
                    // bug) so peers panic instead of spinning forever.
                    let _poison = barrier.poison_guard();
                    let local_n = ctx_slice.len();
                    let mut rngs: Vec<_> = (0..local_n)
                        .map(|i| node_rng(config.rng_seed(), (start + i) as u32))
                        .collect();
                    let mut states: Vec<P::State> = ctx_slice
                        .iter()
                        .zip(rngs.iter_mut())
                        .map(|(c, r)| protocol.init(c, r))
                        .collect();
                    // A duplicating plane can deliver two copies per port in
                    // one round; size inboxes for it so the steady state
                    // stays allocation-free.
                    let dups = config.faults.as_ref().is_some_and(|f| f.dup_per_million > 0);
                    let mut cur: Vec<Inbox<P::Msg>> = (0..local_n)
                        .map(|i| {
                            Inbox::with_capacity(Inbox::<P::Msg>::round_capacity(
                                graph.degree((start + i) as u32),
                                dups,
                            ))
                        })
                        .collect();
                    let mut next: Vec<Inbox<P::Msg>> = (0..local_n)
                        .map(|i| {
                            Inbox::with_capacity(Inbox::<P::Msg>::round_capacity(
                                graph.degree((start + i) as u32),
                                dups,
                            ))
                        })
                        .collect();
                    let mut out: Outbox<P::Msg> = Outbox::new(0);
                    // Private outgoing batch per destination shard, reused
                    // (and capacity-recycled via the swap) every sync.
                    let mut out_bufs: Vec<Vec<Staged<P::Msg>>> =
                        (0..t).map(|_| Vec::new()).collect();
                    let mut metrics = Metrics {
                        bandwidth_bits: budget,
                        ..Metrics::default()
                    };
                    let has_crashes = plane.is_some_and(FaultPlane::has_crashes);
                    // Active-set scheduling, gated exactly as in the
                    // sequential engine; every shard computes the same
                    // value and all later transitions (the probe latch) are
                    // driven by barrier-shared totals, so the shards always
                    // agree on the mode.
                    let mut active = config.scheduling == Scheduling::ActiveSet
                        && !(has_crashes && period > 1);
                    // Sticky votes over local nodes (see the sequential
                    // engine): `local_running` counts non-crashed local
                    // nodes whose latest communication-round vote was
                    // Running; the global termination signal is the
                    // barrier-summed total.
                    let mut sticky: Vec<Status> = vec![Status::Running; local_n];
                    let mut local_running: u64 = local_n as u64;
                    let mut last_progress: u64 = 0;

                    // Per-shard frontier machinery over local indices
                    // (mirrors the sequential engine; see module docs).
                    let mut frontier: Vec<u32> = Vec::new();
                    let mut next_frontier: Vec<u32> = Vec::new();
                    let mut stamp: Vec<u64> = Vec::new();
                    let mut in_cur: Vec<bool> = Vec::new();
                    let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
                    let mut heap_round: Vec<u64> = Vec::new();
                    let mut crash_events: Vec<(u64, u32)> = Vec::new();
                    let mut recovery_events: Vec<(u64, u32)> = Vec::new();
                    let (mut ci, mut ri) = (0usize, 0usize);
                    if active {
                        frontier = (0..local_n as u32).collect();
                        next_frontier = Vec::with_capacity(local_n);
                        stamp = vec![0; local_n];
                        in_cur = vec![false; local_n];
                        heap_round = vec![u64::MAX; local_n];
                        if let Some(p) = plane {
                            for i in 0..local_n {
                                if let Some((s, e)) = p.crash_window(start + i) {
                                    crash_events.push((s, i as u32));
                                    if e != u64::MAX {
                                        recovery_events.push((e, i as u32));
                                    }
                                }
                            }
                            crash_events.sort_unstable();
                            recovery_events.sort_unstable();
                        }
                    }

                    // Number of completed synchronizations; drives the cell
                    // parity and the vote-slot rotation. Equals the round
                    // number while period == 1.
                    let mut sync: u64 = 0;
                    let mut finished_ok = false;
                    let mut saw_abort = false;
                    for round in 0..config.max_rounds {
                        let comm = round.is_multiple_of(period);
                        if active {
                            // Assemble this round's local frontier: matured
                            // `Wake::At` requests and fault-plane events.
                            while let Some(&(Reverse(tt), i)) = heap.peek() {
                                if tt > round {
                                    break;
                                }
                                heap.pop();
                                if tt == round && heap_round[i as usize] == tt {
                                    heap_round[i as usize] = u64::MAX;
                                    wake(&mut stamp, &mut frontier, i as usize, round);
                                }
                            }
                            while ci < crash_events.len() && crash_events[ci].0 == round {
                                let i = crash_events[ci].1 as usize;
                                ci += 1;
                                if sticky[i] == Status::Running {
                                    local_running -= 1;
                                }
                            }
                            while ri < recovery_events.len() && recovery_events[ri].0 == round {
                                let i = recovery_events[ri].1 as usize;
                                ri += 1;
                                if sticky[i] == Status::Running {
                                    local_running += 1;
                                }
                                wake(&mut stamp, &mut frontier, i, round);
                            }
                        }
                        let stepping_all = !active;
                        // ---- Phase A: step woken local nodes, stage
                        // messages.
                        let mut local_done = 0u64;
                        let mut progressed = false;
                        let sweep = if stepping_all {
                            Sweep::All
                        } else if frontier.len() * 4 >= local_n {
                            for &i in &frontier {
                                in_cur[i as usize] = true;
                            }
                            Sweep::Dense
                        } else {
                            frontier.sort_unstable();
                            Sweep::Sparse
                        };
                        let count = match sweep {
                            Sweep::All | Sweep::Dense => local_n,
                            Sweep::Sparse => frontier.len(),
                        };
                        for s in 0..count {
                            let i = match sweep {
                                Sweep::All => s,
                                Sweep::Sparse => frontier[s] as usize,
                                Sweep::Dense => {
                                    if !in_cur[s] {
                                        continue;
                                    }
                                    in_cur[s] = false;
                                    s
                                }
                            };
                            let v = start + i;
                            if let Some(p) = plane {
                                if p.is_crashed(v, round) {
                                    // Crashed node: not stepped, votes Done
                                    // implicitly (see `faults` module docs);
                                    // crashed node-rounds are counted
                                    // analytically at termination.
                                    local_done += 1;
                                    continue;
                                }
                            }
                            ctx_slice[i].round = round;
                            cur[i].finalize();
                            out.reset(ctx_slice[i].degree());
                            metrics.stepped_nodes += 1;
                            let status = protocol.round(
                                &mut states[i],
                                &ctx_slice[i],
                                &mut rngs[i],
                                &cur[i],
                                &mut out,
                            );
                            cur[i].clear();
                            if status == Status::Done {
                                local_done += 1;
                            }
                            if comm && status != sticky[i] {
                                match status {
                                    Status::Done => local_running -= 1,
                                    Status::Running => local_running += 1,
                                }
                                sticky[i] = status;
                                progressed = true;
                            }
                            if active {
                                heap_round[i] = u64::MAX;
                                match protocol.next_wake(&states[i], &ctx_slice[i], status) {
                                    Wake::At(tt) if tt > round + 1 => {
                                        heap_round[i] = tt;
                                        heap.push((Reverse(tt), i as u32));
                                    }
                                    Wake::Next | Wake::At(_) => {
                                        wake(&mut stamp, &mut next_frontier, i, round + 1);
                                    }
                                    Wake::Message => {}
                                }
                            }
                            assert!(
                                comm || out.is_empty(),
                                "protocol declared sync_period {period} but node {v} sent in silent round {round}"
                            );
                            for (port, msg) in out.drain() {
                                progressed = true;
                                let bits = msg.bits();
                                metrics.record_message(bits, budget);
                                if config.strict_bandwidth && bits > budget {
                                    let mut e = first_error.lock().expect("no poisoned lock");
                                    let key = (round, v);
                                    if e.as_ref().is_none_or(|(k, _)| key < *k) {
                                        *e = Some((
                                            key,
                                            SimError::Bandwidth {
                                                round,
                                                bits,
                                                limit: budget,
                                            },
                                        ));
                                    }
                                    abort_slots[(sync % 3) as usize]
                                        .store(true, Ordering::SeqCst);
                                }
                                let copies = match plane
                                    .map_or(Fate::Deliver, |p| p.fate(round, v as u32, port))
                                {
                                    Fate::Drop => {
                                        metrics.faults_dropped += 1;
                                        0
                                    }
                                    Fate::Deliver => 1,
                                    Fate::Duplicate => {
                                        metrics.faults_duplicated += 1;
                                        2
                                    }
                                };
                                if copies == 0 {
                                    continue;
                                }
                                let dest = graph.neighbors(v as u32)[port as usize] as usize;
                                // Delivery lands at round + 1; a receiver
                                // crashed then loses the message (and any
                                // duplicate of it).
                                if plane.is_some_and(|p| p.is_crashed(dest, round + 1)) {
                                    metrics.crash_drops += 1;
                                    continue;
                                }
                                let arrival = net.reverse_ports_of(v as u32)[port as usize];
                                let ds = shard_of(dest);
                                if ds == shard {
                                    let li = dest - start;
                                    if copies == 2 {
                                        next[li].push(arrival, msg.clone());
                                    }
                                    next[li].push(arrival, msg);
                                    if active {
                                        // Message arrivals always wake their
                                        // destination.
                                        wake(&mut stamp, &mut next_frontier, li, round + 1);
                                    }
                                } else {
                                    if copies == 2 {
                                        out_bufs[ds].push((dest as u32, arrival, msg.clone()));
                                    }
                                    out_bufs[ds].push((dest as u32, arrival, msg));
                                }
                            }
                        }
                        if progressed {
                            last_progress = round;
                        }
                        metrics.rounds = round + 1;

                        if !comm {
                            // Silent round: no messages in flight anywhere,
                            // so just rotate buffers locally and move on —
                            // no publish, no barrier, no drain. Stepped
                            // nodes cleared their inboxes at their step and
                            // parked ones hold empty inboxes, so the swap
                            // alone readies both buffers.
                            std::mem::swap(&mut cur, &mut next);
                            if active {
                                std::mem::swap(&mut frontier, &mut next_frontier);
                                next_frontier.clear();
                            }
                            continue;
                        }

                        let parity = (sync % 2) as usize;
                        // Publish this sync's batches: swap each non-empty
                        // private buffer into its parity cell (taking back
                        // the buffer drained two syncs ago) and stamp the
                        // cell's epoch so consumers can skip empty cells
                        // with one atomic load.
                        for (ds, buf) in out_bufs.iter_mut().enumerate() {
                            if ds != shard && !buf.is_empty() {
                                let cell = &mailboxes[shard][ds];
                                {
                                    let mut slot =
                                        cell.bufs[parity].lock().expect("no poisoned lock");
                                    debug_assert!(slot.is_empty(), "cell drained two syncs ago");
                                    std::mem::swap(&mut *slot, buf);
                                }
                                cell.epochs[parity].store(sync + 1, Ordering::SeqCst);
                            }
                        }
                        if stepping_all {
                            done_slots[(sync % 3) as usize]
                                .fetch_add(local_done, Ordering::SeqCst);
                        } else {
                            running_slots[(sync % 3) as usize]
                                .fetch_add(local_running, Ordering::SeqCst);
                            if has_crashes {
                                // Project this shard's running count at
                                // round + 1: the sequential engine latches
                                // its probe when round-start crash events
                                // zero the global count, and the only way
                                // every shard can see that before stepping
                                // round + 1 is to sum the projections at
                                // *this* round's barrier. Peek the event
                                // cursors without advancing them — the top
                                // of round + 1 will consume the same events
                                // for real. (`active` under crashes forces
                                // period == 1, so every round passes here.)
                                let mut proj = local_running;
                                let mut cj = ci;
                                while cj < crash_events.len()
                                    && crash_events[cj].0 == round + 1
                                {
                                    let i = crash_events[cj].1 as usize;
                                    cj += 1;
                                    if sticky[i] == Status::Running {
                                        proj -= 1;
                                    }
                                }
                                let mut rj = ri;
                                while rj < recovery_events.len()
                                    && recovery_events[rj].0 == round + 1
                                {
                                    let i = recovery_events[rj].1 as usize;
                                    rj += 1;
                                    if sticky[i] == Status::Running {
                                        proj += 1;
                                    }
                                }
                                proj_slots[(sync % 3) as usize]
                                    .fetch_add(proj, Ordering::SeqCst);
                            }
                        }

                        barrier.wait();

                        // ---- Phase B: drain the inbound column, rotate
                        // inboxes, evaluate termination. Cross-shard
                        // arrivals wake their destinations here — this is
                        // where the peer shards' wake lists merge into the
                        // local frontier. No clear/finalize sweeps: stepped
                        // nodes cleared their inboxes at their step, parked
                        // ones hold empty inboxes, and finalize is lazy
                        // (just before a woken node steps).
                        for row in mailboxes.iter() {
                            let cell = &row[shard];
                            if cell.epochs[parity].load(Ordering::SeqCst) == sync + 1 {
                                let mut slot = cell.bufs[parity].lock().expect("no poisoned lock");
                                for (dest, port, msg) in slot.drain(..) {
                                    let li = dest as usize - start;
                                    next[li].push(port, msg);
                                    if active {
                                        wake(&mut stamp, &mut next_frontier, li, round + 1);
                                    }
                                }
                            }
                        }
                        std::mem::swap(&mut cur, &mut next);
                        if active {
                            std::mem::swap(&mut frontier, &mut next_frontier);
                            next_frontier.clear();
                        }
                        let slot = (sync % 3) as usize;
                        let terminate = if stepping_all {
                            done_slots[slot].load(Ordering::SeqCst) == n as u64
                        } else {
                            // Zero sticky-Running votes globally ⇔ the
                            // always-step reference would see unanimity.
                            running_slots[slot].load(Ordering::SeqCst) == 0
                        };
                        let aborted = abort_slots[slot].load(Ordering::SeqCst);
                        // A zero projected running count for round + 1 can
                        // only come from crash events there; latch the probe
                        // (permanently step everyone, classic unanimity) in
                        // lockstep across shards — see the sequential
                        // engine's round-start latch.
                        let latch = !stepping_all
                            && has_crashes
                            && proj_slots[slot].load(Ordering::SeqCst) == 0;
                        if shard == 0 {
                            // Reset the slots for sync + 2: their last
                            // readers finished in phase B of sync - 1,
                            // which happens-before this phase B; their next
                            // writers start in phase A of sync + 2, which
                            // happens-after (module docs).
                            let reset = ((sync + 2) % 3) as usize;
                            done_slots[reset].store(0, Ordering::SeqCst);
                            running_slots[reset].store(0, Ordering::SeqCst);
                            proj_slots[reset].store(0, Ordering::SeqCst);
                            abort_slots[reset].store(false, Ordering::SeqCst);
                        }
                        sync += 1;
                        if aborted {
                            saw_abort = true;
                            break;
                        }
                        if terminate {
                            finished_ok = true;
                            break;
                        }
                        if latch {
                            active = false;
                        }
                    }
                    if finished_ok {
                        // Crashed node-rounds, analytically: the engine
                        // never scans crashed nodes, so count each local
                        // crash window's overlap with the rounds actually
                        // executed (every shard broke at the same round, so
                        // `metrics.rounds` is still the global count here).
                        if let Some(p) = plane {
                            let r = metrics.rounds;
                            for i in 0..local_n {
                                if let Some((s, e)) = p.crash_window(start + i) {
                                    metrics.crashed_rounds += e.min(r) - s.min(r);
                                }
                            }
                        }
                    }
                    if !finished_ok && !saw_abort {
                        // Contribute this shard's watchdog share; the final
                        // live/progress fields are patched in after the
                        // scope joins, once every shard has reported. Live
                        // nodes are those still voting Running per their
                        // sticky communication-round vote, excluding nodes
                        // the plane had crashed when the limit hit —
                        // crashed nodes vote Done implicitly and must not
                        // be reported as live work.
                        let last = config.max_rounds.saturating_sub(1);
                        let live = (0..local_n)
                            .filter(|&i| {
                                sticky[i] == Status::Running
                                    && !plane.is_some_and(|p| p.is_crashed(start + i, last))
                            })
                            .count();
                        live_total.fetch_add(live as u64, Ordering::SeqCst);
                        progress_max.fetch_max(last_progress, Ordering::SeqCst);
                        let mut e = first_error.lock().expect("no poisoned lock");
                        if e.is_none() {
                            *e = Some((
                                (u64::MAX, usize::MAX),
                                SimError::RoundLimitExceeded {
                                    limit: config.max_rounds,
                                    phase: config.phase_label.clone(),
                                    live_nodes: 0,
                                    last_progress_round: 0,
                                },
                            ));
                        }
                    }
                    // Only shard 0 reports the round count (identical everywhere).
                    if shard != 0 {
                        metrics.rounds = 0;
                    }
                    global_metrics
                        .lock()
                        .expect("no poisoned lock")
                        .absorb(&metrics);
                    out_states
                        .lock()
                        .expect("no poisoned lock")
                        .push((start, states));
                });
            }
        });

        if let Some((_, mut err)) = first_error.into_inner().expect("no poisoned lock") {
            // Patch the aggregated watchdog diagnostics into the
            // round-limit error now that all shards have reported.
            if let SimError::RoundLimitExceeded {
                live_nodes,
                last_progress_round,
                ..
            } = &mut err
            {
                *live_nodes = live_total.load(Ordering::SeqCst);
                *last_progress_round = progress_max.load(Ordering::SeqCst);
            }
            return Err(err);
        }
        let mut shards = out_states.into_inner().expect("no poisoned lock");
        shards.sort_by_key(|&(s, _)| s);
        let states: Vec<P::State> = shards.into_iter().flat_map(|(_, v)| v).collect();
        let mut metrics = global_metrics.into_inner().expect("no poisoned lock");
        metrics.bandwidth_bits = budget;
        Ok(RunResult { states, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeRng;
    use graphs::gen;
    use rand::Rng;

    /// Randomized gossip: each node repeatedly sends a random value to a
    /// random neighbor and tracks the sum of everything it received.
    /// Exercises RNG determinism and cross-shard delivery.
    struct Gossip {
        rounds: u64,
    }

    #[derive(Debug, Clone, PartialEq)]
    struct GossipState {
        sum: u64,
    }

    impl Protocol for Gossip {
        type State = GossipState;
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> GossipState {
            GossipState { sum: 0 }
        }
        fn round(
            &self,
            st: &mut GossipState,
            ctx: &NodeCtx,
            rng: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(p, x) in inbox {
                st.sum = st.sum.wrapping_add(x.wrapping_mul(u64::from(p) + 1));
            }
            if ctx.round < self.rounds && ctx.degree() > 0 {
                let port = rng.gen_range(0..ctx.degree()) as Port;
                out.send(port, rng.gen_range(0..1000));
                Status::Running
            } else if ctx.round < self.rounds {
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_graph() {
        let g = gen::gnp_capped(150, 0.08, 10, 77);
        let cfg = SimConfig::seeded(123);
        let p = Gossip { rounds: 25 };
        let seq = super::super::run(&g, &p, &cfg).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = ParallelRuntime::new(threads).execute(&g, &p, &cfg).unwrap();
            assert_eq!(
                seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                par.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                "mismatch with {threads} threads"
            );
            assert_eq!(seq.metrics.rounds, par.metrics.rounds);
            assert_eq!(seq.metrics.messages, par.metrics.messages);
            assert_eq!(seq.metrics.total_bits, par.metrics.total_bits);
        }
    }

    #[test]
    fn parallel_round_limit() {
        struct Forever;
        impl Protocol for Forever {
            type State = ();
            type Msg = ();
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                _: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<()>,
                _: &mut Outbox<()>,
            ) -> Status {
                Status::Running
            }
        }
        let g = gen::cycle(12);
        let cfg = SimConfig::default()
            .with_max_rounds(5)
            .with_phase_label("forever");
        let err = ParallelRuntime::new(3)
            .execute(&g, &Forever, &cfg)
            .unwrap_err();
        // The structured watchdog diagnostics must match the sequential
        // engine's bit for bit.
        let seq_err = super::super::SequentialRuntime
            .execute(&g, &Forever, &cfg)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 5,
                phase: "forever".into(),
                live_nodes: 12,
                last_progress_round: 0,
            }
        );
        assert_eq!(err, seq_err);
    }

    #[test]
    fn fault_plane_trace_is_engine_independent() {
        use crate::faults::FaultConfig;
        let g = gen::gnp_capped(150, 0.08, 10, 77);
        let p = Gossip { rounds: 25 };
        for faults in [
            FaultConfig::seeded(7).with_drops(80_000),
            FaultConfig::seeded(7).with_drops(50_000).with_dups(50_000),
            FaultConfig::seeded(9)
                .with_drops(30_000)
                .with_crashes(120_000, 20, 5),
        ] {
            let cfg = SimConfig::seeded(123).with_faults(faults);
            let seq = super::super::run(&g, &p, &cfg).unwrap();
            assert!(
                seq.metrics.faults_dropped > 0,
                "fault plane must actually fire for the test to mean anything"
            );
            for threads in [1, 2, 3, 8] {
                let par = ParallelRuntime::new(threads).execute(&g, &p, &cfg).unwrap();
                assert_eq!(
                    seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                    par.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
                    "fault trace diverged with {threads} threads"
                );
                assert_eq!(seq.metrics, par.metrics, "metrics diverged at {threads}");
            }
        }
    }

    #[test]
    fn faults_disabled_is_bit_identical_to_no_fault_field() {
        // `faults: None` must leave the engine byte-for-byte on its
        // fault-free path — the PR5 benchmarks depend on it.
        let g = gen::gnp_capped(80, 0.1, 8, 3);
        let p = Gossip { rounds: 15 };
        let base = SimConfig::seeded(9);
        let with_field = base.clone().without_faults();
        let a = super::super::run(&g, &p, &base).unwrap();
        let b = super::super::run(&g, &p, &with_field).unwrap();
        assert_eq!(
            a.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
            b.states.iter().map(|s| s.sum).collect::<Vec<_>>()
        );
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.faults_dropped, 0);
        assert_eq!(a.metrics.crashed_rounds, 0);
    }

    #[test]
    fn drops_shrink_delivery_and_duplicates_add_copies() {
        use crate::faults::FaultConfig;
        /// Counts every message copy that arrives, making delivered
        /// (post-fault) traffic observable.
        struct CountArrivals;
        impl Protocol for CountArrivals {
            type State = u64;
            type Msg = u32;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> u64 {
                0
            }
            fn round(
                &self,
                st: &mut u64,
                ctx: &NodeCtx,
                _: &mut NodeRng,
                inbox: &Inbox<u32>,
                out: &mut Outbox<u32>,
            ) -> Status {
                *st += inbox.len() as u64;
                if ctx.round < 30 {
                    out.broadcast(1);
                    Status::Running
                } else {
                    Status::Done
                }
            }
        }
        let g = gen::cycle(40);
        let clean = super::super::run(&g, &CountArrivals, &SimConfig::seeded(4)).unwrap();
        let dropped = super::super::run(
            &g,
            &CountArrivals,
            &SimConfig::seeded(4).with_faults(FaultConfig::seeded(1).with_drops(200_000)),
        )
        .unwrap();
        let duped = super::super::run(
            &g,
            &CountArrivals,
            &SimConfig::seeded(4).with_faults(FaultConfig::seeded(1).with_dups(200_000)),
        )
        .unwrap();
        let arrivals = |r: &RunResult<u64>| r.states.iter().sum::<u64>();
        // Send-side accounting is fate-independent…
        assert_eq!(clean.metrics.messages, dropped.metrics.messages);
        assert_eq!(clean.metrics.messages, duped.metrics.messages);
        // …but delivery reflects the injected faults exactly.
        assert_eq!(
            arrivals(&dropped),
            arrivals(&clean) - dropped.metrics.faults_dropped
        );
        assert_eq!(
            arrivals(&duped),
            arrivals(&clean) + duped.metrics.faults_duplicated
        );
        assert!(dropped.metrics.faults_dropped > 0);
        assert!(duped.metrics.faults_duplicated > 0);
    }

    #[test]
    fn crashed_receiver_loses_messages() {
        use crate::faults::FaultConfig;
        let g = gen::cycle(30);
        let p = Gossip { rounds: 20 };
        // Crash probability high enough that some node crashes, window
        // inside the active rounds.
        let faults = FaultConfig::seeded(3).with_crashes(300_000, 10, 4);
        let cfg = SimConfig::seeded(8).with_faults(faults);
        let res = super::super::run(&g, &p, &cfg).unwrap();
        assert!(res.metrics.crashed_rounds > 0, "no node ever crashed");
        assert!(res.metrics.crash_drops > 0, "no message hit a crashed node");
        // Parallel engine agrees on the crash trace too.
        let par = ParallelRuntime::new(4).execute(&g, &p, &cfg).unwrap();
        assert_eq!(res.metrics, par.metrics);
    }

    #[test]
    fn parallel_empty_graph() {
        let g = gen::empty(0);
        let res = ParallelRuntime::new(4)
            .execute(&g, &Gossip { rounds: 3 }, &SimConfig::default())
            .unwrap();
        assert!(res.states.is_empty());
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = gen::path(3);
        let p = Gossip { rounds: 5 };
        let cfg = SimConfig::seeded(5);
        let seq = super::super::run(&g, &p, &cfg).unwrap();
        let par = ParallelRuntime::new(64).execute(&g, &p, &cfg).unwrap();
        assert_eq!(
            seq.states.iter().map(|s| s.sum).collect::<Vec<_>>(),
            par.states.iter().map(|s| s.sum).collect::<Vec<_>>()
        );
    }

    #[test]
    fn strict_bandwidth_aborts_in_parallel_with_sequential_error() {
        /// Every node sends one oversized message whose size encodes its
        /// index, so the *identity* of the reported violation is
        /// observable: it must be the first one in node order — the same
        /// error the sequential runtime returns — on every run.
        struct Fat;
        #[derive(Debug, Clone)]
        struct Huge(u64);
        impl Message for Huge {
            fn bits(&self) -> u64 {
                (1 << 20) + self.0
            }
        }
        impl Protocol for Fat {
            type State = ();
            type Msg = Huge;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                ctx: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<Huge>,
                out: &mut Outbox<Huge>,
            ) -> Status {
                if ctx.round == 0 {
                    out.broadcast(Huge(u64::from(ctx.index)));
                    Status::Running
                } else {
                    Status::Done
                }
            }
        }
        let g = gen::cycle(9);
        let cfg = SimConfig::default().strict();
        let seq_err = super::super::SequentialRuntime
            .execute(&g, &Fat, &cfg)
            .unwrap_err();
        match seq_err {
            SimError::Bandwidth { bits, .. } => assert_eq!(bits, 1 << 20),
            ref other => panic!("expected bandwidth error, got {other:?}"),
        }
        for threads in [2usize, 3, 5] {
            for _ in 0..3 {
                let err = ParallelRuntime::new(threads)
                    .execute(&g, &Fat, &cfg)
                    .unwrap_err();
                assert_eq!(err, seq_err, "error diverged with {threads} threads");
            }
        }
    }

    #[test]
    fn worker_panic_poisons_instead_of_deadlocking() {
        /// Panics at round 2 on exactly one node; without barrier
        /// poisoning the other shards would spin forever.
        struct Bomb;
        impl Protocol for Bomb {
            type State = ();
            type Msg = u64;
            fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
            fn round(
                &self,
                _: &mut (),
                ctx: &NodeCtx,
                _: &mut NodeRng,
                _: &Inbox<u64>,
                out: &mut Outbox<u64>,
            ) -> Status {
                assert!(
                    !(ctx.round == 2 && ctx.index == 7),
                    "deliberate protocol bug"
                );
                out.broadcast(1);
                Status::Running
            }
        }
        let g = gen::cycle(12);
        let caught = std::panic::catch_unwind(|| {
            let _ = ParallelRuntime::new(4).execute(
                &g,
                &Bomb,
                &SimConfig::default().with_max_rounds(10),
            );
        });
        assert!(caught.is_err(), "panic must propagate, not deadlock");

        // Same bomb with workers oversubscribed (more threads than cores),
        // which zeroes the barrier's spin budget and forces every waiter
        // onto the condvar park path — the poison wakeup must reach parked
        // shards too. (The spin path is covered above whenever the box has
        // ≥ 4 cores, and deterministically by the barrier unit tests.)
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let threads = (2 * cores + 2).min(48);
        let g = gen::cycle(4 * threads);
        let caught = std::panic::catch_unwind(|| {
            let _ = ParallelRuntime::new(threads).execute(
                &g,
                &Bomb,
                &SimConfig::default().with_max_rounds(10),
            );
        });
        assert!(caught.is_err(), "park-path panic must propagate");
    }
}
