//! Simulation configuration.

use crate::faults::FaultConfig;
use graphs::Graph;

/// How `O(log n)`-bit identifiers are assigned to node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdAssignment {
    /// `ident = index`. Simplest; adequate for most experiments.
    Sequential,
    /// `ident` is a pseudorandom permutation of `0..n` derived from the run
    /// seed. Removes any accidental correlation between topology generation
    /// order and identifier order (Linial-style algorithms are sensitive to
    /// adversarial ID placement).
    Permuted,
}

/// Which engine executes a run. Both engines are bit-identical for the same
/// seed, so this only trades wall-clock; see [`RuntimeMode::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMode {
    /// The deterministic single-threaded reference engine.
    Sequential,
    /// The sharded single-barrier engine with the given worker count
    /// (0 = available parallelism).
    Parallel(usize),
    /// Pick per run: sequential for light networks where barrier overhead
    /// would dominate, parallel (with the given worker count, 0 = available
    /// parallelism) above [`AUTO_WORK_THRESHOLD`] estimated work units per
    /// round.
    Auto(usize),
}

/// How the engines decide which nodes to step each round. Both policies
/// are bit-identical in every observable (colorings, messages, rounds,
/// errors, fault counters) except [`Metrics::stepped_nodes`]; see
/// [`crate::runtime`] for the scheduling contract.
///
/// [`Metrics::stepped_nodes`]: crate::Metrics::stepped_nodes
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Step only woken nodes: non-empty inbox, a [`Wake`](crate::Wake)
    /// request from the node's last step, or an engine-scheduled wake
    /// (round 0, crash recovery). The default — round cost is
    /// O(active + messages).
    #[default]
    ActiveSet,
    /// Step every non-crashed node every round (the classic reference
    /// schedule). [`Protocol::next_wake`](crate::Protocol::next_wake) is
    /// never called. The differential harnesses run this against
    /// [`Scheduling::ActiveSet`] to prove the frontier sound.
    AlwaysStep,
}

impl Scheduling {
    /// Whether the engine actually runs the active-set frontier for a run
    /// with the given fault/batching shape.
    ///
    /// Parking is disabled when crashes meet round batching
    /// (`sync_period > 1`): a crash landing in a silent window could flip
    /// the unanimity outcome between rounds the engines never compare
    /// votes at, and no in-repo workload combines the two. Every engine —
    /// sequential, parallel, netplane — must apply this rule identically
    /// or their schedules (and `Metrics::stepped_nodes`) diverge, so it
    /// lives here, once.
    ///
    /// [`Metrics::stepped_nodes`]: crate::Metrics::stepped_nodes
    #[must_use]
    pub fn effective(self, has_crashes: bool, sync_period: u64) -> bool {
        self == Scheduling::ActiveSet && !(has_crashes && sync_period > 1)
    }
}

/// Per-round work threshold (in units of `n + 2m`) above which
/// [`RuntimeMode::Auto`] selects the parallel engine (given more than one
/// core — see [`RuntimeMode::resolve_for`]).
///
/// Calibrated from the `BENCH_PR1`/`BENCH_PR2` trajectory: barrier
/// overhead dominates the `n ≤ 600` cells (work ≤ ~6 600 units), which
/// lose under the parallel engine even after the single-barrier redesign,
/// while the `n = 2000` cells (work ≥ ~18 000 units) carry enough
/// per-round work to amortize one barrier per round on multicore hosts.
/// The threshold sits between the two clusters. To re-derive it: run
/// `cargo run --release -p d2color-bench --bin harness -- bench-pr2` on a
/// multicore host and put the cut anywhere between the largest
/// parallel-losing cell's work estimate and the smallest parallel-winning
/// cell's work estimate.
pub const AUTO_WORK_THRESHOLD: u64 = 12_000;

/// The per-round work estimate steering [`RuntimeMode::Auto`]: one unit per
/// node stepped plus one per directed edge (the upper bound on messages
/// handled per round).
#[must_use]
pub fn auto_work_estimate(graph: &Graph) -> u64 {
    graph.n() as u64 + 2 * graph.m() as u64
}

impl RuntimeMode {
    /// Resolves `Auto` against a concrete graph and this host's available
    /// parallelism, returning either `Sequential` or `Parallel`.
    #[must_use]
    pub fn resolve(self, graph: &Graph) -> RuntimeMode {
        self.resolve_for(
            graph,
            std::thread::available_parallelism().map_or(1, usize::from),
        )
    }

    /// [`RuntimeMode::resolve`] with an explicit core count.
    ///
    /// `Auto` picks the parallel engine only when (a) the host actually has
    /// more than one core — a time-sliced "parallel" run can never beat
    /// sequential, it only adds barrier hand-offs — and (b) the estimated
    /// per-round work clears [`AUTO_WORK_THRESHOLD`], so the barrier is
    /// amortized.
    #[must_use]
    pub fn resolve_for(self, graph: &Graph, cores: usize) -> RuntimeMode {
        match self {
            RuntimeMode::Auto(threads) => {
                if cores > 1 && auto_work_estimate(graph) >= AUTO_WORK_THRESHOLD {
                    RuntimeMode::Parallel(threads)
                } else {
                    RuntimeMode::Sequential
                }
            }
            other => other,
        }
    }
}

/// Coarse workload-scale buckets, used to preset simulator knobs for the
/// benchmark trajectory (`BENCH_PR3`'s `n ∈ {10⁴, 10⁵, 10⁶}` matrix and
/// the CI scale-smoke job).
///
/// The buckets matter because two defaults that are right for unit-test
/// graphs are wrong at a million nodes: the livelock cutoff
/// (`max_rounds = 5·10⁶` would let a buggy protocol spin for hours before
/// erroring — the paper's pipelines finish in `O(log ∆ · log n)` ≪ 10⁵
/// rounds at any of these scales) and the engine selection (explicitly
/// sequential is the right default for tiny graphs, size-adaptive
/// [`RuntimeMode::Auto`] for anything that might amortize a barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// `n < 10⁴`: unit-test and EXPERIMENTS.md territory.
    Small,
    /// `10⁴ ≤ n < 10⁶`: the benchmark-trajectory midrange.
    Large,
    /// `n ≥ 10⁶`: the scaling regime the O(n+m) generators open.
    Huge,
}

impl ScalePreset {
    /// The bucket a graph of `n` nodes falls into.
    #[must_use]
    pub fn of(n: usize) -> Self {
        match n {
            0..=9_999 => ScalePreset::Small,
            10_000..=999_999 => ScalePreset::Large,
            _ => ScalePreset::Huge,
        }
    }

    /// Livelock cutoff for this scale: generous multiples of the polylog
    /// round counts the paper's algorithms actually need, but small enough
    /// that a livelocked big run fails in minutes, not hours.
    #[must_use]
    pub fn max_rounds(self) -> u64 {
        match self {
            ScalePreset::Small => 5_000_000,
            ScalePreset::Large => 500_000,
            ScalePreset::Huge => 200_000,
        }
    }
}

/// Configuration for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Root seed; all node RNG streams derive from it.
    pub seed: u64,
    /// Extra salt mixed into node RNG streams but **not** into identifier
    /// assignment. Multi-phase drivers bump this per phase so that phases
    /// draw fresh randomness while the network's identifiers stay fixed.
    pub rng_salt: u64,
    /// Bandwidth budget per message: `bandwidth_factor · ⌈log₂ n⌉` bits,
    /// but never below `min_bandwidth_bits`. The CONGEST model allows
    /// `O(log n)`; the factor pins the constant.
    pub bandwidth_factor: u64,
    /// Floor for the per-message budget (keeps tiny test graphs usable).
    pub min_bandwidth_bits: u64,
    /// If `true`, a bandwidth violation aborts the run with
    /// [`SimError::Bandwidth`](crate::SimError); otherwise violations are
    /// only counted in [`Metrics`](crate::Metrics).
    pub strict_bandwidth: bool,
    /// Hard cutoff to catch livelocks; exceeding it is an error.
    pub max_rounds: u64,
    /// Identifier assignment policy.
    pub ids: IdAssignment,
    /// Engine selection for phase drivers. All modes are bit-identical;
    /// this only selects the execution strategy, so experiment harnesses
    /// can sweep the runtime dimension through configuration alone.
    pub runtime: RuntimeMode,
    /// Node-stepping policy (see [`Scheduling`]). [`Scheduling::ActiveSet`]
    /// by default; [`Scheduling::AlwaysStep`] forces the classic
    /// every-node-every-round reference schedule.
    pub scheduling: Scheduling,
    /// Optional fault injection: seeded message drops/duplicates and node
    /// crash/restart schedules (see [`crate::faults`]). `None` (the
    /// default) is the flawless network of the paper; every metric is then
    /// bit-identical to a build without the fault plane.
    pub faults: Option<FaultConfig>,
    /// Human-readable label of the pipeline phase this run executes,
    /// carried into [`SimError::RoundLimitExceeded`](crate::SimError)
    /// diagnostics so a stalled multi-phase run names its stalled phase.
    /// Drivers set it per phase; empty means "unnamed".
    pub phase_label: String,
}

impl SimConfig {
    /// A config with the given seed and library defaults otherwise.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Scale-aware config: the given seed, size-adaptive runtime (all
    /// cores when the parallel engine is picked), and the
    /// [`ScalePreset`]-tuned livelock cutoff for a graph of `n` nodes.
    /// The constructor the large-`n` benchmark matrix and the CI
    /// scale-smoke job use.
    #[must_use]
    pub fn at_scale(seed: u64, n: usize) -> Self {
        SimConfig::seeded(seed)
            .with_runtime(RuntimeMode::Auto(0))
            .with_max_rounds(ScalePreset::of(n).max_rounds())
    }

    /// The per-message budget in bits for a network of `n` nodes.
    #[must_use]
    pub fn bandwidth_bits(&self, n: usize) -> u64 {
        (self.bandwidth_factor * graphs::id_bits(n)).max(self.min_bandwidth_bits)
    }

    /// Returns `self` with strict bandwidth enforcement enabled.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict_bandwidth = true;
        self
    }

    /// Returns `self` with the round cutoff replaced.
    #[must_use]
    pub fn with_max_rounds(mut self, r: u64) -> Self {
        self.max_rounds = r;
        self
    }

    /// Returns `self` with the RNG salt replaced (fresh per-phase streams).
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.rng_salt = salt;
        self
    }

    /// Returns `self` with the runtime selection replaced.
    #[must_use]
    pub fn with_runtime(mut self, runtime: RuntimeMode) -> Self {
        self.runtime = runtime;
        self
    }

    /// Compatibility helper predating [`RuntimeMode`]: `None` = sequential,
    /// `Some(t)` = parallel with `t` workers (0 = all cores).
    #[must_use]
    pub fn with_threads(self, threads: Option<usize>) -> Self {
        self.with_runtime(match threads {
            None => RuntimeMode::Sequential,
            Some(t) => RuntimeMode::Parallel(t),
        })
    }

    /// Returns `self` with size-adaptive engine selection (`threads`
    /// workers when the parallel engine is chosen, 0 = all cores).
    #[must_use]
    pub fn auto(self, threads: usize) -> Self {
        self.with_runtime(RuntimeMode::Auto(threads))
    }

    /// Returns `self` with the node-stepping policy replaced.
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Returns `self` with the given fault model installed.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Returns `self` with fault injection disabled (the default).
    #[must_use]
    pub fn without_faults(mut self) -> Self {
        self.faults = None;
        self
    }

    /// Returns `self` with the diagnostic phase label replaced.
    #[must_use]
    pub fn with_phase_label(mut self, label: impl Into<String>) -> Self {
        self.phase_label = label.into();
        self
    }

    /// The effective seed for node RNG streams.
    #[must_use]
    pub(crate) fn rng_seed(&self) -> u64 {
        self.seed
            .wrapping_add(self.rng_salt.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xD15C0,
            rng_salt: 0,
            // Generous constant: single messages in the paper's protocols
            // carry up to two identifiers, a color, and a tag.
            bandwidth_factor: 8,
            min_bandwidth_bits: 64,
            strict_bandwidth: false,
            max_rounds: 5_000_000,
            ids: IdAssignment::Permuted,
            runtime: RuntimeMode::Sequential,
            scheduling: Scheduling::ActiveSet,
            faults: None,
            phase_label: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_scheduling_disables_parking_only_for_crashes_with_batching() {
        // The frontier runs whenever requested…
        assert!(Scheduling::ActiveSet.effective(false, 1));
        assert!(Scheduling::ActiveSet.effective(false, 5));
        assert!(Scheduling::ActiveSet.effective(true, 1));
        // …except when crashes meet round batching.
        assert!(!Scheduling::ActiveSet.effective(true, 2));
        // AlwaysStep never parks, whatever the run shape.
        for crashes in [false, true] {
            for period in [1, 2, 5] {
                assert!(!Scheduling::AlwaysStep.effective(crashes, period));
            }
        }
    }

    #[test]
    fn bandwidth_budget_scales_with_n() {
        let c = SimConfig {
            bandwidth_factor: 4,
            min_bandwidth_bits: 0,
            ..SimConfig::default()
        };
        assert_eq!(c.bandwidth_bits(1024), 40);
        assert_eq!(c.bandwidth_bits(1 << 20), 80);
    }

    #[test]
    fn bandwidth_floor_applies() {
        let c = SimConfig::default();
        assert_eq!(c.bandwidth_bits(4), 64);
    }

    #[test]
    fn builder_helpers() {
        let c = SimConfig::seeded(7).strict().with_max_rounds(10);
        assert_eq!(c.seed, 7);
        assert!(c.strict_bandwidth);
        assert_eq!(c.max_rounds, 10);
        assert_eq!(
            SimConfig::default().with_threads(Some(3)).runtime,
            RuntimeMode::Parallel(3)
        );
        assert_eq!(
            SimConfig::default().with_threads(None).runtime,
            RuntimeMode::Sequential
        );
        assert_eq!(SimConfig::default().auto(4).runtime, RuntimeMode::Auto(4));
        assert_eq!(SimConfig::default().scheduling, Scheduling::ActiveSet);
        assert_eq!(
            SimConfig::default()
                .with_scheduling(Scheduling::AlwaysStep)
                .scheduling,
            Scheduling::AlwaysStep
        );
    }

    #[test]
    fn fault_and_phase_builders() {
        let c = SimConfig::seeded(1)
            .with_faults(FaultConfig::seeded(9).with_drops(1000))
            .with_phase_label("linial");
        assert_eq!(c.faults.as_ref().map(|f| f.fault_seed), Some(9));
        assert_eq!(c.phase_label, "linial");
        assert!(c.without_faults().faults.is_none());
        assert!(SimConfig::default().faults.is_none());
    }

    #[test]
    fn scale_presets_bucket_and_cap() {
        assert_eq!(ScalePreset::of(100), ScalePreset::Small);
        assert_eq!(ScalePreset::of(10_000), ScalePreset::Large);
        assert_eq!(ScalePreset::of(999_999), ScalePreset::Large);
        assert_eq!(ScalePreset::of(1_000_000), ScalePreset::Huge);
        assert!(ScalePreset::Huge.max_rounds() < ScalePreset::Small.max_rounds());
        let c = SimConfig::at_scale(9, 1_000_000);
        assert_eq!(c.seed, 9);
        assert_eq!(c.runtime, RuntimeMode::Auto(0));
        assert_eq!(c.max_rounds, ScalePreset::Huge.max_rounds());
        // Small graphs keep the default generous cutoff.
        assert_eq!(
            SimConfig::at_scale(9, 500).max_rounds,
            SimConfig::default().max_rounds
        );
    }

    #[test]
    fn auto_resolution_follows_work_estimate_and_cores() {
        let small = graphs::gen::cycle(16);
        assert!(auto_work_estimate(&small) < AUTO_WORK_THRESHOLD);
        assert_eq!(
            RuntimeMode::Auto(4).resolve_for(&small, 8),
            RuntimeMode::Sequential
        );
        let big = graphs::gen::random_regular(4000, 8, 1);
        assert!(auto_work_estimate(&big) >= AUTO_WORK_THRESHOLD);
        assert_eq!(
            RuntimeMode::Auto(4).resolve_for(&big, 8),
            RuntimeMode::Parallel(4)
        );
        // A single-core host can never win by time-slicing shards.
        assert_eq!(
            RuntimeMode::Auto(4).resolve_for(&big, 1),
            RuntimeMode::Sequential
        );
        // Explicit modes resolve to themselves.
        assert_eq!(
            RuntimeMode::Parallel(2).resolve(&small),
            RuntimeMode::Parallel(2)
        );
        assert_eq!(
            RuntimeMode::Sequential.resolve(&big),
            RuntimeMode::Sequential
        );
    }
}
