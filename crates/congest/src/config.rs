//! Simulation configuration.

/// How `O(log n)`-bit identifiers are assigned to node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdAssignment {
    /// `ident = index`. Simplest; adequate for most experiments.
    Sequential,
    /// `ident` is a pseudorandom permutation of `0..n` derived from the run
    /// seed. Removes any accidental correlation between topology generation
    /// order and identifier order (Linial-style algorithms are sensitive to
    /// adversarial ID placement).
    Permuted,
}

/// Configuration for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Root seed; all node RNG streams derive from it.
    pub seed: u64,
    /// Extra salt mixed into node RNG streams but **not** into identifier
    /// assignment. Multi-phase drivers bump this per phase so that phases
    /// draw fresh randomness while the network's identifiers stay fixed.
    pub rng_salt: u64,
    /// Bandwidth budget per message: `bandwidth_factor · ⌈log₂ n⌉` bits,
    /// but never below `min_bandwidth_bits`. The CONGEST model allows
    /// `O(log n)`; the factor pins the constant.
    pub bandwidth_factor: u64,
    /// Floor for the per-message budget (keeps tiny test graphs usable).
    pub min_bandwidth_bits: u64,
    /// If `true`, a bandwidth violation aborts the run with
    /// [`SimError::Bandwidth`](crate::SimError); otherwise violations are
    /// only counted in [`Metrics`](crate::Metrics).
    pub strict_bandwidth: bool,
    /// Hard cutoff to catch livelocks; exceeding it is an error.
    pub max_rounds: u64,
    /// Identifier assignment policy.
    pub ids: IdAssignment,
    /// Worker threads for phase drivers: `None` = sequential runtime,
    /// `Some(0)` = parallel with available parallelism, `Some(t)` =
    /// parallel with `t` workers. Both runtimes are bit-identical; this
    /// only selects the engine, so experiment harnesses can sweep the
    /// runtime dimension through configuration alone.
    pub threads: Option<usize>,
}

impl SimConfig {
    /// A config with the given seed and library defaults otherwise.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// The per-message budget in bits for a network of `n` nodes.
    #[must_use]
    pub fn bandwidth_bits(&self, n: usize) -> u64 {
        (self.bandwidth_factor * graphs::id_bits(n)).max(self.min_bandwidth_bits)
    }

    /// Returns `self` with strict bandwidth enforcement enabled.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict_bandwidth = true;
        self
    }

    /// Returns `self` with the round cutoff replaced.
    #[must_use]
    pub fn with_max_rounds(mut self, r: u64) -> Self {
        self.max_rounds = r;
        self
    }

    /// Returns `self` with the RNG salt replaced (fresh per-phase streams).
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.rng_salt = salt;
        self
    }

    /// Returns `self` with the runtime selection replaced (`None` =
    /// sequential, `Some(t)` = parallel with `t` workers, 0 = all cores).
    #[must_use]
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The effective seed for node RNG streams.
    #[must_use]
    pub(crate) fn rng_seed(&self) -> u64 {
        self.seed
            .wrapping_add(self.rng_salt.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xD15C0,
            rng_salt: 0,
            // Generous constant: single messages in the paper's protocols
            // carry up to two identifiers, a color, and a tag.
            bandwidth_factor: 8,
            min_bandwidth_bits: 64,
            strict_bandwidth: false,
            max_rounds: 5_000_000,
            ids: IdAssignment::Permuted,
            threads: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_budget_scales_with_n() {
        let c = SimConfig {
            bandwidth_factor: 4,
            min_bandwidth_bits: 0,
            ..SimConfig::default()
        };
        assert_eq!(c.bandwidth_bits(1024), 40);
        assert_eq!(c.bandwidth_bits(1 << 20), 80);
    }

    #[test]
    fn bandwidth_floor_applies() {
        let c = SimConfig::default();
        assert_eq!(c.bandwidth_bits(4), 64);
    }

    #[test]
    fn builder_helpers() {
        let c = SimConfig::seeded(7).strict().with_max_rounds(10);
        assert_eq!(c.seed, 7);
        assert!(c.strict_bandwidth);
        assert_eq!(c.max_rounds, 10);
    }
}
