//! A synchronous CONGEST-model network simulator.
//!
//! The CONGEST model [Peleg 2000] is a synchronous message-passing model:
//! the input graph *is* the communication network, every node has a unique
//! `O(log n)`-bit identifier, and in each round every node may send one
//! message of at most `O(log n)` bits across each incident edge.
//!
//! This crate enforces the model mechanically:
//!
//! * **one message per directed edge per round** — the [`Outbox`] rejects a
//!   second send on the same port;
//! * **bandwidth accounting in bits** — every [`Message`] reports its size,
//!   and the engine records the maximum and counts violations of the
//!   `O(log n)` budget (or aborts, in strict mode);
//! * **locality** — a node program ([`Protocol`]) sees only its own state,
//!   its [`NodeCtx`] (ID, neighbor IDs by port, `n`, `∆`), its private RNG
//!   stream, and the current inbox.
//!
//! Two interchangeable runtimes execute protocols: a deterministic
//! [`SequentialRuntime`] and a [`ParallelRuntime`] that shards nodes over
//! worker threads and exchanges cross-shard messages through per-shard-pair
//! batch buffers hand-shaken with a *single* spin barrier per
//! communication round (no per-message sends or allocations; see the
//! [`runtime`] module docs for the epoch-counter protocol). Both produce
//! bit-identical results for the same seed, which is asserted by tests
//! (experiment E12), and [`RuntimeMode::Auto`] picks between them per run
//! from a calibrated work estimate. Protocols that communicate only every
//! `p`-th round can declare it ([`Protocol::sync_period`]) to batch `p`
//! simulator rounds per synchronization.
//!
//! Robustness experiments run against a deterministic fault plane
//! ([`faults`]): seeded per-(round, edge) message drops/duplicates and
//! per-node crash windows injected identically by every engine (the
//! multi-process [`netplane`] included), so a fault trace reproduces bit
//! for bit from its `(graph seed, fault seed)` pair.
//!
//! # Example
//!
//! ```
//! use congest::{Protocol, NodeCtx, NodeRng, Inbox, Outbox, Status, SimConfig, run};
//!
//! /// Every node learns the minimum identifier among its neighbors.
//! struct MinNeighbor;
//!
//! #[derive(Debug, Clone)]
//! struct St { min_seen: u64 }
//!
//! impl Protocol for MinNeighbor {
//!     type State = St;
//!     type Msg = u64;
//!     fn init(&self, ctx: &NodeCtx, _rng: &mut NodeRng) -> St {
//!         St { min_seen: ctx.ident }
//!     }
//!     fn round(&self, st: &mut St, ctx: &NodeCtx, _rng: &mut NodeRng,
//!              inbox: &Inbox<u64>, out: &mut Outbox<u64>) -> Status {
//!         if ctx.round == 0 {
//!             out.broadcast(ctx.ident);
//!             return Status::Running;
//!         }
//!         for &(_, id) in inbox.iter() {
//!             st.min_seen = st.min_seen.min(id);
//!         }
//!         Status::Done
//!     }
//! }
//!
//! # fn main() -> Result<(), congest::SimError> {
//! let g = graphs::gen::cycle(5);
//! let result = run(&g, &MinNeighbor, &SimConfig::default())?;
//! assert_eq!(result.metrics.rounds, 2);
//! # Ok(())
//! # }
//! ```

mod config;
pub mod faults;
mod message;
mod metrics;
mod net;
pub mod netplane;
mod node;
mod outbox;
mod protocol;
pub mod runtime;

pub use config::{
    auto_work_estimate, IdAssignment, RuntimeMode, ScalePreset, Scheduling, SimConfig,
    AUTO_WORK_THRESHOLD,
};
pub use faults::{Fate, FaultConfig, FaultPlane, PER_MILLION};
pub use message::{BitCost, Message, SmallIds};
pub use metrics::Metrics;
pub use net::NetTables;
pub use node::{NodeCtx, NodeRng, Port};
pub use outbox::{DuplicateDelivery, Inbox, Outbox};
pub use protocol::{Protocol, Status, Wake};
pub use runtime::{
    assigned_idents, run, run_parallel, run_with, ParallelRuntime, RunResult, SequentialRuntime,
    SimError,
};
