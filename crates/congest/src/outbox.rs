//! Inboxes and outboxes: the only I/O surface of a node program.

use crate::node::Port;
use std::fmt;

/// More than one message arrived on a single port in one round.
///
/// Only the fault plane's duplicate injection ([`crate::faults`]) can
/// produce this under the engines — the sending [`Outbox`] rejects
/// duplicate sends — so protocols that must distinguish "one message" from
/// "one message, delivered twice" use [`Inbox::from_port_strict`] and
/// surface this as a structured error instead of silently reading the
/// first copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateDelivery {
    /// The port carrying more than one message.
    pub port: Port,
    /// How many copies arrived (≥ 2).
    pub copies: usize,
}

impl fmt::Display for DuplicateDelivery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} messages delivered on port {} in one round \
             (CONGEST allows one message per edge per round)",
            self.copies, self.port
        )
    }
}

impl std::error::Error for DuplicateDelivery {}

/// Messages received this round, as `(port, message)` pairs sorted by port.
///
/// Sorting by port makes delivery order deterministic and identical across
/// runtimes.
#[derive(Debug)]
pub struct Inbox<M> {
    items: Vec<(Port, M)>,
}

impl<M> Inbox<M> {
    /// An inbox pre-sized to the most a round can deliver: the node's
    /// degree, or **twice** the degree when a duplicating fault plane is
    /// active (every port can carry the original plus one injected copy —
    /// see [`crate::faults::Fate::Duplicate`]). The engines pass the right
    /// bound via [`Inbox::round_capacity`]; one up-front allocation instead
    /// of `log₂ degree` growth doublings on the first busy rounds (the
    /// engines reuse the buffer for the whole run, so this is the inbox's
    /// only allocation ever).
    pub(crate) fn with_capacity(degree: usize) -> Self {
        Inbox {
            items: Vec::with_capacity(degree),
        }
    }

    /// The worst-case number of deliveries in one round for a node of
    /// `degree` under a plane that duplicates iff `dups` — the capacity
    /// that keeps the steady state allocation-free.
    pub(crate) fn round_capacity(degree: usize, dups: bool) -> usize {
        if dups {
            degree * 2
        } else {
            degree
        }
    }

    pub(crate) fn push(&mut self, port: Port, msg: M) {
        self.items.push((port, msg));
    }

    pub(crate) fn finalize(&mut self) {
        // Fast path: deliveries arrive in port order most of the time
        // (sequential runtime, and intra-shard traffic in the parallel
        // runtime); skip the sort when already sorted.
        if self.items.windows(2).all(|w| w[0].0 <= w[1].0) {
            return;
        }
        // Unstable sort keeps the steady-state round allocation-free (the
        // stable sort buys a merge buffer); it is still deterministic:
        // the Outbox delivers at most one message per port per round, so
        // keys are distinct except for fault-plane duplicates — and those
        // are bitwise copies of each other, making any reordering within
        // an equal run unobservable.
        self.items.sort_unstable_by_key(|&(p, _)| p);
    }

    pub(crate) fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates over `(port, message)` pairs in port order.
    pub fn iter(&self) -> std::slice::Iter<'_, (Port, M)> {
        self.items.iter()
    }

    /// The received `(port, message)` pairs as a port-ordered slice.
    ///
    /// This is the allocation-free way for a protocol to hand its inbox to
    /// helper code expecting `&[(Port, M)]` (the trial handshake, the
    /// gather cores, the sampler) — cloning the inbox into a fresh `Vec`
    /// per round was the single largest per-round allocation source in the
    /// coloring pipelines.
    #[must_use]
    pub fn as_slice(&self) -> &[(Port, M)] {
        &self.items
    }

    /// Number of messages received.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the inbox is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The message received on `port`, if any.
    ///
    /// **Contract**: under the engines' fault-free delivery rules at most
    /// one message arrives per port per round (the sending [`Outbox`]
    /// rejects duplicate sends), so the lookup has a unique answer. When
    /// the fault plane ([`crate::faults`]) injects a duplicate — or an
    /// inbox constructed outside the engines (tests) carries one — the
    /// *first* copy on `port` in sorted order is returned
    /// deterministically; since fault-plane duplicates are bitwise copies,
    /// first-copy semantics are indistinguishable from fault-free delivery
    /// for this accessor. Use [`Inbox::from_port_strict`] to detect the
    /// duplication instead of absorbing it.
    #[must_use]
    pub fn from_port(&self, port: Port) -> Option<&M> {
        // Lower bound of the (usually unit-length) run of entries at `port`.
        let i = self.items.partition_point(|&(p, _)| p < port);
        match self.items.get(i) {
            Some(&(p, ref m)) if p == port => Some(m),
            _ => None,
        }
    }

    /// [`Inbox::from_port`] that reports multiple deliveries on `port` as
    /// a structured [`DuplicateDelivery`] error instead of returning the
    /// first copy — for protocols (or harnesses) that audit the
    /// one-message-per-edge discipline at runtime rather than trusting
    /// first-copy absorption.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateDelivery`] if more than one message arrived on
    /// `port` this round.
    pub fn from_port_strict(&self, port: Port) -> Result<Option<&M>, DuplicateDelivery> {
        let i = self.items.partition_point(|&(p, _)| p < port);
        match self.items.get(i) {
            Some(&(p, ref m)) if p == port => {
                let copies = 1 + self.items[i + 1..]
                    .iter()
                    .take_while(|&&(q, _)| q == port)
                    .count();
                if copies > 1 {
                    Err(DuplicateDelivery { port, copies })
                } else {
                    Ok(Some(m))
                }
            }
            _ => Ok(None),
        }
    }
}

impl<'a, M> IntoIterator for &'a Inbox<M> {
    type Item = &'a (Port, M);
    type IntoIter = std::slice::Iter<'a, (Port, M)>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// Staging area for this round's outgoing messages.
///
/// Enforces the CONGEST discipline of **at most one message per incident
/// edge per round**.
#[derive(Debug)]
pub struct Outbox<M> {
    degree: usize,
    items: Vec<(Port, M)>,
    used: Vec<bool>,
}

impl<M: Clone> Outbox<M> {
    pub(crate) fn new(degree: usize) -> Self {
        Outbox {
            degree,
            items: Vec::new(),
            used: vec![false; degree],
        }
    }

    pub(crate) fn reset(&mut self, degree: usize) {
        self.degree = degree;
        self.items.clear();
        self.used.clear();
        self.used.resize(degree, false);
    }

    pub(crate) fn drain(&mut self) -> std::vec::Drain<'_, (Port, M)> {
        self.items.drain(..)
    }

    /// Sends `msg` on `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port ≥ degree` or if a message was already sent on `port`
    /// this round — both are protocol bugs, not runtime conditions.
    pub fn send(&mut self, port: Port, msg: M) {
        let p = port as usize;
        assert!(
            p < self.degree,
            "send on port {p} but degree is {}",
            self.degree
        );
        assert!(!self.used[p], "duplicate send on port {p} in one round (CONGEST allows one message per edge per round)");
        self.used[p] = true;
        self.items.push((port, msg));
    }

    /// Sends a copy of `msg` on every port.
    pub fn broadcast(&mut self, msg: M) {
        for p in 0..self.degree as Port {
            self.send(p, msg.clone());
        }
    }

    /// Sends a copy of `msg` on every port not yet used this round.
    pub fn broadcast_remaining(&mut self, msg: M) {
        for p in 0..self.degree {
            if !self.used[p] {
                self.send(p as Port, msg.clone());
            }
        }
    }

    /// Whether a message has already been staged on `port`.
    #[must_use]
    pub fn sent_on(&self, port: Port) -> bool {
        self.used.get(port as usize).copied().unwrap_or(false)
    }

    /// Number of messages staged this round.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbox_sorted_lookup() {
        let mut inbox: Inbox<u64> = Inbox::with_capacity(0);
        inbox.push(2, 20);
        inbox.push(0, 10);
        inbox.finalize();
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox.from_port(0), Some(&10));
        assert_eq!(inbox.from_port(1), None);
        let ports: Vec<Port> = inbox.iter().map(|&(p, _)| p).collect();
        assert_eq!(ports, vec![0, 2]);
    }

    #[test]
    fn from_port_absorbs_duplicates_strict_reports_them() {
        let mut inbox: Inbox<u64> = Inbox::with_capacity(0);
        inbox.push(1, 7);
        inbox.push(1, 7);
        inbox.push(3, 9);
        inbox.finalize();
        // Lenient accessor: deterministic first copy.
        assert_eq!(inbox.from_port(1), Some(&7));
        assert_eq!(inbox.from_port(3), Some(&9));
        // Strict accessor: the duplication is surfaced, clean ports pass.
        assert_eq!(
            inbox.from_port_strict(1),
            Err(DuplicateDelivery { port: 1, copies: 2 })
        );
        assert_eq!(inbox.from_port_strict(3), Ok(Some(&9)));
        assert_eq!(inbox.from_port_strict(0), Ok(None));
        let err = inbox.from_port_strict(1).unwrap_err();
        assert!(err.to_string().contains("port 1"), "{err}");
    }

    #[test]
    fn outbox_single_send_per_port() {
        let mut out: Outbox<u64> = Outbox::new(3);
        out.send(1, 5);
        assert!(out.sent_on(1));
        assert!(!out.sent_on(0));
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate send")]
    fn outbox_rejects_duplicate_port() {
        let mut out: Outbox<u64> = Outbox::new(3);
        out.send(1, 5);
        out.send(1, 6);
    }

    #[test]
    #[should_panic(expected = "degree is 3")]
    fn outbox_rejects_bad_port() {
        let mut out: Outbox<u64> = Outbox::new(3);
        out.send(3, 5);
    }

    #[test]
    fn broadcast_fills_all_ports() {
        let mut out: Outbox<u64> = Outbox::new(4);
        out.broadcast(9);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn broadcast_remaining_skips_used() {
        let mut out: Outbox<u64> = Outbox::new(3);
        out.send(1, 1);
        out.broadcast_remaining(2);
        assert_eq!(out.len(), 3);
        let mut items: Vec<(Port, u64)> = out.drain().collect();
        items.sort_unstable();
        assert_eq!(items, vec![(0, 2), (1, 1), (2, 2)]);
    }
}
