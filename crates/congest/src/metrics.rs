//! Run metrics: the quantities the paper's theorems are stated in.

/// Aggregated measurements from one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of synchronous rounds executed (the paper's complexity unit).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered.
    pub total_bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: u64,
    /// The per-message budget this run was checked against.
    pub bandwidth_bits: u64,
    /// Number of messages exceeding the budget (0 in compliant runs).
    pub bandwidth_violations: u64,
    /// Messages lost on the wire by the fault plane (see
    /// [`crate::faults`]). Dropped messages still count in [`messages`]
    /// — bandwidth is charged at send time.
    ///
    /// [`messages`]: Metrics::messages
    pub faults_dropped: u64,
    /// Messages the fault plane delivered twice. Only the original copy
    /// counts in [`Metrics::messages`].
    pub faults_duplicated: u64,
    /// Messages discarded because their receiver was crashed at the
    /// arrival round.
    pub crash_drops: u64,
    /// Node-rounds spent crashed (nodes skipped by the engine because
    /// their crash window covered the round).
    pub crashed_rounds: u64,
    /// Number of `Protocol::round` calls executed — the active-set
    /// engine's work unit. Under always-step scheduling this is
    /// `rounds × (n − crashed)`; under active-set scheduling it is the
    /// quantity the frontier saves. Identical across engines for a fixed
    /// scheduling mode, but *not* across scheduling modes — mode-vs-mode
    /// bit-identity comparisons must exclude it.
    pub stepped_nodes: u64,
}

impl Metrics {
    /// Folds another metrics record into this one (used when a driver runs
    /// several protocol phases back to back and reports the total).
    pub fn absorb(&mut self, other: &Metrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.bandwidth_bits = self.bandwidth_bits.max(other.bandwidth_bits);
        self.bandwidth_violations += other.bandwidth_violations;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.crash_drops += other.crash_drops;
        self.crashed_rounds += other.crashed_rounds;
        self.stepped_nodes += other.stepped_nodes;
    }

    /// Record one delivered message of `bits` bits against budget `budget`.
    pub(crate) fn record_message(&mut self, bits: u64, budget: u64) {
        self.messages += 1;
        self.total_bits += bits;
        self.max_message_bits = self.max_message_bits.max(bits);
        if bits > budget {
            self.bandwidth_violations += 1;
        }
    }

    /// Whether the run stayed within the CONGEST bandwidth budget.
    #[must_use]
    pub fn is_congest_compliant(&self) -> bool {
        self.bandwidth_violations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_violations() {
        let mut m = Metrics {
            bandwidth_bits: 10,
            ..Metrics::default()
        };
        m.record_message(8, 10);
        m.record_message(12, 10);
        assert_eq!(m.messages, 2);
        assert_eq!(m.total_bits, 20);
        assert_eq!(m.max_message_bits, 12);
        assert_eq!(m.bandwidth_violations, 1);
        assert!(!m.is_congest_compliant());
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = Metrics {
            rounds: 3,
            messages: 10,
            total_bits: 100,
            max_message_bits: 16,
            bandwidth_bits: 64,
            bandwidth_violations: 0,
            ..Metrics::default()
        };
        let b = Metrics {
            rounds: 2,
            messages: 5,
            total_bits: 60,
            max_message_bits: 32,
            bandwidth_bits: 64,
            bandwidth_violations: 1,
            faults_dropped: 4,
            faults_duplicated: 3,
            crash_drops: 2,
            crashed_rounds: 7,
            stepped_nodes: 9,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 15);
        assert_eq!(a.total_bits, 160);
        assert_eq!(a.max_message_bits, 32);
        assert_eq!(a.bandwidth_violations, 1);
        assert_eq!(a.faults_dropped, 4);
        assert_eq!(a.faults_duplicated, 3);
        assert_eq!(a.crash_drops, 2);
        assert_eq!(a.crashed_rounds, 7);
        assert_eq!(a.stepped_nodes, 9);
    }
}
