//! The node-program trait.

use crate::{Inbox, Message, NodeCtx, NodeRng, Outbox};

/// Vote returned by a node each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The node still has work (or is relaying for others).
    Running,
    /// The node votes to terminate. The run ends in the first round where
    /// *every* node votes `Done`; messages staged in that final round are
    /// discarded. A node may keep voting `Done` and later resume activity
    /// if woken by a message — only unanimous votes stop the clock.
    Done,
}

/// A CONGEST node program, instantiated identically at every node.
///
/// The same `Protocol` value is shared (read-only) by all nodes; per-node
/// mutable data lives in `State`. Everything a node may consult is in its
/// arguments — the compiler enforces locality.
pub trait Protocol: Sync {
    /// Per-node mutable state.
    type State: Send;
    /// Message type exchanged by this protocol.
    type Msg: Message;

    /// Builds node-local state before round 0. May read per-node *input*
    /// from the protocol value (indexed by `ctx.index`) — this is how phased
    /// drivers hand the previous phase's local results to the next phase.
    fn init(&self, ctx: &NodeCtx, rng: &mut NodeRng) -> Self::State;

    /// Executes one synchronous round: consume `inbox` (messages sent in the
    /// previous round), update state, stage outgoing messages in `out`.
    fn round(
        &self,
        state: &mut Self::State,
        ctx: &NodeCtx,
        rng: &mut NodeRng,
        inbox: &Inbox<Self::Msg>,
        out: &mut Outbox<Self::Msg>,
    ) -> Status;
}
