//! The node-program trait.

use crate::{Inbox, Message, NodeCtx, NodeRng, Outbox};

/// Vote returned by a node each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The node still has work (or is relaying for others).
    Running,
    /// The node votes to terminate. The run ends in the first round where
    /// *every* node votes `Done`; messages staged in that final round are
    /// discarded. A node may keep voting `Done` and later resume activity
    /// if woken by a message — only unanimous votes stop the clock.
    Done,
}

/// A node's scheduling request for the rounds after the one it just ran,
/// returned by [`Protocol::next_wake`]. Under active-set scheduling
/// (see [`crate::runtime`]) the engines step a node only when it is
/// *woken*; `Wake` is the node's own contribution to that decision —
/// message arrivals always wake the destination regardless of the value
/// returned here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Step me again next round unconditionally (the classic schedule, and
    /// the default). Always safe: a protocol that never overrides
    /// [`Protocol::next_wake`] runs exactly as before.
    Next,
    /// Park me until round `r` (absolute round number); a message arriving
    /// earlier still wakes me at its arrival round. Values `≤` the next
    /// round degrade to [`Wake::Next`].
    At(u64),
    /// Park me indefinitely; only a message arrival wakes me.
    Message,
}

/// A CONGEST node program, instantiated identically at every node.
///
/// The same `Protocol` value is shared (read-only) by all nodes; per-node
/// mutable data lives in `State`. Everything a node may consult is in its
/// arguments — the compiler enforces locality.
pub trait Protocol: Sync {
    /// Per-node mutable state.
    type State: Send;
    /// Message type exchanged by this protocol.
    type Msg: Message;

    /// Builds node-local state before round 0. May read per-node *input*
    /// from the protocol value (indexed by `ctx.index`) — this is how phased
    /// drivers hand the previous phase's local results to the next phase.
    fn init(&self, ctx: &NodeCtx, rng: &mut NodeRng) -> Self::State;

    /// Executes one synchronous round: consume `inbox` (messages sent in the
    /// previous round), update state, stage outgoing messages in `out`.
    fn round(
        &self,
        state: &mut Self::State,
        ctx: &NodeCtx,
        rng: &mut NodeRng,
        inbox: &Inbox<Self::Msg>,
        out: &mut Outbox<Self::Msg>,
    ) -> Status;

    /// Synchronization-tolerance hint enabling round batching.
    ///
    /// Returning `p > 1` declares a *communication schedule*: nodes send
    /// messages only in rounds `r` with `r % p == 0` (the rounds in between
    /// are local computation over previously received messages). Engines
    /// exploit the declaration by synchronizing — exchanging cross-shard
    /// batches and evaluating unanimous [`Status::Done`] — only at those
    /// communication rounds, i.e. once per `p` simulator rounds instead of
    /// every round.
    ///
    /// Both runtimes honor the same schedule, so results stay bit-identical
    /// across engines for any hint value. The promise is *enforced*: a
    /// message staged in a silent round is a protocol bug and panics, like
    /// a duplicate send on a port. Termination votes cast in silent rounds
    /// are ignored (a protocol declaring `p` must keep voting its decision
    /// until the next communication round).
    ///
    /// **Bandwidth aggregation**: a communication round stands in for the
    /// `p − 1` silent rounds around it, so the engines budget each
    /// communication-round message at `p` times the per-round bandwidth —
    /// the protocol may pack the list traffic it would have pipelined over
    /// `p` classic rounds into one message, keeping the *per simulator
    /// round, per edge* bit volume exactly what the CONGEST model allows.
    /// This is what makes the hint a genuine optimization for pipelined
    /// list exchanges: the same data crosses each edge in `p`× fewer
    /// messages and the engines synchronize `p`× less often, while the
    /// round complexity the paper counts is unchanged.
    ///
    /// The default, `1`, is the classic CONGEST schedule: every round may
    /// communicate, termination is evaluated every round.
    fn sync_period(&self) -> u64 {
        1
    }

    /// Declares when this node next needs to be stepped, given the `status`
    /// it just voted. Called by the engines immediately after each
    /// [`Protocol::round`] call when active-set scheduling is enabled (the
    /// default — see [`crate::runtime`] for the full contract); never
    /// called under the always-step reference schedule.
    ///
    /// **Parking contract.** A protocol override must guarantee that a
    /// parked node, were it stepped anyway with an *empty* inbox, would
    /// (1) make no observable change: no sends, no RNG draws, no state
    /// mutation that can later affect messages or outputs; and (2) not
    /// change the termination outcome: the engines treat the last
    /// communication-round vote as *sticky* while a node is parked and
    /// evaluate unanimous-`Done` termination over sticky votes, so at every
    /// communication round of the parked interval at which the run could
    /// otherwise terminate (every other node voting or holding `Done`), the
    /// parked node's sticky vote must equal the vote it would cast if
    /// stepped. Concretely: parking with sticky `Done` while the would-be
    /// vote is `Running` is fine at rounds where unanimity is impossible
    /// anyway (e.g. the non-resolve sub-rounds of a trial cycle, where
    /// every node votes `Running`); and a node whose sticky vote is
    /// `Running` must arrange — via [`Wake::At`] — to be stepped and vote
    /// `Done` no later than the earliest round global unanimity could
    /// occur, or it delays termination past the reference schedule.
    /// Violating (1) or (2) desynchronizes active-set runs from the
    /// always-step reference — the differential harnesses catch this as a
    /// bit-identity failure.
    ///
    /// Message arrivals *always* wake the destination for the arrival
    /// round, whatever this returns; `Wake::At(r)` additionally schedules a
    /// spontaneous wake at round `r`. Nodes crashed by the fault plane are
    /// skipped while down and woken at their recovery round.
    ///
    /// The default, [`Wake::Next`], reproduces the classic every-round
    /// schedule exactly.
    fn next_wake(&self, state: &Self::State, ctx: &NodeCtx, status: Status) -> Wake {
        let _ = (state, ctx, status);
        Wake::Next
    }
}
