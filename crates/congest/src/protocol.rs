//! The node-program trait.

use crate::{Inbox, Message, NodeCtx, NodeRng, Outbox};

/// Vote returned by a node each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The node still has work (or is relaying for others).
    Running,
    /// The node votes to terminate. The run ends in the first round where
    /// *every* node votes `Done`; messages staged in that final round are
    /// discarded. A node may keep voting `Done` and later resume activity
    /// if woken by a message — only unanimous votes stop the clock.
    Done,
}

/// A CONGEST node program, instantiated identically at every node.
///
/// The same `Protocol` value is shared (read-only) by all nodes; per-node
/// mutable data lives in `State`. Everything a node may consult is in its
/// arguments — the compiler enforces locality.
pub trait Protocol: Sync {
    /// Per-node mutable state.
    type State: Send;
    /// Message type exchanged by this protocol.
    type Msg: Message;

    /// Builds node-local state before round 0. May read per-node *input*
    /// from the protocol value (indexed by `ctx.index`) — this is how phased
    /// drivers hand the previous phase's local results to the next phase.
    fn init(&self, ctx: &NodeCtx, rng: &mut NodeRng) -> Self::State;

    /// Executes one synchronous round: consume `inbox` (messages sent in the
    /// previous round), update state, stage outgoing messages in `out`.
    fn round(
        &self,
        state: &mut Self::State,
        ctx: &NodeCtx,
        rng: &mut NodeRng,
        inbox: &Inbox<Self::Msg>,
        out: &mut Outbox<Self::Msg>,
    ) -> Status;

    /// Synchronization-tolerance hint enabling round batching.
    ///
    /// Returning `p > 1` declares a *communication schedule*: nodes send
    /// messages only in rounds `r` with `r % p == 0` (the rounds in between
    /// are local computation over previously received messages). Engines
    /// exploit the declaration by synchronizing — exchanging cross-shard
    /// batches and evaluating unanimous [`Status::Done`] — only at those
    /// communication rounds, i.e. once per `p` simulator rounds instead of
    /// every round.
    ///
    /// Both runtimes honor the same schedule, so results stay bit-identical
    /// across engines for any hint value. The promise is *enforced*: a
    /// message staged in a silent round is a protocol bug and panics, like
    /// a duplicate send on a port. Termination votes cast in silent rounds
    /// are ignored (a protocol declaring `p` must keep voting its decision
    /// until the next communication round).
    ///
    /// **Bandwidth aggregation**: a communication round stands in for the
    /// `p − 1` silent rounds around it, so the engines budget each
    /// communication-round message at `p` times the per-round bandwidth —
    /// the protocol may pack the list traffic it would have pipelined over
    /// `p` classic rounds into one message, keeping the *per simulator
    /// round, per edge* bit volume exactly what the CONGEST model allows.
    /// This is what makes the hint a genuine optimization for pipelined
    /// list exchanges: the same data crosses each edge in `p`× fewer
    /// messages and the engines synchronize `p`× less often, while the
    /// round complexity the paper counts is unchanged.
    ///
    /// The default, `1`, is the classic CONGEST schedule: every round may
    /// communicate, termination is evaluated every round.
    fn sync_period(&self) -> u64 {
        1
    }
}
