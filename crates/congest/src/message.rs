//! Message trait, bit-cost helpers, and the inline small-payload type.
//!
//! # The allocation-free round invariant
//!
//! A steady-state communication round must perform **zero heap
//! allocations** end to end: the engines pool every delivery buffer
//! (inbox vectors, outbox staging, cross-shard batch cells) and reuse it
//! for the whole run, so the only remaining per-round heap traffic would
//! come from the *payloads* protocols put inside their messages. That is
//! what [`SmallIds`] exists for: the paper's pipelined list exchanges
//! (neighborhood lists, color batches, palette reports) carry short
//! bounded-size batches whose length is dictated by the `O(log n)`-bit
//! bandwidth budget, so they fit in a fixed inline array and never touch
//! the allocator. The invariant is enforced by the `count-allocs`
//! benchmark feature (allocations/round is a gated column of
//! `BENCH_PR4.json`) and by the `steady_state_rounds_do_not_allocate`
//! test in `crates/congest/tests/alloc_free.rs`.
//!
//! # Choosing the inline cap
//!
//! A batch of values each costing `b` bits, sent under a per-message
//! budget of `B` bits (times the [`sync_period`](crate::Protocol)
//! aggregation factor `p`), holds at most `(p·B − 16) / b` values. With
//! the default budget `B = max(8·⌈log₂ n⌉, 64)` and identifier costs
//! `b = ⌈log₂ n⌉`, that is ≤ 8 identifiers per message at `p = 1` and
//! ≤ 32 at `p = 4` — so a cap of 32 keeps every realistic batch inline,
//! and only degenerate configurations (tiny value widths under a huge
//! budget) spill to the heap. Spilling is always *correct* — the two
//! representations compare equal and serialize identically — it is only
//! slower, which the property tests pin down.

/// A CONGEST message. Implementations must report their encoded size in
/// bits so the engine can enforce the `O(log n)` bandwidth budget.
///
/// The size should reflect a reasonable wire encoding of the *semantic*
/// content (IDs cost `⌈log₂ n⌉` bits, colors `⌈log₂ palette⌉` bits, a tag
/// discriminating `k` variants costs `⌈log₂ k⌉` bits), not Rust's in-memory
/// layout.
pub trait Message: Clone + Send + std::fmt::Debug + 'static {
    /// Encoded size in bits.
    fn bits(&self) -> u64;
}

/// Raw integers are occasionally convenient as messages (identifiers in
/// toy protocols and tests); they are charged their value's binary length.
impl Message for u64 {
    fn bits(&self) -> u64 {
        BitCost::uint(*self)
    }
}

impl Message for u32 {
    fn bits(&self) -> u64 {
        BitCost::uint(u64::from(*self))
    }
}

impl Message for () {
    fn bits(&self) -> u64 {
        1
    }
}

/// An inline-first list payload: up to `N` values stored directly in the
/// message, spilling to a heap `Vec` only above `N`.
///
/// This is the hot-path payload of every pipelined list exchange (see the
/// module docs for the cap rationale). The two representations are
/// semantically identical: equality, ordering of elements, and the
/// protocols' `bits()` accounting all go through [`SmallIds::as_slice`],
/// so whether a particular batch is inline or spilled is unobservable to
/// the receiving node — only the allocator can tell.
#[derive(Clone)]
pub enum SmallIds<T, const N: usize> {
    /// The steady-state representation: a fixed buffer and a length.
    Inline {
        /// Number of initialized elements in `buf`.
        len: u8,
        /// Backing storage; elements at `len..` are meaningless.
        buf: [T; N],
    },
    /// Overflow representation for batches longer than `N`.
    Spilled(Vec<T>),
}

impl<T: Copy + Default, const N: usize> SmallIds<T, N> {
    /// An empty inline batch.
    #[must_use]
    pub fn new() -> Self {
        const { assert!(N > 0 && N <= u8::MAX as usize) };
        SmallIds::Inline {
            len: 0,
            buf: [T::default(); N],
        }
    }

    /// Builds from a slice: inline when `vals.len() <= N` (no allocation),
    /// spilled otherwise.
    #[must_use]
    pub fn from_slice(vals: &[T]) -> Self {
        const { assert!(N > 0 && N <= u8::MAX as usize) };
        if vals.len() <= N {
            let mut buf = [T::default(); N];
            buf[..vals.len()].copy_from_slice(vals);
            SmallIds::Inline {
                len: vals.len() as u8,
                buf,
            }
        } else {
            SmallIds::Spilled(vals.to_vec())
        }
    }

    /// Appends one value, spilling to the heap when the inline buffer is
    /// full.
    pub fn push(&mut self, val: T) {
        const { assert!(N > 0 && N <= u8::MAX as usize) };
        match self {
            SmallIds::Inline { len, buf } => {
                if (*len as usize) < N {
                    buf[*len as usize] = val;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N + 1);
                    v.extend_from_slice(&buf[..]);
                    v.push(val);
                    *self = SmallIds::Spilled(v);
                }
            }
            SmallIds::Spilled(v) => v.push(val),
        }
    }

    /// The initialized elements.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        match self {
            SmallIds::Inline { len, buf } => &buf[..*len as usize],
            SmallIds::Spilled(v) => v.as_slice(),
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Whether the batch lives in the inline representation (no heap).
    #[must_use]
    pub fn is_inline(&self) -> bool {
        matches!(self, SmallIds::Inline { .. })
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallIds<T, N> {
    fn default() -> Self {
        SmallIds::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for SmallIds<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallIds<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SmallIds::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallIds<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Equality is by contents: an inline batch equals a spilled batch with
/// the same elements.
impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallIds<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallIds<T, N> {}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for SmallIds<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Helpers for computing semantic wire sizes of message fields.
#[derive(Debug, Clone, Copy)]
pub struct BitCost;

impl BitCost {
    /// Bits to write an identifier drawn from a space of `n` values.
    #[must_use]
    pub fn id(n: usize) -> u64 {
        graphs::id_bits(n)
    }

    /// Bits to write a color from a palette of `k` colors.
    #[must_use]
    pub fn color(k: u64) -> u64 {
        graphs::ceil_log2(k.max(2))
    }

    /// Bits to write the value `x` itself (binary length, at least 1).
    #[must_use]
    pub fn uint(x: u64) -> u64 {
        (64 - x.leading_zeros() as u64).max(1)
    }

    /// Bits for a variant tag distinguishing `k` message kinds.
    #[must_use]
    pub fn tag(k: u64) -> u64 {
        graphs::ceil_log2(k.max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_cost_is_binary_length() {
        assert_eq!(BitCost::uint(0), 1);
        assert_eq!(BitCost::uint(1), 1);
        assert_eq!(BitCost::uint(2), 2);
        assert_eq!(BitCost::uint(255), 8);
        assert_eq!(BitCost::uint(256), 9);
    }

    #[test]
    fn id_and_color_costs() {
        assert_eq!(BitCost::id(1024), 10);
        assert_eq!(BitCost::color(100), 7);
        assert_eq!(BitCost::color(1), 1, "a 1-color palette still costs a bit");
        assert_eq!(BitCost::tag(6), 3);
    }

    #[test]
    fn primitive_messages_report_bits() {
        assert_eq!(Message::bits(&7u64), 3);
        assert_eq!(Message::bits(&7u32), 3);
        assert_eq!(Message::bits(&()), 1);
    }

    #[test]
    fn small_ids_inline_until_cap() {
        let mut s: SmallIds<u64, 4> = SmallIds::new();
        assert!(s.is_empty() && s.is_inline());
        for v in 0..4 {
            s.push(v);
        }
        assert!(s.is_inline());
        assert_eq!(s.as_slice(), &[0, 1, 2, 3]);
        s.push(4);
        assert!(!s.is_inline(), "push past the cap spills");
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn small_ids_from_slice_picks_representation() {
        let inline: SmallIds<u32, 3> = SmallIds::from_slice(&[1, 2, 3]);
        let spilled: SmallIds<u32, 3> = SmallIds::from_slice(&[1, 2, 3, 4]);
        assert!(inline.is_inline());
        assert!(!spilled.is_inline());
        assert_eq!(inline.len(), 3);
        assert_eq!(spilled.len(), 4);
    }

    #[test]
    fn small_ids_equality_ignores_representation() {
        let a: SmallIds<u64, 8> = SmallIds::from_slice(&[9, 8, 7]);
        let b: SmallIds<u64, 8> = SmallIds::Spilled(vec![9, 8, 7]);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c: SmallIds<u64, 8> = SmallIds::from_slice(&[9, 8]);
        assert_ne!(a, c);
    }

    #[test]
    fn small_ids_collects_and_derefs() {
        let s: SmallIds<u32, 4> = (0..6).collect();
        assert!(!s.is_inline());
        assert_eq!(s.iter().sum::<u32>(), 15);
        // Deref gives slice methods directly.
        assert_eq!(s.first(), Some(&0));
        assert_eq!((&s).into_iter().count(), 6);
    }
}
