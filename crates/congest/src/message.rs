//! Message trait and bit-cost helpers.

/// A CONGEST message. Implementations must report their encoded size in
/// bits so the engine can enforce the `O(log n)` bandwidth budget.
///
/// The size should reflect a reasonable wire encoding of the *semantic*
/// content (IDs cost `⌈log₂ n⌉` bits, colors `⌈log₂ palette⌉` bits, a tag
/// discriminating `k` variants costs `⌈log₂ k⌉` bits), not Rust's in-memory
/// layout.
pub trait Message: Clone + Send + std::fmt::Debug + 'static {
    /// Encoded size in bits.
    fn bits(&self) -> u64;
}

/// Raw integers are occasionally convenient as messages (identifiers in
/// toy protocols and tests); they are charged their value's binary length.
impl Message for u64 {
    fn bits(&self) -> u64 {
        BitCost::uint(*self)
    }
}

impl Message for u32 {
    fn bits(&self) -> u64 {
        BitCost::uint(u64::from(*self))
    }
}

impl Message for () {
    fn bits(&self) -> u64 {
        1
    }
}

/// Helpers for computing semantic wire sizes of message fields.
#[derive(Debug, Clone, Copy)]
pub struct BitCost;

impl BitCost {
    /// Bits to write an identifier drawn from a space of `n` values.
    #[must_use]
    pub fn id(n: usize) -> u64 {
        graphs::id_bits(n)
    }

    /// Bits to write a color from a palette of `k` colors.
    #[must_use]
    pub fn color(k: u64) -> u64 {
        graphs::ceil_log2(k.max(2))
    }

    /// Bits to write the value `x` itself (binary length, at least 1).
    #[must_use]
    pub fn uint(x: u64) -> u64 {
        (64 - x.leading_zeros() as u64).max(1)
    }

    /// Bits for a variant tag distinguishing `k` message kinds.
    #[must_use]
    pub fn tag(k: u64) -> u64 {
        graphs::ceil_log2(k.max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_cost_is_binary_length() {
        assert_eq!(BitCost::uint(0), 1);
        assert_eq!(BitCost::uint(1), 1);
        assert_eq!(BitCost::uint(2), 2);
        assert_eq!(BitCost::uint(255), 8);
        assert_eq!(BitCost::uint(256), 9);
    }

    #[test]
    fn id_and_color_costs() {
        assert_eq!(BitCost::id(1024), 10);
        assert_eq!(BitCost::color(100), 7);
        assert_eq!(BitCost::color(1), 1, "a 1-color palette still costs a bit");
        assert_eq!(BitCost::tag(6), 3);
    }

    #[test]
    fn primitive_messages_report_bits() {
        assert_eq!(Message::bits(&7u64), 3);
        assert_eq!(Message::bits(&7u32), 3);
        assert_eq!(Message::bits(&()), 1);
    }
}
