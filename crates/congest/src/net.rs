//! Precomputed per-network tables shared by every phase of a run.
//!
//! Building a [`NodeCtx`] used to allocate one `Vec<u64>` of neighbor
//! identifiers per node, and multi-phase drivers rebuilt all of them — plus
//! the reverse-port table — once per phase. [`NetTables`] hoists that work
//! out of the per-phase path: one CSR-layout identifier table and one flat
//! reverse-port table are computed per `(graph, config)` pair, wrapped in an
//! [`Arc`], and shared by every context of every phase. Constructing the
//! per-phase `Vec<NodeCtx>` is then allocation-free per node (each context
//! is a handful of words plus an `Arc` clone).
//!
//! The tables depend only on the topology and on the identifier assignment
//! (`config.seed` and `config.ids`) — **not** on `config.rng_salt` — so a
//! driver may bump the salt per phase and keep reusing the same tables.

use crate::{IdAssignment, NodeCtx, Port, SimConfig};
use graphs::Graph;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Immutable CSR-layout per-network tables: identifier assignment, neighbor
/// identifiers, and reverse ports, all aligned with the graph's adjacency
/// rows.
pub struct NetTables {
    n: usize,
    max_degree: usize,
    /// Row offsets, length `n + 1`; row `v` of the flat tables is
    /// `offsets[v]..offsets[v + 1]`, mirroring `graph.neighbors(v)`.
    offsets: Vec<usize>,
    /// Identifier of each node, by index.
    idents: Vec<u64>,
    /// Flat neighbor-identifier table: entry for `(v, p)` is the identifier
    /// of `graph.neighbors(v)[p]`.
    neighbor_idents: Vec<u64>,
    /// Flat reverse-port table: entry for `(v, p)` is the port of `v` on
    /// `graph.neighbors(v)[p]` — where a message sent by `v` on `p` arrives.
    reverse_ports: Vec<Port>,
}

impl std::fmt::Debug for NetTables {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetTables")
            .field("n", &self.n)
            .field("max_degree", &self.max_degree)
            .field("directed_edges", &self.neighbor_idents.len())
            .finish()
    }
}

/// The identifier assignment for a network of `n` nodes under `config` —
/// the permutation alone, without the adjacency-shaped tables. `O(n)`.
#[must_use]
pub(crate) fn ident_assignment(n: usize, config: &SimConfig) -> Vec<u64> {
    match config.ids {
        IdAssignment::Sequential => (0..n as u64).collect(),
        IdAssignment::Permuted => {
            let mut ids: Vec<u64> = (0..n as u64).collect();
            let mut r = ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0xA24B_AED4_963E_E407));
            ids.shuffle(&mut r);
            ids
        }
    }
}

impl NetTables {
    /// Builds the tables for `graph` under `config`'s identifier policy.
    /// `O(Σ deg · log deg)` once; every later query is an `O(1)` slice.
    #[must_use]
    pub fn build(graph: &Graph, config: &SimConfig) -> Arc<Self> {
        let n = graph.n();
        let idents = ident_assignment(n, config);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for v in 0..n {
            acc += graph.degree(v as u32);
            offsets.push(acc);
        }
        let mut neighbor_idents = Vec::with_capacity(acc);
        let mut reverse_ports = Vec::with_capacity(acc);
        for v in 0..n as u32 {
            for &u in graph.neighbors(v) {
                neighbor_idents.push(idents[u as usize]);
                reverse_ports.push(
                    graph
                        .port_of(u, v)
                        .expect("undirected graph: reverse edge exists")
                        as Port,
                );
            }
        }
        Arc::new(NetTables {
            n,
            max_degree: graph.max_degree(),
            offsets,
            idents,
            neighbor_idents,
            reverse_ports,
        })
    }

    /// Number of nodes the tables were built for.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum degree `∆` of the network the tables were built for.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Whether these tables are plausibly the ones built for `graph`:
    /// node count and directed-edge count must agree. `O(1)`. Used by the
    /// engines to reject a (graph, tables) mix-up hard — a mismatch would
    /// otherwise mis-route messages and complete with silently wrong
    /// results. (Two different topologies with identical n and m are not
    /// distinguishable at this price; the engines' port lookups stay
    /// in-bounds regardless because both tables are adjacency-shaped.)
    #[must_use]
    pub fn matches(&self, graph: &Graph) -> bool {
        self.n == graph.n() && self.neighbor_idents.len() == 2 * graph.m()
    }

    /// The whole flat neighbor-identifier table; contexts slice their own
    /// row out of it.
    pub(crate) fn neighbor_idents_flat(&self) -> &[u64] {
        &self.neighbor_idents
    }

    /// Identifier of each node, by index.
    #[must_use]
    pub fn idents(&self) -> &[u64] {
        &self.idents
    }

    /// Identifiers of `v`'s neighbors, by port.
    #[must_use]
    pub fn neighbor_idents_of(&self, v: u32) -> &[u64] {
        &self.neighbor_idents[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// For each port `p` of `v`, the arrival port at the other endpoint:
    /// `reverse_ports_of(v)[p]` is the port of `v` on `neighbors(v)[p]`.
    #[must_use]
    pub fn reverse_ports_of(&self, v: u32) -> &[Port] {
        &self.reverse_ports[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Builds the per-node contexts for one phase. Cheap: each context
    /// shares these tables through an [`Arc`] instead of owning a neighbor
    /// list.
    #[must_use]
    pub fn contexts(self: &Arc<Self>) -> Vec<NodeCtx> {
        (0..self.n)
            .map(|v| {
                NodeCtx::from_tables(
                    Arc::clone(self),
                    v as u32,
                    self.offsets[v] as u32,
                    self.offsets[v + 1] as u32,
                )
            })
            .collect()
    }

    /// Tables for a single free-standing node — the backing store of
    /// [`NodeCtx::standalone`].
    #[must_use]
    pub(crate) fn standalone(
        ident: u64,
        n: usize,
        max_degree: usize,
        neighbor_idents: Vec<u64>,
    ) -> Arc<Self> {
        let degree = neighbor_idents.len();
        Arc::new(NetTables {
            n,
            max_degree,
            offsets: vec![0, degree],
            idents: vec![ident],
            neighbor_idents,
            reverse_ports: vec![0; degree],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn tables_mirror_graph_adjacency() {
        let g = gen::gnp_capped(60, 0.1, 6, 9);
        let cfg = SimConfig::seeded(4);
        let t = NetTables::build(&g, &cfg);
        assert_eq!(t.n(), g.n());
        let mut ids = t.idents().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), g.n(), "identifiers must be unique");
        for v in 0..g.n() as u32 {
            let row = t.neighbor_idents_of(v);
            assert_eq!(row.len(), g.degree(v));
            for (p, &u) in g.neighbors(v).iter().enumerate() {
                assert_eq!(row[p], t.idents()[u as usize]);
                let back = t.reverse_ports_of(v)[p] as usize;
                assert_eq!(g.neighbors(u)[back], v);
            }
        }
    }

    #[test]
    fn tables_are_salt_invariant() {
        // Bumping the per-phase RNG salt must not change identifiers, so a
        // driver can share one table across all its phases.
        let g = gen::cycle(12);
        let a = NetTables::build(&g, &SimConfig::seeded(7));
        let b = NetTables::build(&g, &SimConfig::seeded(7).with_salt(99));
        assert_eq!(a.idents(), b.idents());
    }

    #[test]
    fn contexts_share_tables() {
        let g = gen::star(5);
        let t = NetTables::build(&g, &SimConfig::seeded(1));
        let ctxs = t.contexts();
        assert_eq!(ctxs.len(), 6);
        // Strong count: the table Arc plus one clone per context.
        assert_eq!(Arc::strong_count(&t), 7);
        assert_eq!(ctxs[0].degree(), 5);
    }
}
