//! The `Wire` codec trait: hand-rolled binary serialization for message
//! payloads crossing shard-process boundaries.
//!
//! No external serialization crates exist in this build (the compat crates
//! vendor only `rand`/`rand_chacha`/`criterion`), so the codec is written
//! by hand over plain byte buffers:
//!
//! * integers are **fixed-width little-endian** (`u8`/`u16`/`u32`/`u64`);
//! * `bool` is one byte, `0` or `1` — anything else is a structured
//!   [`WireError::BadTag`], never a panic;
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`), so values are
//!   reproduced exactly, including NaN payloads;
//! * sequences (`Vec`, [`SmallIds`]) are a `u32` length
//!   prefix followed by the elements; a [`SmallIds`] batch re-enters the
//!   inline representation on decode whenever it fits, so representation
//!   is (as everywhere else) unobservable;
//! * enums (implemented by protocol crates for their `Msg` types) are a
//!   one-byte variant tag followed by the variant's fields.
//!
//! Decoding is *total*: every byte sequence either decodes or returns a
//! [`WireError`] naming what went wrong. The netplane property tests
//! round-trip every payload variant and feed the decoder torn and
//! corrupted inputs.

use crate::{Metrics, SmallIds};
use std::fmt;

/// A structured decode failure. Every malformed input maps to one of
/// these — the decoder never panics on wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually left.
        available: usize,
    },
    /// A variant/flag byte had no defined meaning.
    BadTag {
        /// The type being decoded (static name for diagnostics).
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length prefix claimed more elements than the input could hold.
    BadLength {
        /// The claimed element count.
        claimed: usize,
        /// Bytes left in the input.
        available: usize,
    },
    /// The value decoded but bytes were left over (frame/payload mismatch).
    Trailing {
        /// Number of undecoded bytes.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "input truncated: needed {needed} bytes, {available} available"
                )
            }
            WireError::BadTag { what, tag } => {
                write!(f, "invalid tag byte {tag:#04x} while decoding {what}")
            }
            WireError::BadLength { claimed, available } => {
                write!(
                    f,
                    "length prefix claims {claimed} elements but only {available} bytes remain"
                )
            }
            WireError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A borrowing cursor over an encoded buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Asserts the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::Trailing`] if bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing {
                remaining: self.remaining(),
            })
        }
    }
}

/// A value with a binary wire encoding.
///
/// The netplane requires `P::Msg: Wire` to ship a protocol's messages
/// between shard processes; protocol states never cross the wire (every
/// shard rebuilds all states deterministically from the shared seed).
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn put(&self, buf: &mut Vec<u8>);

    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input.
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.put(&mut buf);
        buf
    }

    /// Decodes a value that must span the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input or trailing bytes.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::take(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! wire_le_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn put(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let n = std::mem::size_of::<$t>();
                let b = r.bytes(n)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("exact slice")))
            }
        }
    )*};
}

wire_le_int!(u8, u16, u32, u64);

impl Wire for bool {
    fn put(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::take(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Wire for () {
    fn put(&self, _buf: &mut Vec<u8>) {}
    fn take(_r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

/// `f64` travels as its exact IEEE-754 bit pattern.
impl Wire for f64 {
    fn put(&self, buf: &mut Vec<u8>) {
        self.to_bits().put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::take(r)?))
    }
}

impl<T: Wire> Wire for Box<T> {
    fn put(&self, buf: &mut Vec<u8>) {
        (**self).put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::take(r)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.put(buf);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::take(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::take(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, buf: &mut Vec<u8>) {
        self.0.put(buf);
        self.1.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::take(r)?, B::take(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn put(&self, buf: &mut Vec<u8>) {
        self.0.put(buf);
        self.1.put(buf);
        self.2.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::take(r)?, B::take(r)?, C::take(r)?))
    }
}

/// Sequences carry a `u32` element count. The count is sanity-checked
/// against the bytes remaining (every element costs at least one byte...
/// except zero-sized `()` — hence the `max(1)` floor on the per-element
/// lower bound is applied only when the claimed total exceeds the input).
fn take_len(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let claimed = u32::take(r)? as usize;
    // Reject absurd prefixes before reserving memory: a non-empty element
    // needs ≥ 1 byte; `()` elements are the only zero-byte case and small
    // in practice. The check bounds allocation by the input size.
    if claimed > r.remaining() && claimed > 0 {
        return Err(WireError::BadLength {
            claimed,
            available: r.remaining(),
        });
    }
    Ok(claimed)
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, buf: &mut Vec<u8>) {
        (u32::try_from(self.len()).expect("sequence length fits u32")).put(buf);
        for v in self {
            v.put(buf);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = take_len(r)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::take(r)?);
        }
        Ok(out)
    }
}

/// [`SmallIds`] serializes by *contents* (length + elements); the decoder
/// rebuilds the inline representation whenever the batch fits, so a batch
/// that was inline on the sender is inline on the receiver.
impl<T: Wire + Copy + Default, const N: usize> Wire for SmallIds<T, N> {
    fn put(&self, buf: &mut Vec<u8>) {
        (u32::try_from(self.len()).expect("batch length fits u32")).put(buf);
        for v in self.as_slice() {
            v.put(buf);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = take_len(r)?;
        let mut out = SmallIds::new();
        for _ in 0..len {
            out.push(T::take(r)?);
        }
        Ok(out)
    }
}

/// [`Metrics`] cross the wire at phase end so every shard can hold the
/// identical *global* metrics record.
impl Wire for Metrics {
    fn put(&self, buf: &mut Vec<u8>) {
        for v in [
            self.rounds,
            self.messages,
            self.total_bits,
            self.max_message_bits,
            self.bandwidth_bits,
            self.bandwidth_violations,
            self.faults_dropped,
            self.faults_duplicated,
            self.crash_drops,
            self.crashed_rounds,
            self.stepped_nodes,
        ] {
            v.put(buf);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Metrics {
            rounds: u64::take(r)?,
            messages: u64::take(r)?,
            total_bits: u64::take(r)?,
            max_message_bits: u64::take(r)?,
            bandwidth_bits: u64::take(r)?,
            bandwidth_violations: u64::take(r)?,
            faults_dropped: u64::take(r)?,
            faults_duplicated: u64::take(r)?,
            crash_drops: u64::take(r)?,
            crashed_rounds: u64::take(r)?,
            stepped_nodes: u64::take(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes).unwrap(), v, "roundtrip of {v:?}");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(0xA5u8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
        roundtrip(1.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip((3u32, 9u64));
        roundtrip((1u32, 2u32, 3u64));
        roundtrip(Some(7u32));
        roundtrip(None::<u32>);
        roundtrip(Box::new(11u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let back = f64::from_wire(&weird.to_wire()).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn small_ids_reenter_inline() {
        let inline: SmallIds<u64, 4> = SmallIds::from_slice(&[5, 6, 7]);
        let back = SmallIds::<u64, 4>::from_wire(&inline.to_wire()).unwrap();
        assert_eq!(back, inline);
        assert!(back.is_inline());
        // A spilled batch decodes equal (and spills again, since it cannot fit).
        let spilled: SmallIds<u64, 4> = SmallIds::from_slice(&[1, 2, 3, 4, 5]);
        let back = SmallIds::<u64, 4>::from_wire(&spilled.to_wire()).unwrap();
        assert_eq!(back, spilled);
        assert!(!back.is_inline());
        // Cross-representation: a sender-side spilled batch that *would*
        // fit inline decodes to the inline representation.
        let sneaky: SmallIds<u64, 4> = SmallIds::Spilled(vec![9, 9]);
        let back = SmallIds::<u64, 4>::from_wire(&sneaky.to_wire()).unwrap();
        assert_eq!(back, sneaky);
        assert!(back.is_inline());
    }

    #[test]
    fn metrics_roundtrip() {
        let m = Metrics {
            rounds: 1,
            messages: 2,
            total_bits: 3,
            max_message_bits: 4,
            bandwidth_bits: 5,
            bandwidth_violations: 6,
            faults_dropped: 7,
            faults_duplicated: 8,
            crash_drops: 9,
            crashed_rounds: 10,
            stepped_nodes: 11,
        };
        roundtrip(m);
    }

    #[test]
    fn structured_errors_not_panics() {
        // Truncated integer.
        assert!(matches!(
            u64::from_wire(&[1, 2, 3]),
            Err(WireError::Truncated { .. })
        ));
        // Bad bool byte.
        assert_eq!(
            bool::from_wire(&[9]),
            Err(WireError::BadTag {
                what: "bool",
                tag: 9
            })
        );
        // Bad option flag.
        assert!(matches!(
            Option::<u32>::from_wire(&[7]),
            Err(WireError::BadTag { what: "Option", .. })
        ));
        // Length prefix larger than the input.
        let mut buf = Vec::new();
        1_000_000u32.put(&mut buf);
        assert!(matches!(
            Vec::<u64>::from_wire(&buf),
            Err(WireError::BadLength {
                claimed: 1_000_000,
                ..
            })
        ));
        // Trailing garbage after a complete value.
        let mut buf = 5u32.to_wire();
        buf.push(0xFF);
        assert_eq!(
            u32::from_wire(&buf),
            Err(WireError::Trailing { remaining: 1 })
        );
        // Errors render.
        let e = WireError::BadTag {
            what: "bool",
            tag: 9,
        };
        assert!(e.to_string().contains("bool"), "{e}");
    }
}
