//! Membership: how shard processes find each other and survive a restart.
//!
//! The topology is a star for control plus a full mesh for data:
//!
//! 1. A [`Coordinator`] binds an ephemeral localhost port. Every shard
//!    process dials it, sends [`Hello`] naming its own mesh-listener
//!    port, and blocks.
//! 2. Once all `k` shards have checked in, the coordinator assigns shard
//!    indices in connection order and sends each an [`Assign`] carrying
//!    the full peer table. The control stream stays open; shards ship
//!    their final result frames back over it.
//! 3. Shard `i` dials every shard `j < i` (sending [`Join`]) and accepts
//!    a connection from every `j > i` — every pair gets exactly one
//!    full-duplex [`Link`]. Listeners are bound before `Hello` is sent
//!    and nobody dials before `Assign` arrives, so the mesh cannot race.
//!
//! # Deadlines
//!
//! Every blocking call on this path — the coordinator's accepts, the
//! shards' dials, every handshake read — runs under a [`NetConfig`]
//! deadline. Dials retry with bounded exponential backoff
//! ([`NetConfig::retry_backoff`] doubling per attempt, at most
//! [`NetConfig::max_retries`] retries); a peer that never shows up
//! surfaces as a structured [`NetError`] instead of hanging a CI job
//! until its `timeout-minutes` cap.
//!
//! # Reconnect
//!
//! A [`Link`] retains its sync-tagged frames for the trailing
//! [`NetConfig::retained_syncs`] window (the default of two mirrors the
//! parity double-buffered mailboxes: a *live* peer is never more than one
//! sync behind; supervised chaos runs retain everything so a shard
//! restarted from scratch can be replayed the whole history). A restarted
//! peer dials back and sends [`Rejoin`] with the highest sync it has
//! fully applied; the survivor answers via [`Link::resume`], replaying
//! every retained frame with a newer sync. Replay is deterministic — the
//! frames are byte-identical to the originals — so the rejoined peer
//! observes the exact stream it would have seen without the restart. A
//! rejoiner whose ack falls below the retained window gets a structured
//! [`NetError::ReplayGap`], never a silently divergent stream.

use super::frame::{kind, read_frame, write_frame, Frame, FrameError};
use super::wire::{Reader, Wire, WireError};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufWriter, Write as _};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Deadlines and retry policy for every blocking call on the netplane:
/// dials, accepts, handshake reads, and mesh barrier reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Per-attempt TCP connect budget.
    pub dial_timeout: Duration,
    /// Budget for one inbound frame (mesh barrier reads, handshake
    /// reads) and for an accept phase as a whole.
    pub read_timeout: Duration,
    /// Base backoff between dial attempts; doubles per retry, capped at
    /// one second.
    pub retry_backoff: Duration,
    /// Retries after the first dial attempt (so `max_retries + 1` dials
    /// total) before [`NetError::DialTimeout`].
    pub max_retries: u32,
    /// How many trailing syncs every link retains for replay.
    /// [`u64::MAX`] retains everything (supervised runs, where a peer
    /// may restart from scratch and need the full history).
    pub retained_syncs: u64,
    /// How long a survivor parks at a barrier waiting for a dead peer's
    /// replacement to dial back in. `None` disables recovery: a lost
    /// link is a structured [`NetError::PeerLost`].
    pub rejoin_timeout: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            dial_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            retry_backoff: Duration::from_millis(25),
            max_retries: 5,
            retained_syncs: 2,
            rejoin_timeout: None,
        }
    }
}

impl NetConfig {
    /// The profile supervised (chaos / respawn) runs use: unbounded
    /// retention — a killed shard's replacement rejoins with
    /// `have_sync = 0` and replays the whole history — and survivors
    /// parking for up to a minute while the supervisor respawns the
    /// victim.
    #[must_use]
    pub fn supervised() -> Self {
        NetConfig {
            read_timeout: Duration::from_secs(60),
            retained_syncs: u64::MAX,
            rejoin_timeout: Some(Duration::from_secs(60)),
            ..NetConfig::default()
        }
    }

    /// Returns the config with `read_timeout` replaced.
    #[must_use]
    pub fn with_read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Returns the config with the dial retry policy replaced.
    #[must_use]
    pub fn with_dial(mut self, timeout: Duration, backoff: Duration, retries: u32) -> Self {
        self.dial_timeout = timeout;
        self.retry_backoff = backoff;
        self.max_retries = retries;
        self
    }

    /// Returns the config with `retained_syncs` replaced.
    #[must_use]
    pub fn with_retained_syncs(mut self, window: u64) -> Self {
        self.retained_syncs = window;
        self
    }

    /// Returns the config with `rejoin_timeout` replaced.
    #[must_use]
    pub fn with_rejoin_timeout(mut self, t: Option<Duration>) -> Self {
        self.rejoin_timeout = t;
        self
    }
}

/// A structured netplane failure: every way the transport can give up
/// without hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// All dial attempts to `addr` failed within their budgets.
    DialTimeout {
        /// The address that never answered.
        addr: SocketAddr,
        /// Connect attempts made (`1 + max_retries`).
        attempts: u32,
        /// The last attempt's error.
        cause: String,
    },
    /// An accept phase ran out of budget before the expected peer dialed.
    AcceptTimeout {
        /// Milliseconds waited.
        waited_ms: u64,
    },
    /// A peer stayed silent past the read deadline at a barrier.
    PeerTimeout {
        /// The silent peer's shard index.
        shard: u32,
        /// The sync (plane-level sequence number) being waited on.
        sync: u64,
    },
    /// A link died and recovery is disabled (no rejoin window).
    PeerLost {
        /// The lost peer's shard index.
        shard: u32,
        /// The sync at which the loss was observed.
        sync: u64,
        /// The underlying transport failure.
        cause: String,
    },
    /// A rejoiner acked a sync older than the retained window: exact
    /// replay is impossible, so recovery refuses rather than diverging.
    ReplayGap {
        /// The rejoining peer's shard index.
        shard: u32,
        /// The sync the rejoiner claims to have applied.
        have_sync: u64,
        /// The newest sync already pruned from retention; replay would
        /// need every sync in `have_sync + 1 ..= pruned_through`.
        pruned_through: u64,
    },
    /// A peer sent a frame from a different point in the lockstep
    /// schedule (or of an unexpected kind).
    Desync {
        /// The offending peer's shard index.
        shard: u32,
        /// The received frame kind.
        frame_kind: u8,
        /// The sequence number this side was waiting on.
        want_sync: u64,
        /// The sequence number the frame carried.
        got_sync: u64,
    },
    /// A malformed or unexpected handshake frame.
    Handshake(String),
    /// An underlying I/O error (message only, for comparability).
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::DialTimeout {
                addr,
                attempts,
                cause,
            } => write!(
                f,
                "dial to {addr} failed after {attempts} attempts: {cause}"
            ),
            NetError::AcceptTimeout { waited_ms } => {
                write!(f, "no peer dialed within {waited_ms} ms")
            }
            NetError::PeerTimeout { shard, sync } => {
                write!(
                    f,
                    "shard {shard} silent past the read deadline at sync {sync}"
                )
            }
            NetError::PeerLost { shard, sync, cause } => {
                write!(f, "lost link to shard {shard} at sync {sync}: {cause}")
            }
            NetError::ReplayGap {
                shard,
                have_sync,
                pruned_through,
            } => write!(
                f,
                "shard {shard} acked sync {have_sync} but retention already pruned \
                 through sync {pruned_through}; exact replay is impossible"
            ),
            NetError::Desync {
                shard,
                frame_kind,
                want_sync,
                got_sync,
            } => write!(
                f,
                "shard {shard} sent frame kind {frame_kind} at sync {got_sync}, \
                 expected sync {want_sync}"
            ),
            NetError::Handshake(e) => write!(f, "handshake failure: {e}"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// Dials `addr` with a per-attempt timeout and bounded exponential
/// backoff between attempts.
pub(super) fn dial_retry(addr: SocketAddr, config: &NetConfig) -> Result<TcpStream, NetError> {
    let attempts = config.max_retries + 1;
    let mut backoff = config.retry_backoff;
    let mut last = String::new();
    for attempt in 0..attempts {
        match TcpStream::connect_timeout(&addr, config.dial_timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < attempts {
            thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_secs(1));
        }
    }
    Err(NetError::DialTimeout {
        addr,
        attempts,
        cause: last,
    })
}

/// Accepts one connection within `budget`, polling a non-blocking
/// listener. The listener is restored to blocking mode on exit; the
/// accepted stream comes back blocking with `TCP_NODELAY` set.
pub(super) fn accept_deadline(
    listener: &TcpListener,
    budget: Duration,
) -> Result<TcpStream, NetError> {
    let start = Instant::now();
    listener.set_nonblocking(true)?;
    let result = loop {
        match listener.accept() {
            Ok((stream, _)) => break Ok(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if start.elapsed() >= budget {
                    break Err(NetError::AcceptTimeout {
                        waited_ms: start.elapsed().as_millis() as u64,
                    });
                }
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) => break Err(e.into()),
        }
    };
    listener.set_nonblocking(false)?;
    let stream = result?;
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Reads one frame under `timeout`, asserts its kind, and decodes the
/// payload.
pub(super) fn expect_payload<T: Wire>(
    stream: &mut TcpStream,
    want: u8,
    timeout: Duration,
) -> Result<T, NetError> {
    stream.set_read_timeout(Some(timeout))?;
    let frame = read_frame(stream).map_err(|e| NetError::Handshake(e.to_string()))?;
    if frame.kind != want {
        return Err(NetError::Handshake(format!(
            "expected frame kind {want}, got {}",
            frame.kind
        )));
    }
    T::from_wire(&frame.payload).map_err(|e| NetError::Handshake(e.to_string()))
}

/// Shard → coordinator: "my mesh listener is on this localhost port".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Port of the shard's mesh `TcpListener` on 127.0.0.1.
    pub listen_port: u16,
}

impl Wire for Hello {
    fn put(&self, buf: &mut Vec<u8>) {
        self.listen_port.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Hello {
            listen_port: u16::take(r)?,
        })
    }
}

/// Coordinator → shard: your index, the world size, and where everyone
/// listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// This shard's index in `0..n_shards`.
    pub shard: u32,
    /// Total number of shards.
    pub n_shards: u32,
    /// `(shard index, mesh port)` for every shard, self included.
    pub peers: Vec<(u32, u16)>,
}

impl Wire for Assign {
    fn put(&self, buf: &mut Vec<u8>) {
        self.shard.put(buf);
        self.n_shards.put(buf);
        self.peers.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Assign {
            shard: u32::take(r)?,
            n_shards: u32::take(r)?,
            peers: Vec::take(r)?,
        })
    }
}

/// First frame on a freshly dialed mesh connection: who is calling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Join {
    /// The dialing shard's index.
    pub from: u32,
}

impl Wire for Join {
    fn put(&self, buf: &mut Vec<u8>) {
        self.from.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Join {
            from: u32::take(r)?,
        })
    }
}

/// First frame after a restart: who is calling and how far they got.
///
/// A peer that merely dropped its connection rejoins with its last
/// applied sync; a peer restarted from scratch (supervised recovery)
/// rejoins with `have_sync = 0` and is replayed the whole retained
/// history while it deterministically re-executes the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejoin {
    /// The rejoining shard's index.
    pub from: u32,
    /// Highest sync the rejoiner has fully applied; the survivor replays
    /// every retained frame with a strictly newer sync.
    pub have_sync: u64,
}

impl Wire for Rejoin {
    fn put(&self, buf: &mut Vec<u8>) {
        self.from.put(buf);
        self.have_sync.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Rejoin {
            from: u32::take(r)?,
            have_sync: u64::take(r)?,
        })
    }
}

/// Default trailing-sync retention window ([`NetConfig::retained_syncs`]).
/// Two, because the parity double-buffer means a live peer is never more
/// than one sync behind the sender.
pub const RETAINED_SYNCS: u64 = 2;

/// Why [`Link::recv_deadline`] came back without a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvFailure {
    /// The peer sent nothing within the read deadline (it may still be
    /// alive but stuck).
    Timeout,
    /// The stream failed; the connection is gone.
    Lost(FrameError),
}

/// One full-duplex connection to a peer shard.
///
/// Writes go through a [`BufWriter`]; the engine batches every frame of a
/// communication round and calls [`Link::flush`] once — the round barrier
/// *is* the flush point. Reads happen on a dedicated thread per peer
/// (sender and receiver can both be mid-`write_all` without deadlock)
/// feeding an in-process channel drained by [`Link::recv_deadline`]. The
/// reader thread's handle is owned by the link: [`Link::resume`] /
/// [`Link::reconnect`] shut the old socket down and *join* the old
/// thread before re-arming, so reconnect cycles never leak threads.
#[derive(Debug)]
pub struct Link {
    /// The peer shard's index.
    pub peer: u32,
    /// Whether the connection is believed healthy. The engine clears
    /// this on any send/recv failure and re-arms it after a successful
    /// [`Link::resume`].
    pub(super) alive: bool,
    writer: BufWriter<TcpStream>,
    /// A clone of the current stream, kept to force the reader thread
    /// off a half-dead socket (`shutdown` unblocks its `read`).
    raw: TcpStream,
    rx: mpsc::Receiver<Result<Frame, FrameError>>,
    reader: Option<thread::JoinHandle<()>>,
    /// Sync-tagged frames of the last `retain_window` syncs, oldest
    /// first, for replay after a peer restart.
    retained: VecDeque<(u64, u8, Vec<u8>)>,
    retain_window: u64,
    /// Newest sync ever pruned from `retained` (0 when nothing was).
    pruned_through: u64,
}

/// A spawned reader: the frame channel plus the thread's join handle
/// (joined by [`Link::detach_reader`] so reconnect cycles never leak
/// threads).
type ReaderHandle = (
    mpsc::Receiver<Result<Frame, FrameError>>,
    thread::JoinHandle<()>,
);

fn spawn_reader(peer: u32, stream: TcpStream) -> io::Result<ReaderHandle> {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(format!("netlink-rx-{peer}"))
        .spawn(move || {
            let mut stream = stream;
            loop {
                match read_frame(&mut stream) {
                    Ok(frame) => {
                        if tx.send(Ok(frame)).is_err() {
                            return; // link dropped locally
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        })?;
    Ok((rx, handle))
}

impl Link {
    /// Wraps an established connection to `peer`, retaining the trailing
    /// `retain_window` syncs for replay.
    ///
    /// # Errors
    ///
    /// Fails if the stream cannot be cloned for the reader thread.
    pub fn new(peer: u32, stream: TcpStream, retain_window: u64) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        // Handshake reads may have armed a read timeout on this stream;
        // the reader thread needs plain blocking reads (a long silent
        // phase is not an error).
        stream.set_read_timeout(None)?;
        let raw = stream.try_clone()?;
        let (rx, reader) = spawn_reader(peer, stream.try_clone()?)?;
        Ok(Link {
            peer,
            alive: true,
            writer: BufWriter::new(stream),
            raw,
            rx,
            reader: Some(reader),
            retained: VecDeque::new(),
            retain_window,
            pruned_through: 0,
        })
    }

    /// Queues a frame that is *not* replayed on reconnect (membership and
    /// result traffic).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send(&mut self, frame_kind: u8, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, frame_kind, payload)
    }

    /// Queues a sync-tagged frame, retaining it for replay *before*
    /// attempting the write — a frame that fails to transmit is still
    /// replayable after the peer rejoins. Frames older than the retention
    /// window are pruned (and remembered in [`Link::pruned_through`]).
    ///
    /// # Errors
    ///
    /// Propagates write errors (the frame is retained regardless).
    pub fn send_retained(&mut self, sync: u64, frame_kind: u8, payload: &[u8]) -> io::Result<()> {
        while let Some(&(s, _, _)) = self.retained.front() {
            if s.saturating_add(self.retain_window) > sync {
                break;
            }
            self.pruned_through = self.pruned_through.max(s);
            self.retained.pop_front();
        }
        self.retained
            .push_back((sync, frame_kind, payload.to_vec()));
        write_frame(&mut self.writer, frame_kind, payload)
    }

    /// Newest sync pruned from retention (0 when nothing was pruned). A
    /// rejoiner must have acked at least this sync for exact replay.
    #[must_use]
    pub fn pruned_through(&self) -> u64 {
        self.pruned_through
    }

    /// Flushes everything queued since the last barrier.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Blocks for the next inbound frame (no deadline; tests and replay
    /// consumers only — the engine reads via [`Link::recv_deadline`]).
    ///
    /// # Errors
    ///
    /// Returns the reader thread's [`FrameError`]; a vanished reader
    /// reports as [`FrameError::Closed`].
    pub fn recv(&mut self) -> Result<Frame, FrameError> {
        self.rx.recv().unwrap_or(Err(FrameError::Closed))
    }

    /// Waits up to `timeout` for the next inbound frame.
    ///
    /// # Errors
    ///
    /// [`RecvFailure::Timeout`] when the peer is silent past the
    /// deadline; [`RecvFailure::Lost`] when the stream failed (a
    /// vanished reader thread reports as [`FrameError::Closed`]).
    pub fn recv_deadline(&mut self, timeout: Duration) -> Result<Frame, RecvFailure> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(frame)) => Ok(frame),
            Ok(Err(e)) => Err(RecvFailure::Lost(e)),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvFailure::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvFailure::Lost(FrameError::Closed)),
        }
    }

    /// Forces the current socket down and joins the reader thread. The
    /// blocked `read` observes the shutdown and exits, so reconnect
    /// cycles cannot accumulate threads.
    fn detach_reader(&mut self) {
        let _ = self.raw.shutdown(Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }

    /// Re-arms the link over a fresh connection after the peer restarted,
    /// replaying every retained frame with sync > `have_sync` (in
    /// original order) and flushing.
    ///
    /// # Errors
    ///
    /// [`NetError::ReplayGap`] when `have_sync` predates the retained
    /// window (replay would silently skip pruned syncs); otherwise
    /// propagates clone/write errors on the new stream.
    pub fn resume(&mut self, stream: TcpStream, have_sync: u64) -> Result<(), NetError> {
        if have_sync < self.pruned_through {
            return Err(NetError::ReplayGap {
                shard: self.peer,
                have_sync,
                pruned_through: self.pruned_through,
            });
        }
        self.rearm(stream)?;
        for (sync, frame_kind, payload) in &self.retained {
            if *sync > have_sync {
                write_frame(&mut self.writer, *frame_kind, payload).map_err(NetError::from)?;
            }
        }
        self.writer.flush()?;
        Ok(())
    }

    /// Swaps in a fresh connection without replaying anything: the
    /// *dialing* side of a reconnect (it announced its own `have_sync`
    /// via [`Rejoin`]; the peer replays, this side just resumes sending
    /// new frames).
    ///
    /// # Errors
    ///
    /// Propagates clone errors on the new stream.
    pub fn reconnect(&mut self, stream: TcpStream) -> Result<(), NetError> {
        self.rearm(stream)?;
        Ok(())
    }

    /// Tears the connection down deliberately (chaos link-drop): the
    /// socket is shut down and the reader joined. The link is unusable
    /// until [`Link::reconnect`].
    pub fn force_close(&mut self) {
        self.detach_reader();
    }

    /// Writes only the first `keep` bytes of a frame and flushes — chaos
    /// tooling modeling a sender dying inside `write_all`.
    pub(super) fn send_torn(
        &mut self,
        frame_kind: u8,
        payload: &[u8],
        keep: usize,
    ) -> io::Result<()> {
        super::frame::write_torn_frame(&mut self.writer, frame_kind, payload, keep)?;
        self.writer.flush()
    }

    fn rearm(&mut self, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(None)?;
        self.detach_reader();
        self.raw = stream.try_clone()?;
        let (rx, reader) = spawn_reader(self.peer, stream.try_clone()?)?;
        self.rx = rx;
        self.reader = Some(reader);
        self.writer = BufWriter::new(stream);
        self.alive = true;
        Ok(())
    }
}

impl Drop for Link {
    fn drop(&mut self) {
        self.detach_reader();
    }
}

/// A completed rendezvous: the control streams (shard order) for result
/// collection, plus the mesh roster — which a supervisor needs to tell a
/// respawned shard where the survivors listen.
#[derive(Debug)]
pub struct Assignment {
    /// One control stream per shard, in shard order.
    pub controls: Vec<TcpStream>,
    /// `(shard index, mesh port)` for every shard.
    pub peers: Vec<(u32, u16)>,
}

/// The rendezvous point: hands out shard assignments and collects
/// results.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    /// Binds an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind() -> io::Result<Self> {
        Ok(Coordinator {
            listener: TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?,
        })
    }

    /// The port shards must dial.
    ///
    /// # Panics
    ///
    /// Panics if the freshly bound listener has no local address (cannot
    /// happen for a successful bind).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.listener.local_addr().expect("bound listener").port()
    }

    /// Accepts exactly `n_shards` [`Hello`]s, assigns indices in
    /// connection order, and sends every shard its [`Assign`]. The whole
    /// accept phase runs under `config.read_timeout` — a shard that
    /// never dials fails the run with [`NetError::AcceptTimeout`]
    /// instead of hanging.
    ///
    /// # Errors
    ///
    /// [`NetError::AcceptTimeout`] when fewer than `n_shards` dialed in
    /// time; [`NetError::Handshake`] for a malformed `Hello`; `Io` for
    /// transport failures.
    pub fn assign(&self, n_shards: u32, config: &NetConfig) -> Result<Assignment, NetError> {
        let start = Instant::now();
        let mut controls = Vec::with_capacity(n_shards as usize);
        let mut peers = Vec::with_capacity(n_shards as usize);
        for shard in 0..n_shards {
            let remaining = config.read_timeout.checked_sub(start.elapsed()).ok_or(
                NetError::AcceptTimeout {
                    waited_ms: start.elapsed().as_millis() as u64,
                },
            )?;
            let mut stream = accept_deadline(&self.listener, remaining)?;
            let hello: Hello = expect_payload(&mut stream, kind::HELLO, config.read_timeout)?;
            peers.push((shard, hello.listen_port));
            controls.push(stream);
        }
        for (shard, stream) in controls.iter_mut().enumerate() {
            let assign = Assign {
                shard: shard as u32,
                n_shards,
                peers: peers.clone(),
            };
            write_frame(stream, kind::ASSIGN, &assign.to_wire())?;
            stream.flush()?;
        }
        Ok(Assignment { controls, peers })
    }

    /// Accepts one late control connection — a respawned shard dialing
    /// back in so it can ship its `RESULT` — within `budget`.
    ///
    /// # Errors
    ///
    /// [`NetError::AcceptTimeout`] when nobody dials in time.
    pub fn accept_control(&self, budget: Duration) -> Result<TcpStream, NetError> {
        accept_deadline(&self.listener, budget)
    }
}

/// A shard's membership handle after joining: its assignment, the open
/// control stream back to the coordinator, and its own mesh listener.
#[derive(Debug)]
pub struct Membership {
    /// The coordinator's assignment (index, world size, peer table).
    pub assign: Assign,
    /// Control stream to the coordinator; the shard ships its `RESULT`
    /// frame back over it at the end of the run.
    pub control: TcpStream,
    /// This shard's mesh listener; kept open for the lifetime of the run
    /// so a restarted peer can always dial back in.
    pub listener: TcpListener,
}

/// Dials the coordinator (with retry/backoff), checks in, and waits for
/// the assignment under the read deadline.
///
/// # Errors
///
/// [`NetError::DialTimeout`] when the coordinator never answers;
/// [`NetError::Handshake`] for a malformed or overdue `Assign`.
pub fn join(coordinator: SocketAddr, config: &NetConfig) -> Result<Membership, NetError> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).map_err(NetError::from)?;
    let listen_port = listener.local_addr().map_err(NetError::from)?.port();
    let mut control = dial_retry(coordinator, config)?;
    write_frame(&mut control, kind::HELLO, &Hello { listen_port }.to_wire())?;
    control.flush().map_err(NetError::from)?;
    let assign: Assign = expect_payload(&mut control, kind::ASSIGN, config.read_timeout)?;
    Ok(Membership {
        assign,
        control,
        listener,
    })
}

/// Builds the full mesh: one [`Link`] per peer, indexed by peer shard.
/// Shard `i` dials every `j < i` (retry/backoff per dial) and accepts
/// from every `j > i` under the read deadline.
///
/// # Errors
///
/// Structured [`NetError`]s for dial/accept/handshake failures.
pub fn connect_mesh(membership: &Membership, config: &NetConfig) -> Result<Vec<Link>, NetError> {
    let me = membership.assign.shard;
    let n = membership.assign.n_shards;
    let mut links: Vec<Option<Link>> = (0..n).map(|_| None).collect();
    // Dial the lower-indexed peers.
    for &(peer, port) in &membership.assign.peers {
        if peer >= me {
            continue;
        }
        let mut stream = dial_retry(SocketAddr::from((Ipv4Addr::LOCALHOST, port)), config)?;
        write_frame(&mut stream, kind::JOIN, &Join { from: me }.to_wire())?;
        stream.flush().map_err(NetError::from)?;
        links[peer as usize] = Some(Link::new(peer, stream, config.retained_syncs)?);
    }
    // Accept the higher-indexed peers (in whatever order they dial).
    let start = Instant::now();
    for _ in me + 1..n {
        let remaining =
            config
                .read_timeout
                .checked_sub(start.elapsed())
                .ok_or(NetError::AcceptTimeout {
                    waited_ms: start.elapsed().as_millis() as u64,
                })?;
        let mut stream = accept_deadline(&membership.listener, remaining)?;
        let joiner: Join = expect_payload(&mut stream, kind::JOIN, config.read_timeout)?;
        if joiner.from <= me || joiner.from >= n || links[joiner.from as usize].is_some() {
            return Err(NetError::Handshake(format!(
                "unexpected join from {}",
                joiner.from
            )));
        }
        links[joiner.from as usize] = Some(Link::new(joiner.from, stream, config.retained_syncs)?);
    }
    Ok(links.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_payloads_roundtrip() {
        let assign = Assign {
            shard: 1,
            n_shards: 4,
            peers: vec![(0, 1000), (1, 1001), (2, 1002), (3, 1003)],
        };
        assert_eq!(Assign::from_wire(&assign.to_wire()).unwrap(), assign);
        let hello = Hello { listen_port: 777 };
        assert_eq!(Hello::from_wire(&hello.to_wire()).unwrap(), hello);
        let join = Join { from: 3 };
        assert_eq!(Join::from_wire(&join.to_wire()).unwrap(), join);
        let rejoin = Rejoin {
            from: 2,
            have_sync: 41,
        };
        assert_eq!(Rejoin::from_wire(&rejoin.to_wire()).unwrap(), rejoin);
    }

    /// Coordinator + three shards rendezvous and build the mesh; each
    /// pair exchanges a ping tagged with the sender's index.
    #[test]
    fn mesh_forms_and_exchanges() {
        let coordinator = Coordinator::bind().unwrap();
        let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, coordinator.port()));
        let coord_thread =
            thread::spawn(move || coordinator.assign(3, &NetConfig::default()).unwrap());
        let shards: Vec<_> = (0..3)
            .map(|_| {
                thread::spawn(move || {
                    let config = NetConfig::default();
                    let membership = join(addr, &config).unwrap();
                    let me = membership.assign.shard;
                    let mut links = connect_mesh(&membership, &config).unwrap();
                    assert_eq!(links.len(), 2);
                    for link in &mut links {
                        link.send(kind::ROUND, &me.to_wire()).unwrap();
                        link.flush().unwrap();
                    }
                    for link in &mut links {
                        let frame = link.recv().unwrap();
                        assert_eq!(frame.kind, kind::ROUND);
                        assert_eq!(u32::from_wire(&frame.payload).unwrap(), link.peer);
                    }
                    me
                })
            })
            .collect();
        let mut ids: Vec<u32> = shards.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(coord_thread.join().unwrap().controls.len(), 3);
    }

    /// The reconnect path: a peer "restarts" (drops its connection
    /// mid-phase), dials back with `Rejoin`, and the survivor replays
    /// exactly the unacked syncs.
    #[test]
    fn link_replays_unacked_syncs_on_resume() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();

        // Survivor side: accept, send three sync-tagged rounds, then
        // service a rejoin that acked only sync 1.
        let survivor = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut link = Link::new(1, stream, RETAINED_SYNCS + 1).unwrap();
            for sync in 1u64..=3 {
                link.send_retained(sync, kind::ROUND, &sync.to_wire())
                    .unwrap();
            }
            link.flush().unwrap();
            // Peer restarts and dials back in.
            let (mut stream, _) = listener.accept().unwrap();
            let rejoin: Rejoin =
                expect_payload(&mut stream, kind::REJOIN, Duration::from_secs(10)).unwrap();
            assert_eq!(
                rejoin,
                Rejoin {
                    from: 1,
                    have_sync: 1
                }
            );
            link.resume(stream, rejoin.have_sync).unwrap();
            // The resumed link keeps working for new syncs.
            link.send_retained(4, kind::ROUND, &4u64.to_wire()).unwrap();
            link.flush().unwrap();
        });

        // First incarnation: read sync 1, then "crash" (drop the stream).
        let stream = TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap();
        let mut link = Link::new(0, stream, RETAINED_SYNCS).unwrap();
        let first = link.recv().unwrap();
        assert_eq!(u64::from_wire(&first.payload).unwrap(), 1);
        drop(link);

        // Second incarnation: rejoin claiming sync 1; syncs 2, 3 must be
        // replayed, then 4 arrives live.
        let mut stream = TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap();
        let rejoin = Rejoin {
            from: 1,
            have_sync: 1,
        };
        write_frame(&mut stream, kind::REJOIN, &rejoin.to_wire()).unwrap();
        stream.flush().unwrap();
        let mut link = Link::new(0, stream, RETAINED_SYNCS).unwrap();
        for expect in 2u64..=4 {
            let frame = link.recv().unwrap();
            assert_eq!(frame.kind, kind::ROUND);
            assert_eq!(u64::from_wire(&frame.payload).unwrap(), expect);
        }
        survivor.join().unwrap();
    }

    fn local_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let dial = thread::spawn(move || TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap());
        let (near, _) = listener.accept().unwrap();
        (near, dial.join().unwrap())
    }

    /// Retention is bounded by the configured window, and the link
    /// remembers how far it pruned.
    #[test]
    fn retention_prunes_old_syncs() {
        let (near, _far) = local_pair();
        let mut link = Link::new(1, near, RETAINED_SYNCS).unwrap();
        for sync in 1u64..=10 {
            link.send_retained(sync, kind::ROUND, &sync.to_wire())
                .unwrap();
        }
        let kept: Vec<u64> = link.retained.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(kept, vec![9, 10]);
        assert_eq!(link.pruned_through(), 8);
    }

    /// Unbounded retention (supervised mode) never prunes.
    #[test]
    fn unbounded_retention_keeps_everything() {
        let (near, _far) = local_pair();
        let mut link = Link::new(1, near, u64::MAX).unwrap();
        for sync in 1u64..=50 {
            link.send_retained(sync, kind::ROUND, &sync.to_wire())
                .unwrap();
        }
        assert_eq!(link.retained.len(), 50);
        assert_eq!(link.pruned_through(), 0);
    }

    /// A rejoiner that acked a sync below the retained window gets a
    /// structured [`NetError::ReplayGap`], never a gapped replay.
    #[test]
    fn resume_refuses_replay_below_the_retained_window() {
        let (near, _far) = local_pair();
        let mut link = Link::new(3, near, RETAINED_SYNCS).unwrap();
        for sync in 1u64..=10 {
            link.send_retained(sync, kind::ROUND, &sync.to_wire())
                .unwrap();
        }
        let (fresh, _fresh_far) = local_pair();
        let err = link.resume(fresh, 7).unwrap_err();
        assert_eq!(
            err,
            NetError::ReplayGap {
                shard: 3,
                have_sync: 7,
                pruned_through: 8
            }
        );
    }

    /// A dial to a dead port fails with a structured error after the
    /// configured number of attempts — bounded, not hanging.
    #[test]
    fn dial_retry_is_bounded_and_structured() {
        // Bind-then-drop to get a port nothing listens on.
        let port = {
            let l = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
            l.local_addr().unwrap().port()
        };
        let config =
            NetConfig::default().with_dial(Duration::from_millis(200), Duration::from_millis(1), 2);
        let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
        match dial_retry(addr, &config) {
            Err(NetError::DialTimeout {
                addr: a, attempts, ..
            }) => {
                assert_eq!(a, addr);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected DialTimeout, got {other:?}"),
        }
    }

    /// `Coordinator::assign` no longer hangs when a shard never dials:
    /// it fails CI-visibly with a structured accept timeout.
    #[test]
    fn assign_times_out_structurally_when_a_shard_never_dials() {
        let coordinator = Coordinator::bind().unwrap();
        let config = NetConfig::default().with_read_timeout(Duration::from_millis(150));
        let start = Instant::now();
        let err = coordinator.assign(1, &config).unwrap_err();
        assert!(matches!(err, NetError::AcceptTimeout { .. }), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "accept deadline did not bound the wait"
        );
    }

    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .map(|d| d.count())
            .unwrap_or(0)
    }

    /// Reconnect cycles must not leak reader threads: `resume` shuts the
    /// old socket down and joins the old reader before re-arming.
    #[test]
    fn resume_cycles_do_not_grow_threads() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let dial = thread::spawn(move || TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap());
        let (near, _) = listener.accept().unwrap();
        let mut held = vec![dial.join().unwrap()];
        let mut link = Link::new(1, near, u64::MAX).unwrap();
        let before = thread_count();
        for cycle in 0..20 {
            // The far side goes half-dead: we keep the old far stream
            // alive (in `held`) so the old reader would block forever on
            // it were it not shut down by `resume`.
            let dial =
                thread::spawn(move || TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap());
            let (fresh_near, _) = listener.accept().unwrap();
            held.push(dial.join().unwrap());
            link.resume(fresh_near, cycle).unwrap();
        }
        let after = thread_count();
        assert!(
            after <= before + 4,
            "reader threads grew across reconnects: {before} -> {after}"
        );
        drop(link);
    }
}
