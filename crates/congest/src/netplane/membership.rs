//! Membership: how shard processes find each other and survive a restart.
//!
//! The topology is a star for control plus a full mesh for data:
//!
//! 1. A [`Coordinator`] binds an ephemeral localhost port. Every shard
//!    process dials it, sends [`Hello`] naming its own mesh-listener
//!    port, and blocks.
//! 2. Once all `k` shards have checked in, the coordinator assigns shard
//!    indices in connection order and sends each an [`Assign`] carrying
//!    the full peer table. The control stream stays open; shards ship
//!    their final result frames back over it.
//! 3. Shard `i` dials every shard `j < i` (sending [`Join`]) and accepts
//!    a connection from every `j > i` — every pair gets exactly one
//!    full-duplex [`Link`]. Listeners are bound before `Hello` is sent
//!    and nobody dials before `Assign` arrives, so the mesh cannot race.
//!
//! # Reconnect
//!
//! A [`Link`] retains the sync-tagged frames of the **last two syncs**
//! (mirroring the parity double-buffered mailboxes: at any instant the
//! peer can be at most one sync behind). A restarted peer dials back and
//! sends [`Rejoin`] with the highest sync it has fully applied; the
//! survivor answers via [`Link::resume`], replaying every retained frame
//! with a newer sync. Replay is deterministic — the frames are
//! byte-identical to the originals — so the rejoined peer observes the
//! exact stream it would have seen without the restart.

use super::frame::{kind, read_frame, write_frame, Frame, FrameError};
use super::wire::{Reader, Wire, WireError};
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write as _};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;

/// Shard → coordinator: "my mesh listener is on this localhost port".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Port of the shard's mesh `TcpListener` on 127.0.0.1.
    pub listen_port: u16,
}

impl Wire for Hello {
    fn put(&self, buf: &mut Vec<u8>) {
        self.listen_port.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Hello {
            listen_port: u16::take(r)?,
        })
    }
}

/// Coordinator → shard: your index, the world size, and where everyone
/// listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// This shard's index in `0..n_shards`.
    pub shard: u32,
    /// Total number of shards.
    pub n_shards: u32,
    /// `(shard index, mesh port)` for every shard, self included.
    pub peers: Vec<(u32, u16)>,
}

impl Wire for Assign {
    fn put(&self, buf: &mut Vec<u8>) {
        self.shard.put(buf);
        self.n_shards.put(buf);
        self.peers.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Assign {
            shard: u32::take(r)?,
            n_shards: u32::take(r)?,
            peers: Vec::take(r)?,
        })
    }
}

/// First frame on a freshly dialed mesh connection: who is calling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Join {
    /// The dialing shard's index.
    pub from: u32,
}

impl Wire for Join {
    fn put(&self, buf: &mut Vec<u8>) {
        self.from.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Join {
            from: u32::take(r)?,
        })
    }
}

/// First frame after a restart: who is calling and how far they got.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejoin {
    /// The rejoining shard's index.
    pub from: u32,
    /// Highest sync the rejoiner has fully applied; the survivor replays
    /// every retained frame with a strictly newer sync.
    pub have_sync: u64,
}

impl Wire for Rejoin {
    fn put(&self, buf: &mut Vec<u8>) {
        self.from.put(buf);
        self.have_sync.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Rejoin {
            from: u32::take(r)?,
            have_sync: u64::take(r)?,
        })
    }
}

/// How many trailing syncs a link retains for replay. Two, because the
/// parity double-buffer means a live peer is never more than one sync
/// behind the sender.
const RETAINED_SYNCS: u64 = 2;

/// One full-duplex connection to a peer shard.
///
/// Writes go through a [`BufWriter`]; the engine batches every frame of a
/// communication round and calls [`Link::flush`] once — the round barrier
/// *is* the flush point. Reads happen on a dedicated thread per peer
/// (sender and receiver can both be mid-`write_all` without deadlock)
/// feeding an in-process channel drained by [`Link::recv`].
#[derive(Debug)]
pub struct Link {
    /// The peer shard's index.
    pub peer: u32,
    writer: BufWriter<TcpStream>,
    rx: mpsc::Receiver<Result<Frame, FrameError>>,
    /// Sync-tagged frames of the last [`RETAINED_SYNCS`] syncs, oldest
    /// first, for replay after a peer restart.
    retained: VecDeque<(u64, u8, Vec<u8>)>,
}

fn spawn_reader(stream: TcpStream) -> mpsc::Receiver<Result<Frame, FrameError>> {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let mut stream = stream;
        loop {
            match read_frame(&mut stream) {
                Ok(frame) => {
                    if tx.send(Ok(frame)).is_err() {
                        return; // link dropped locally
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    });
    rx
}

impl Link {
    /// Wraps an established connection to `peer`.
    ///
    /// # Errors
    ///
    /// Fails if the stream cannot be cloned for the reader thread.
    pub fn new(peer: u32, stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let rx = spawn_reader(stream.try_clone()?);
        Ok(Link {
            peer,
            writer: BufWriter::new(stream),
            rx,
            retained: VecDeque::new(),
        })
    }

    /// Queues a frame that is *not* replayed on reconnect (membership and
    /// result traffic).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send(&mut self, frame_kind: u8, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, frame_kind, payload)
    }

    /// Queues a sync-tagged frame and retains it for replay. Frames of
    /// syncs older than `sync - 1` are pruned.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_retained(&mut self, sync: u64, frame_kind: u8, payload: &[u8]) -> io::Result<()> {
        while let Some(&(s, _, _)) = self.retained.front() {
            if s + RETAINED_SYNCS > sync {
                break;
            }
            self.retained.pop_front();
        }
        self.retained
            .push_back((sync, frame_kind, payload.to_vec()));
        write_frame(&mut self.writer, frame_kind, payload)
    }

    /// Flushes everything queued since the last barrier.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Blocks for the next inbound frame.
    ///
    /// # Errors
    ///
    /// Returns the reader thread's [`FrameError`]; a vanished reader
    /// reports as [`FrameError::Closed`].
    pub fn recv(&mut self) -> Result<Frame, FrameError> {
        self.rx.recv().unwrap_or(Err(FrameError::Closed))
    }

    /// Re-arms the link over a fresh connection after the peer restarted,
    /// replaying every retained frame with sync > `have_sync` (in
    /// original order) and flushing.
    ///
    /// # Errors
    ///
    /// Propagates clone/write errors on the new stream.
    pub fn resume(&mut self, stream: TcpStream, have_sync: u64) -> io::Result<()> {
        stream.set_nodelay(true)?;
        self.rx = spawn_reader(stream.try_clone()?);
        self.writer = BufWriter::new(stream);
        for (sync, frame_kind, payload) in &self.retained {
            if *sync > have_sync {
                write_frame(&mut self.writer, *frame_kind, payload)?;
            }
        }
        self.writer.flush()
    }
}

/// The rendezvous point: hands out shard assignments and collects
/// results.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    /// Binds an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind() -> io::Result<Self> {
        Ok(Coordinator {
            listener: TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?,
        })
    }

    /// The port shards must dial.
    ///
    /// # Panics
    ///
    /// Panics if the freshly bound listener has no local address (cannot
    /// happen for a successful bind).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.listener.local_addr().expect("bound listener").port()
    }

    /// Accepts exactly `n_shards` [`Hello`]s, assigns indices in
    /// connection order, sends every shard its [`Assign`], and returns
    /// the control streams in shard order (for result collection).
    ///
    /// # Errors
    ///
    /// Propagates accept/handshake I/O errors; a malformed `Hello` frame
    /// surfaces as [`io::ErrorKind::InvalidData`].
    pub fn assign(&self, n_shards: u32) -> io::Result<Vec<TcpStream>> {
        let mut streams = Vec::with_capacity(n_shards as usize);
        let mut peers = Vec::with_capacity(n_shards as usize);
        for shard in 0..n_shards {
            let (stream, _) = self.listener.accept()?;
            stream.set_nodelay(true)?;
            let mut stream = stream;
            let hello: Hello = expect_payload(&mut stream, kind::HELLO)?;
            peers.push((shard, hello.listen_port));
            streams.push(stream);
        }
        for (shard, stream) in streams.iter_mut().enumerate() {
            let assign = Assign {
                shard: shard as u32,
                n_shards,
                peers: peers.clone(),
            };
            write_frame(stream, kind::ASSIGN, &assign.to_wire())?;
            stream.flush()?;
        }
        Ok(streams)
    }
}

/// Reads one frame, asserts its kind, and decodes the payload.
pub(super) fn expect_payload<T: Wire>(stream: &mut TcpStream, want: u8) -> io::Result<T> {
    let frame = read_frame(stream).map_err(invalid_data)?;
    if frame.kind != want {
        return Err(invalid_data(format!(
            "expected frame kind {want}, got {}",
            frame.kind
        )));
    }
    T::from_wire(&frame.payload).map_err(invalid_data)
}

fn invalid_data(e: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// A shard's membership handle after joining: its assignment, the open
/// control stream back to the coordinator, and its own mesh listener.
#[derive(Debug)]
pub struct Membership {
    /// The coordinator's assignment (index, world size, peer table).
    pub assign: Assign,
    /// Control stream to the coordinator; the shard ships its `RESULT`
    /// frame back over it at the end of the run.
    pub control: TcpStream,
    /// This shard's mesh listener; kept open for the lifetime of the run
    /// so a restarted peer can always dial back in.
    pub listener: TcpListener,
}

/// Dials the coordinator, checks in, and blocks until assigned.
///
/// # Errors
///
/// Propagates connect/handshake I/O errors.
pub fn join(coordinator: SocketAddr) -> io::Result<Membership> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    let listen_port = listener.local_addr()?.port();
    let mut control = TcpStream::connect(coordinator)?;
    control.set_nodelay(true)?;
    write_frame(&mut control, kind::HELLO, &Hello { listen_port }.to_wire())?;
    control.flush()?;
    let assign: Assign = expect_payload(&mut control, kind::ASSIGN)?;
    Ok(Membership {
        assign,
        control,
        listener,
    })
}

/// Builds the full mesh: one [`Link`] per peer, indexed by peer shard.
/// Shard `i` dials every `j < i` and accepts from every `j > i`.
///
/// # Errors
///
/// Propagates connect/accept/handshake I/O errors.
pub fn connect_mesh(membership: &Membership) -> io::Result<Vec<Link>> {
    let me = membership.assign.shard;
    let n = membership.assign.n_shards;
    let mut links: Vec<Option<Link>> = (0..n).map(|_| None).collect();
    // Dial the lower-indexed peers.
    for &(peer, port) in &membership.assign.peers {
        if peer >= me {
            continue;
        }
        let mut stream = TcpStream::connect((Ipv4Addr::LOCALHOST, port))?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, kind::JOIN, &Join { from: me }.to_wire())?;
        stream.flush()?;
        links[peer as usize] = Some(Link::new(peer, stream)?);
    }
    // Accept the higher-indexed peers (in whatever order they dial).
    for _ in me + 1..n {
        let (mut stream, _) = membership.listener.accept()?;
        let joiner: Join = expect_payload(&mut stream, kind::JOIN)?;
        if joiner.from <= me || joiner.from >= n || links[joiner.from as usize].is_some() {
            return Err(invalid_data(format!(
                "unexpected join from {}",
                joiner.from
            )));
        }
        links[joiner.from as usize] = Some(Link::new(joiner.from, stream)?);
    }
    Ok(links.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_payloads_roundtrip() {
        let assign = Assign {
            shard: 1,
            n_shards: 4,
            peers: vec![(0, 1000), (1, 1001), (2, 1002), (3, 1003)],
        };
        assert_eq!(Assign::from_wire(&assign.to_wire()).unwrap(), assign);
        let hello = Hello { listen_port: 777 };
        assert_eq!(Hello::from_wire(&hello.to_wire()).unwrap(), hello);
        let join = Join { from: 3 };
        assert_eq!(Join::from_wire(&join.to_wire()).unwrap(), join);
        let rejoin = Rejoin {
            from: 2,
            have_sync: 41,
        };
        assert_eq!(Rejoin::from_wire(&rejoin.to_wire()).unwrap(), rejoin);
    }

    /// Coordinator + three shards rendezvous and build the mesh; each
    /// pair exchanges a ping tagged with the sender's index.
    #[test]
    fn mesh_forms_and_exchanges() {
        let coordinator = Coordinator::bind().unwrap();
        let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, coordinator.port()));
        let coord_thread = thread::spawn(move || coordinator.assign(3).unwrap());
        let shards: Vec<_> = (0..3)
            .map(|_| {
                thread::spawn(move || {
                    let membership = join(addr).unwrap();
                    let me = membership.assign.shard;
                    let mut links = connect_mesh(&membership).unwrap();
                    assert_eq!(links.len(), 2);
                    for link in &mut links {
                        link.send(kind::ROUND, &me.to_wire()).unwrap();
                        link.flush().unwrap();
                    }
                    for link in &mut links {
                        let frame = link.recv().unwrap();
                        assert_eq!(frame.kind, kind::ROUND);
                        assert_eq!(u32::from_wire(&frame.payload).unwrap(), link.peer);
                    }
                    me
                })
            })
            .collect();
        let mut ids: Vec<u32> = shards.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(coord_thread.join().unwrap().len(), 3);
    }

    /// The reconnect path: a peer "restarts" (drops its connection
    /// mid-phase), dials back with `Rejoin`, and the survivor replays
    /// exactly the unacked syncs.
    #[test]
    fn link_replays_unacked_syncs_on_resume() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();

        // Survivor side: accept, send three sync-tagged rounds, then
        // service a rejoin that acked only sync 1.
        let survivor = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut link = Link::new(1, stream).unwrap();
            for sync in 1u64..=3 {
                link.send_retained(sync, kind::ROUND, &sync.to_wire())
                    .unwrap();
            }
            link.flush().unwrap();
            // Peer restarts and dials back in.
            let (mut stream, _) = listener.accept().unwrap();
            let rejoin: Rejoin = expect_payload(&mut stream, kind::REJOIN).unwrap();
            assert_eq!(
                rejoin,
                Rejoin {
                    from: 1,
                    have_sync: 1
                }
            );
            link.resume(stream, rejoin.have_sync).unwrap();
            // The resumed link keeps working for new syncs.
            link.send_retained(4, kind::ROUND, &4u64.to_wire()).unwrap();
            link.flush().unwrap();
        });

        // First incarnation: read sync 1, then "crash" (drop the stream).
        let stream = TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap();
        let mut link = Link::new(0, stream).unwrap();
        let first = link.recv().unwrap();
        assert_eq!(u64::from_wire(&first.payload).unwrap(), 1);
        drop(link);

        // Second incarnation: rejoin claiming sync 1; syncs 2, 3 must be
        // replayed, then 4 arrives live.
        let mut stream = TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap();
        let rejoin = Rejoin {
            from: 1,
            have_sync: 1,
        };
        write_frame(&mut stream, kind::REJOIN, &rejoin.to_wire()).unwrap();
        stream.flush().unwrap();
        let mut link = Link::new(0, stream).unwrap();
        for expect in 2u64..=4 {
            let frame = link.recv().unwrap();
            assert_eq!(frame.kind, kind::ROUND);
            assert_eq!(u64::from_wire(&frame.payload).unwrap(), expect);
        }
        survivor.join().unwrap();
    }

    /// Retention is bounded: only the last two syncs stay replayable.
    #[test]
    fn retention_prunes_old_syncs() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let dial = thread::spawn(move || TcpStream::connect((Ipv4Addr::LOCALHOST, port)).unwrap());
        let (stream, _) = listener.accept().unwrap();
        let _far = dial.join().unwrap();
        let mut link = Link::new(1, stream).unwrap();
        for sync in 1u64..=10 {
            link.send_retained(sync, kind::ROUND, &sync.to_wire())
                .unwrap();
        }
        let kept: Vec<u64> = link.retained.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(kept, vec![9, 10]);
    }
}
