//! Process-per-shard network transport: CONGEST over real sockets.
//!
//! Everything before this module simulates the CONGEST model inside one
//! address space. The netplane splits a run across OS processes — one
//! *shard* per process, each owning a contiguous slice of the node set —
//! with round traffic carried over localhost TCP. The defining property
//! is inherited from the rest of the repo: **a sharded run is
//! bit-identical to the sequential reference** per `(graph, seed,
//! config)`, and `tests/net_equivalence.rs` proves it on every CI run.
//!
//! # Wire format
//!
//! Every transmission is a frame (see [`frame`]):
//!
//! ```text
//! [0xC6][kind: u8][len: u32 LE][payload: len bytes]
//! ```
//!
//! Payloads are encoded by the hand-rolled [`Wire`] codec ([`wire`]):
//! fixed-width little-endian integers, one-byte bools/tags, `f64` as
//! IEEE-754 bits, length-prefixed sequences, and [`SmallIds`] batches by
//! contents. There are no external serialization dependencies. Decoding
//! is total — malformed bytes produce structured [`WireError`] /
//! [`FrameError`] values, never panics.
//!
//! # Barrier / flush contract
//!
//! [`NetPlane::execute_with`] does not implement a round loop of its
//! own: it drives the shared engine core (see the
//! [runtime module docs](crate::runtime)) through the mesh `Transport`.
//! The core steps this shard's owned nodes; at every **communication
//! round** (per [`Protocol::sync_period`](crate::Protocol::sync_period))
//! the transport writes one `ROUND` frame per peer — carrying all
//! cross-shard messages plus the shard's `RoundFlags` (termination-vote
//! AND, sticky-running and crash-projection sums, first
//! strict-bandwidth violation) — and flushes once. It then blocks for
//! exactly one `ROUND` frame from each peer. That exchange *is* the
//! round barrier: buffered writes are flushed only there, and no shard
//! enters round `r + 1` before every shard finished round `r`. The
//! exchange happens every communication round regardless of scheduling
//! mode (a fully-parked shard still publishes its flags), so the
//! plane's sequence trajectory — and any seeded [`chaos`] plan keyed to
//! it — is identical under `ActiveSet` and `AlwaysStep`.
//! Declared-silent rounds (periods > 1) touch the wire not at all.
//!
//! # Bit-identity guarantee
//!
//! The sequential engine's observables are reproduced exactly:
//!
//! * **States** — every shard rebuilds the full deterministic world
//!   (identifiers, per-node RNG streams, init states) from the shared
//!   seed and steps its own nodes in index order with the same inbox
//!   contents (inboxes sort by arrival port, so delivery interleaving is
//!   unobservable). Owned rows therefore equal the sequential rows;
//!   un-owned ("ghost") rows stay at their init values and pipeline
//!   drivers re-authorize anything derived from them via [`sync_rows`].
//! * **Rounds** — termination is the same global unanimity check,
//!   computed by AND-ing per-shard vote flags at each barrier.
//! * **Messages / bits** — counted at the sender, exactly as the
//!   sequential sweep does; end-of-phase `STATS` frames merge per-shard
//!   metrics into one global record identical in every shard.
//! * **Errors** — [`SimError::Bandwidth`](crate::SimError::Bandwidth)
//!   aborts carry the globally first violation (minimum node index in the
//!   violating round), and round-limit diagnostics sum live votes across
//!   shards, so every process returns the very error the sequential
//!   engine would.
//!
//! Because the round loop is the shared core, the in-process engines'
//! capabilities come with it: active-set scheduling
//! ([`Scheduling::ActiveSet`](crate::Scheduling) — only the wake
//! frontier is stepped, with [`Metrics::stepped_nodes`](crate::Metrics)
//! the only field allowed to shrink) and the simulated fault plane
//! ([`crate::faults`] — the schedule is a pure function of
//! `(config, salt, n)`, so every shard charges the identical fates and
//! crash windows). Faults of the *real* network are the [`chaos`]
//! plane's job.
//!
//! # Membership and restarts
//!
//! A coordinator process hands out shard assignments; peers dial each
//! other into a full mesh ([`membership`]). Every blocking call on the
//! path — dials, accepts, handshake and barrier reads — runs under a
//! [`NetConfig`] deadline, and dials retry with bounded exponential
//! backoff, so a dead or silent peer surfaces as a structured
//! [`NetError`] instead of an infinite block. Links retain their
//! sync-tagged frames for a configurable trailing window
//! ([`NetConfig::retained_syncs`]; supervised runs retain everything), so
//! a peer that restarts mid-phase can redial, announce the last sync it
//! applied ([`Rejoin`]), and have the survivor replay exactly the unacked
//! frames ([`NetPlane::recover`]) — deterministic replay makes the
//! rejoined stream byte-identical to an uninterrupted one.
//!
//! # Failure model
//!
//! What a supervised run ([`NetConfig::supervised`] + the `netharness`
//! supervisor) survives, and what it does not:
//!
//! * **Survivable: one shard death at a time, within retention.** When a
//!   shard process dies (crash, or a seeded [`chaos`] kill — including
//!   mid-frame), every survivor notices the dead link at its next mesh
//!   read and parks at the barrier under [`NetConfig::rejoin_timeout`].
//!   The supervisor respawns the shard; the replacement rebuilds the
//!   seeded SPMD world from scratch, dials every survivor with
//!   [`Rejoin`]` { have_sync: 0 }` ([`rejoin_mesh`]), and re-executes the
//!   run with every mesh read satisfied from the survivors' replayed
//!   history until it reaches the live frontier. Survivors discard the
//!   re-sent duplicates by sequence number. Observables stay
//!   bit-identical to the sequential engine — `tests/net_chaos.rs` and
//!   the PR 9 bench gate prove it.
//! * **Survivable: a dropped-and-redialed link.** A connection torn
//!   between two live shards (seeded
//!   [`ChaosConfig::drop_link`](chaos::ChaosConfig)) recovers without
//!   re-execution: the dialer announces its live frontier and the peer
//!   replays only the in-flight frames.
//! * **Not survivable: coordinator death.** The coordinator holds the
//!   control streams and the respawn logic; if it dies, the kill-on-drop
//!   guards in `netharness` reap every shard — no orphans, no result.
//! * **Not survivable: concurrent shard loss.** Recovery replays from
//!   *surviving* peers; if two shards die in overlapping windows, each
//!   replacement needs frames the other lost. Survivors surface the
//!   second loss as a structured error within their deadlines.
//! * **Not survivable: a rejoin beyond retention.** A rejoiner whose
//!   acked sync was already pruned gets [`NetError::ReplayGap`] — exact
//!   recovery is refused rather than approximated (supervised runs
//!   retain everything precisely to keep `have_sync = 0` inside the
//!   window).

pub mod chaos;
pub mod frame;
pub mod membership;
mod runtime;
pub mod wire;

pub use chaos::ChaosConfig;
pub use frame::{
    kind, read_frame, write_frame, write_torn_frame, Frame, FrameError, FrameReader, MAGIC,
    MAX_FRAME_LEN,
};
pub use membership::{
    connect_mesh, join, Assign, Assignment, Coordinator, Hello, Join, Link, Membership, NetConfig,
    NetError, RecvFailure, Rejoin,
};
pub use runtime::{
    allreduce_and, coordinator, install, is_active, join_mesh, local_range, rejoin_mesh, run_phase,
    shard_range, sync_rows, uninstall, NetPlane,
};
pub use wire::{Reader, Wire, WireError};

#[allow(unused_imports)]
use crate::SmallIds; // doc link
