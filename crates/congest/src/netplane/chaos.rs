//! Deterministic netplane chaos: seeded process kills, link drops, and
//! flush delays.
//!
//! This is the transport-level sibling of [`crate::faults`]: where the
//! fault plane perturbs the *simulated* network (message drops, node
//! crashes) inside one address space, the chaos plane perturbs the *real*
//! one — the TCP mesh between shard processes. The same discipline
//! applies: every event is a **pure function of its coordinates**
//! (`(chaos seed, sync, src, dst)` hashed through the shared SplitMix64
//! finalizer), so a chaos run is exactly reproducible from its seed, and
//! two shards consulting the plane independently always agree on the
//! schedule.
//!
//! Three event classes, each independently enabled:
//!
//! * **Kill** ([`ChaosConfig::kill`]): one victim shard aborts itself at
//!   the first barrier whose plane sequence number reaches the scheduled
//!   sync — from the survivors' perspective, indistinguishable from a
//!   `SIGKILL` (sockets close, reads EOF). Half the schedules tear a
//!   frame mid-write first ([`KillPlan::mid_frame`]), modeling death
//!   inside `write_all`. The supervisor respawns the victim with
//!   `--rejoin` and chaos stripped, so the replacement runs clean.
//! * **Link drop** ([`ChaosConfig::drop_link`]): one shard force-closes
//!   one mesh link after a scheduled barrier and immediately redials with
//!   [`Rejoin`](super::Rejoin) carrying its live frontier — exercising
//!   the resume/replay path without killing any process.
//! * **Flush delay** ([`ChaosConfig::flush_delay`]): sub-millisecond
//!   jitter injected before a per-link flush at a small per-million rate
//!   — reordering the *wall-clock* interleaving of frame arrivals while
//!   the barrier protocol keeps the observables bit-identical.
//!
//! None of these may change the run's observables: colorings, metrics,
//! and errors must stay bit-identical to the sequential engine. That is
//! the claim `tests/net_chaos.rs` and the PR 9 bench gate check.

use std::time::Duration;

/// The number of "per-million" probability units in a certainty.
/// (Mirrors [`crate::faults::PER_MILLION`].)
pub const PER_MILLION: u32 = 1_000_000;

/// SplitMix64 finalizer — same avalanche permutation as the fault plane,
/// so chaos schedules decorrelate structured coordinates identically.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Declarative chaos model for a supervised netplane run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the chaos schedule. Independent of graph and run seeds:
    /// the same workload can be replayed under different chaos traces.
    pub seed: u64,
    /// Kill one seeded victim shard at a seeded sync.
    pub kill: bool,
    /// Force-close (and immediately redial) one seeded mesh link.
    pub drop_link: bool,
    /// Inject sub-millisecond seeded delays before per-link flushes.
    pub flush_delay: bool,
}

impl ChaosConfig {
    /// The profile the supervised harness uses: one kill plus flush
    /// jitter. Link drops are off by default (they are exercised by the
    /// in-process tests; a drop racing the kill's rejoin would violate
    /// the one-failure-at-a-time survivability contract).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            kill: true,
            drop_link: false,
            flush_delay: true,
        }
    }

    /// Returns `self` with the kill event enabled or disabled.
    #[must_use]
    pub fn with_kill(mut self, on: bool) -> Self {
        self.kill = on;
        self
    }

    /// Returns `self` with the link-drop event enabled or disabled.
    #[must_use]
    pub fn with_drop_link(mut self, on: bool) -> Self {
        self.drop_link = on;
        self
    }

    /// Returns `self` with flush jitter enabled or disabled.
    #[must_use]
    pub fn with_flush_delay(mut self, on: bool) -> Self {
        self.flush_delay = on;
        self
    }
}

/// The seeded kill event: which shard dies, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPlan {
    /// The shard that aborts itself.
    pub victim: u32,
    /// The plane sequence number at (or after) which the victim dies:
    /// it aborts at the first ROUND barrier with `seq >= sync`.
    pub sync: u64,
    /// Whether the victim tears a frame mid-write before dying,
    /// modeling death inside `write_all`.
    pub mid_frame: bool,
}

/// The seeded kill event for a world of `n_shards`, as a pure function
/// of the chaos seed — the supervisor and the victim both compute it and
/// always agree.
#[must_use]
pub fn kill_plan(seed: u64, n_shards: u32) -> KillPlan {
    let h = splitmix(seed ^ 0x4B49_4C4C_u64); // "KILL"
    let victim = (h % u64::from(n_shards.max(1))) as u32;
    let h2 = splitmix(h);
    // Early enough to always land mid-run (every CI workload executes
    // hundreds of syncs), late enough that the mesh is fully warm.
    let sync = 3 + (h2 % 8);
    let mid_frame = splitmix(h2) & 1 == 1;
    KillPlan {
        victim,
        sync,
        mid_frame,
    }
}

/// The seeded link-drop event: `src` force-closes its link to `dst`
/// after the barrier at `sync` and immediately redials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropPlan {
    /// The shard that closes and redials.
    pub src: u32,
    /// The peer whose link is dropped.
    pub dst: u32,
    /// The barrier after which the drop fires (first `seq >= sync`).
    pub sync: u64,
}

/// The seeded link-drop event for a world of `n_shards` (requires at
/// least two shards; a one-shard world has no links to drop).
#[must_use]
pub fn drop_plan(seed: u64, n_shards: u32) -> DropPlan {
    let n = u64::from(n_shards.max(2));
    let h = splitmix(seed ^ 0x4452_4F50_u64); // "DROP"
    let src = (h % n) as u32;
    let h2 = splitmix(h);
    // dst uniform over the other shards.
    let dst = ((u64::from(src) + 1 + h2 % (n - 1)) % n) as u32;
    let sync = 2 + (splitmix(h2) % 8);
    DropPlan { src, dst, sync }
}

/// Seeded flush jitter for the flush of link `(src → dst)` at `sync`:
/// `Some(delay)` at a ~3% rate, sub-millisecond, pure in the
/// coordinates.
#[must_use]
pub fn flush_delay(seed: u64, sync: u64, src: u32, dst: u32) -> Option<Duration> {
    let edge = (u64::from(src) << 32) | u64::from(dst);
    let h = splitmix(splitmix(seed ^ 0x464C_5553_u64 ^ sync) ^ edge); // "FLUS"
    let roll = (h % u64::from(PER_MILLION)) as u32;
    if roll < 30_000 {
        // 50–949 microseconds.
        Some(Duration::from_micros(50 + splitmix(h) % 900))
    } else {
        None
    }
}

/// A shard's materialized view of the chaos schedule: the plans that
/// concern *this* shard, plus one-shot firing state.
#[derive(Debug)]
pub struct ChaosState {
    config: ChaosConfig,
    shard: u32,
    kill: Option<KillPlan>,
    drop: Option<DropPlan>,
    drop_fired: bool,
}

impl ChaosState {
    /// Materializes the schedule for shard `shard` of `n_shards`.
    #[must_use]
    pub fn new(config: ChaosConfig, shard: u32, n_shards: u32) -> Self {
        let kill = config.kill.then(|| kill_plan(config.seed, n_shards));
        let drop = (config.drop_link && n_shards >= 2).then(|| drop_plan(config.seed, n_shards));
        ChaosState {
            config,
            shard,
            kill,
            drop,
            drop_fired: false,
        }
    }

    /// Whether this shard must die at the barrier with plane sequence
    /// `sync`; `Some(mid_frame)` when it must. Fires at the first
    /// barrier with `sync >= plan.sync` (collectives share the sequence
    /// space, so the exact scheduled value may be skipped).
    #[must_use]
    pub fn kill_action(&self, sync: u64) -> Option<bool> {
        let plan = self.kill?;
        (plan.victim == self.shard && sync >= plan.sync).then_some(plan.mid_frame)
    }

    /// The peer whose link this shard must drop-and-redial after the
    /// barrier at `sync`, at most once per run.
    pub fn take_drop_action(&mut self, sync: u64) -> Option<u32> {
        let plan = self.drop?;
        if self.drop_fired || plan.src != self.shard || sync < plan.sync {
            return None;
        }
        self.drop_fired = true;
        Some(plan.dst)
    }

    /// Seeded jitter before flushing the link to `dst` at `sync`.
    #[must_use]
    pub fn flush_delay(&self, sync: u64, dst: u32) -> Option<Duration> {
        if !self.config.flush_delay {
            return None;
        }
        flush_delay(self.config.seed, sync, self.shard, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        for seed in 0..64u64 {
            assert_eq!(kill_plan(seed, 4), kill_plan(seed, 4));
            assert_eq!(drop_plan(seed, 4), drop_plan(seed, 4));
            for sync in 0..16 {
                assert_eq!(flush_delay(seed, sync, 0, 1), flush_delay(seed, sync, 0, 1));
            }
        }
    }

    #[test]
    fn kill_plan_is_in_range_and_covers_shards() {
        let mut victims = [false; 4];
        for seed in 0..256u64 {
            let plan = kill_plan(seed, 4);
            assert!(plan.victim < 4);
            assert!((3..=10).contains(&plan.sync), "sync = {}", plan.sync);
            victims[plan.victim as usize] = true;
        }
        assert!(victims.iter().all(|&v| v), "some shard is never a victim");
    }

    #[test]
    fn drop_plan_never_targets_self() {
        for seed in 0..256u64 {
            for n in 2..6u32 {
                let plan = drop_plan(seed, n);
                assert!(plan.src < n && plan.dst < n);
                assert_ne!(plan.src, plan.dst);
            }
        }
    }

    #[test]
    fn flush_delays_are_rare_and_bounded() {
        let mut fired = 0u32;
        let total = 40_000u32;
        for i in 0..total {
            if let Some(d) = flush_delay(9, u64::from(i / 16), i % 4, (i / 4) % 4) {
                fired += 1;
                assert!(d < Duration::from_millis(1));
                assert!(d >= Duration::from_micros(50));
            }
        }
        // ~3% rate; allow wide slack.
        assert!((total / 50..total / 20).contains(&fired), "fired = {fired}");
    }

    #[test]
    fn kill_action_fires_only_on_the_victim_at_or_after_the_sync() {
        let seed = 7u64;
        let plan = kill_plan(seed, 4);
        for shard in 0..4u32 {
            let state = ChaosState::new(ChaosConfig::seeded(seed), shard, 4);
            for sync in 0..20u64 {
                let fires = state.kill_action(sync).is_some();
                assert_eq!(fires, shard == plan.victim && sync >= plan.sync);
            }
        }
    }

    #[test]
    fn drop_action_fires_once_on_the_source() {
        let seed = 11u64;
        let config = ChaosConfig::seeded(seed)
            .with_kill(false)
            .with_drop_link(true);
        let plan = drop_plan(seed, 4);
        let mut state = ChaosState::new(config, plan.src, 4);
        let mut fired = Vec::new();
        for sync in 0..20u64 {
            if let Some(dst) = state.take_drop_action(sync) {
                fired.push((sync, dst));
            }
        }
        assert_eq!(fired, vec![(plan.sync, plan.dst)]);
        // Other shards never fire.
        let mut other = ChaosState::new(config, (plan.src + 1) % 4, 4);
        assert!((0..20u64).all(|s| other.take_drop_action(s).is_none()));
    }

    #[test]
    fn disabled_events_never_fire() {
        let config = ChaosConfig {
            seed: 3,
            kill: false,
            drop_link: false,
            flush_delay: false,
        };
        let mut state = ChaosState::new(config, 0, 4);
        for sync in 0..50u64 {
            assert_eq!(state.kill_action(sync), None);
            assert_eq!(state.take_drop_action(sync), None);
            for dst in 0..4 {
                assert_eq!(state.flush_delay(sync, dst), None);
            }
        }
    }
}
