//! The SPMD net engine: one OS process per shard, bit-identical to the
//! sequential reference.
//!
//! Every shard process rebuilds the *entire* deterministic world — graph,
//! [`NetTables`], per-node RNG streams, initial states — from the shared
//! `(graph, seed, config)` and then steps only its contiguous slice of
//! nodes `[lo, hi)`. Each communication round, messages whose destination
//! lives on another shard travel as one [`kind::ROUND`] frame per peer
//! (flushed once — the round barrier is the flush point), together with
//! the shard's local termination/progress flags. Combining the flags
//! reproduces the sequential engine's global unanimity check, progress
//! watermark, and strict-bandwidth first-violation exactly; see the
//! [module docs](super) for the full bit-identity argument.
//!
//! The round loop itself is the shared engine core (see the
//! [runtime module docs](crate::runtime)); this module contributes only
//! the socket transport — frame I/O, membership, retention/rejoin, and
//! the chaos plane. Active-set scheduling
//! ([`Scheduling::ActiveSet`](crate::Scheduling)) and the simulated
//! fault plane ([`crate::faults`]) therefore work here exactly as in the
//! in-process engines: the fault schedule is a pure function of
//! `(config, salt, n)`, so every shard computes the identical trace, and
//! the frontier/termination machinery runs on flags merged at the round
//! barrier. Faults of the *real* network are the chaos plane's job
//! ([`super::chaos`]).
//!
//! # The plane sequence number
//!
//! Every mesh exchange — ROUND barriers *and* collectives
//! (REDUCE/STATS) — increments one plane-level counter, `seq`, and every
//! mesh frame carries its `seq` as the first `u64` of its payload. That
//! single monotone sequence is what makes recovery exact:
//!
//! * frames are retained per link keyed by `seq`
//!   ([`Link::send_retained`]), so a surviving peer can replay precisely
//!   the suffix a rejoiner has not applied;
//! * a rejoined peer that restarted from scratch re-executes the run and
//!   re-sends frames for syncs the survivors already processed —
//!   survivors discard anything with `seq` below the one they are
//!   waiting on;
//! * a peer at the wrong `seq` (lockstep broken) is a structured
//!   [`NetError::Desync`], never silent divergence.
//!
//! Transport failures that cannot be recovered are process-fatal panics
//! rather than [`SimError`]s, so the error enum stays identical across
//! engines; recoverable ones (a dead peer inside the rejoin window) park
//! the survivor at the barrier until the supervisor's replacement dials
//! back in ([`NetPlane`]'s `await_rejoin`).

use super::chaos::{ChaosConfig, ChaosState};
use super::frame::{kind, Frame};
use super::membership::{
    self, Coordinator, Link, Membership, NetConfig, NetError, RecvFailure, Rejoin,
};
use super::wire::{Reader, Wire, WireError};
use crate::faults::FaultPlane;
use crate::runtime::engine::{self, RoundFlags, ShardWorld, Transport};
use crate::runtime::{RunResult, SimError};
use crate::{Metrics, NetTables, Protocol, SimConfig};
use graphs::Graph;
use std::io::{self, Write as _};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The node range shard `s` of `k` owns on an `n`-node graph: contiguous
/// `⌈n/k⌉`-sized chunks, last one ragged.
#[must_use]
pub fn shard_range(n: usize, n_shards: usize, shard: usize) -> (usize, usize) {
    let chunk = n.div_ceil(n_shards.max(1));
    let lo = (shard * chunk).min(n);
    (lo, (lo + chunk).min(n))
}

/// Which shard owns node `v`.
fn shard_of(n: usize, n_shards: usize, v: usize) -> usize {
    v / n.div_ceil(n_shards.max(1))
}

/// One communication round's traffic to a single peer: the sender's local
/// `RoundFlags` plus every message destined for that peer's nodes.
struct RoundEnvelope<M> {
    /// Plane sequence number — serialized *first*, so the generic mesh
    /// receive path can read it without knowing the payload type.
    sync: u64,
    /// AND of the sender's local termination votes this round.
    all_done: bool,
    /// The sender's count of non-crashed local nodes whose sticky vote is
    /// still `Running` (active-set termination; see the engine core).
    running: u64,
    /// The sender's one-round-ahead projection of `running` under the
    /// fault plane's scheduled crash/recovery events (crash-probe latch).
    proj_running: u64,
    /// The sender's first strict-bandwidth violation this round, as
    /// `(node index, message bits)` — `None` outside strict mode.
    violation: Option<(u32, u64)>,
    /// `(destination node, arrival port, message)` triples.
    msgs: Vec<(u32, u32, M)>,
}

impl<M: Wire> Wire for RoundEnvelope<M> {
    fn put(&self, buf: &mut Vec<u8>) {
        self.sync.put(buf);
        self.all_done.put(buf);
        self.running.put(buf);
        self.proj_running.put(buf);
        self.violation.put(buf);
        self.msgs.put(buf);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RoundEnvelope {
            sync: u64::take(r)?,
            all_done: bool::take(r)?,
            running: u64::take(r)?,
            proj_running: u64::take(r)?,
            violation: <Option<(u32, u64)> as Wire>::take(r)?,
            msgs: Vec::take(r)?,
        })
    }
}

/// The leading `u64` of a mesh payload: its plane sequence number. Every
/// mesh frame type puts it first ([`RoundEnvelope`]; collectives encode
/// `(seq, body)`), so the receive path can dedup and lockstep-check
/// generically.
fn payload_seq(payload: &[u8]) -> u64 {
    let mut r = Reader::new(payload);
    u64::take(&mut r).unwrap_or(0)
}

/// A shard's handle on the running mesh: its assignment, one [`Link`] per
/// peer, the listener (kept open for rejoins), and the coordinator
/// control stream.
#[derive(Debug)]
pub struct NetPlane {
    /// This shard's index.
    pub shard: u32,
    /// Total number of shards.
    pub n_shards: u32,
    /// `(shard, mesh port)` of every shard, self included.
    pub peers: Vec<(u32, u16)>,
    links: Vec<Link>,
    listener: TcpListener,
    control: TcpStream,
    /// Plane sequence number: bumped once per mesh exchange (ROUND
    /// barrier or collective), checked in lockstep by all shards.
    seq: u64,
    config: NetConfig,
    chaos: Option<ChaosState>,
}

impl NetPlane {
    /// Builds the full mesh from a completed membership handshake, under
    /// `config`'s deadlines, optionally carrying a seeded chaos schedule.
    ///
    /// # Errors
    ///
    /// Structured [`NetError`]s from the mesh build.
    pub fn connect(
        membership: Membership,
        config: NetConfig,
        chaos: Option<ChaosConfig>,
    ) -> Result<Self, NetError> {
        let links = membership::connect_mesh(&membership, &config)?;
        let chaos =
            chaos.map(|c| ChaosState::new(c, membership.assign.shard, membership.assign.n_shards));
        Ok(NetPlane {
            shard: membership.assign.shard,
            n_shards: membership.assign.n_shards,
            peers: membership.assign.peers,
            links,
            listener: membership.listener,
            control: membership.control,
            seq: 0,
            config,
            chaos,
        })
    }

    /// The node range this shard owns on an `n`-node graph.
    #[must_use]
    pub fn local_range(&self, n: usize) -> (usize, usize) {
        shard_range(n, self.n_shards as usize, self.shard as usize)
    }

    fn link_index(&self, peer_shard: usize) -> usize {
        if peer_shard < self.shard as usize {
            peer_shard
        } else {
            peer_shard - 1
        }
    }

    /// Queues one mesh frame on `slot`, stamped and retained under the
    /// current `seq`. A write failure only marks the link down — the
    /// frame is retained regardless, so it is replayed once the peer
    /// rejoins.
    fn send_mesh(&mut self, slot: usize, frame_kind: u8, payload: &[u8]) {
        let seq = self.seq;
        let link = &mut self.links[slot];
        if link.send_retained(seq, frame_kind, payload).is_err() {
            link.alive = false;
        }
    }

    /// Flushes `slot`, applying the chaos plane's seeded flush jitter
    /// first. A flush failure marks the link down.
    fn flush_mesh(&mut self, slot: usize, sync: u64) {
        if let Some(chaos) = &self.chaos {
            if let Some(delay) = chaos.flush_delay(sync, self.links[slot].peer) {
                std::thread::sleep(delay);
            }
        }
        let link = &mut self.links[slot];
        if link.flush().is_err() {
            link.alive = false;
        }
    }

    /// Receives the mesh frame for `want_seq` from `slot` under the read
    /// deadline. Frames with an older `seq` are stale duplicates from a
    /// rejoined peer re-executing already-processed syncs and are
    /// discarded. A dead link parks in `await_rejoin` first.
    ///
    /// # Errors
    ///
    /// [`NetError::PeerTimeout`] when the peer stays silent past the
    /// budget, [`NetError::PeerLost`] when the link died and recovery is
    /// disabled, [`NetError::Desync`] on a lockstep violation.
    fn recv_mesh(&mut self, slot: usize, want_kind: u8, want_seq: u64) -> Result<Frame, NetError> {
        loop {
            if !self.links[slot].alive {
                self.await_rejoin(slot, want_seq)?;
            }
            let timeout = self.config.read_timeout;
            let link = &mut self.links[slot];
            match link.recv_deadline(timeout) {
                Ok(frame) => {
                    let got = payload_seq(&frame.payload);
                    if got < want_seq {
                        continue; // stale duplicate from a rejoined peer
                    }
                    if frame.kind != want_kind || got != want_seq {
                        return Err(NetError::Desync {
                            shard: link.peer,
                            frame_kind: frame.kind,
                            want_sync: want_seq,
                            got_sync: got,
                        });
                    }
                    return Ok(frame);
                }
                Err(RecvFailure::Timeout) => {
                    return Err(NetError::PeerTimeout {
                        shard: link.peer,
                        sync: want_seq,
                    });
                }
                Err(RecvFailure::Lost(_)) => {
                    link.alive = false;
                }
            }
        }
    }

    /// Parks at the barrier until the dead link at `slot` is resumed by
    /// a rejoining peer (any peer's rejoin is serviced while waiting).
    ///
    /// # Errors
    ///
    /// [`NetError::PeerLost`] when recovery is disabled,
    /// [`NetError::PeerTimeout`] when the rejoin window expires,
    /// [`NetError::ReplayGap`] when the rejoiner acked a pruned sync.
    fn await_rejoin(&mut self, slot: usize, want_seq: u64) -> Result<(), NetError> {
        let peer = self.links[slot].peer;
        let Some(budget) = self.config.rejoin_timeout else {
            return Err(NetError::PeerLost {
                shard: peer,
                sync: want_seq,
                cause: "connection lost and recovery is disabled".into(),
            });
        };
        let start = Instant::now();
        while !self.links[slot].alive {
            let remaining = budget
                .checked_sub(start.elapsed())
                .ok_or(NetError::PeerTimeout {
                    shard: peer,
                    sync: want_seq,
                })?;
            let mut stream =
                membership::accept_deadline(&self.listener, remaining).map_err(|e| match e {
                    NetError::AcceptTimeout { .. } => NetError::PeerTimeout {
                        shard: peer,
                        sync: want_seq,
                    },
                    other => other,
                })?;
            let rejoin: Rejoin =
                membership::expect_payload(&mut stream, kind::REJOIN, self.config.read_timeout)?;
            let link = self
                .links
                .iter_mut()
                .find(|l| l.peer == rejoin.from)
                .ok_or_else(|| {
                    NetError::Handshake(format!("rejoin from unknown shard {}", rejoin.from))
                })?;
            link.resume(stream, rejoin.have_sync)?;
        }
        Ok(())
    }

    /// One lockstep all-to-all exchange: bumps `seq`, broadcasts `body`
    /// stamped with it, and returns every peer's body as
    /// `(peer shard, bytes)`.
    fn collective(&mut self, frame_kind: u8, body: &[u8]) -> Result<Vec<(u32, Vec<u8>)>, NetError> {
        self.seq += 1;
        let want = self.seq;
        let payload = (want, body.to_vec()).to_wire();
        for slot in 0..self.links.len() {
            self.send_mesh(slot, frame_kind, &payload);
            self.flush_mesh(slot, want);
        }
        let mut out = Vec::with_capacity(self.links.len());
        for slot in 0..self.links.len() {
            let frame = self.recv_mesh(slot, frame_kind, want)?;
            let peer = self.links[slot].peer;
            let (_, body) = <(u64, Vec<u8>)>::from_wire(&frame.payload).map_err(|e| {
                NetError::Handshake(format!("malformed collective from shard {peer}: {e}"))
            })?;
            out.push((peer, body));
        }
        Ok(out)
    }

    /// Global AND over one boolean per shard.
    ///
    /// # Panics
    ///
    /// Panics on unrecoverable transport failure (structured
    /// [`NetError`] in the message).
    pub fn allreduce_and(&mut self, local: bool) -> bool {
        self.collective(kind::REDUCE, &[u8::from(local)])
            .unwrap_or_else(|e| panic!("netplane: {e}"))
            .iter()
            .all(|(_, body)| body == &[1]) // peer contributions
            && local
    }

    /// Global sum over one `u64` per shard.
    ///
    /// # Errors
    ///
    /// Structured [`NetError`]s — notably [`NetError::PeerTimeout`] when
    /// a peer stays silent past the read deadline.
    pub fn try_allreduce_sum(&mut self, local: u64) -> Result<u64, NetError> {
        Ok(self
            .collective(kind::REDUCE, &local.to_wire())?
            .iter()
            .map(|(peer, body)| {
                u64::from_wire(body).unwrap_or_else(|e| {
                    panic!("netplane: malformed sum contribution from shard {peer}: {e}")
                })
            })
            .sum::<u64>()
            + local)
    }

    /// Global sum over one `u64` per shard.
    ///
    /// # Panics
    ///
    /// Panics on unrecoverable transport failure.
    pub fn allreduce_sum(&mut self, local: u64) -> u64 {
        self.try_allreduce_sum(local)
            .unwrap_or_else(|e| panic!("netplane: {e}"))
    }

    /// Makes a per-node vector globally authoritative: each shard
    /// broadcasts its own rows `[lo, hi)` and overwrites every other range
    /// with the owning shard's values. Pipeline drivers call this (via
    /// [`sync_rows`](super::sync_rows)) on every vector they derive from
    /// final phase states, because ghost rows — nodes this shard never
    /// stepped — hold stale init-time values.
    ///
    /// # Panics
    ///
    /// Panics on unrecoverable transport failure or malformed peer rows.
    pub fn sync_rows<T: Wire>(&mut self, rows: &mut [T]) {
        let n = rows.len();
        let (lo, hi) = self.local_range(n);
        let mut body = Vec::new();
        for row in &rows[lo..hi] {
            row.put(&mut body);
        }
        let peers = self
            .collective(kind::REDUCE, &body)
            .unwrap_or_else(|e| panic!("netplane: {e}"));
        for (peer, body) in peers {
            let (plo, phi) = shard_range(n, self.n_shards as usize, peer as usize);
            let mut r = Reader::new(&body);
            for row in &mut rows[plo..phi] {
                *row = T::take(&mut r).unwrap_or_else(|e| {
                    panic!("netplane: malformed row sync from shard {peer}: {e}")
                });
            }
            r.finish().unwrap_or_else(|e| {
                panic!("netplane: trailing bytes in row sync from shard {peer}: {e}")
            });
        }
    }

    /// Ships this shard's final result payload to the coordinator as a
    /// [`kind::RESULT`] frame.
    ///
    /// # Errors
    ///
    /// Propagates write errors on the control stream.
    pub fn send_result(&mut self, payload: &[u8]) -> io::Result<()> {
        super::frame::write_frame(&mut self.control, kind::RESULT, payload)?;
        self.control.flush()
    }

    /// Services one peer restart: accepts the pending redial on the mesh
    /// listener (under the read deadline), reads its [`Rejoin`], and
    /// resumes that peer's link — replaying every retained frame the
    /// rejoiner has not acked.
    ///
    /// # Errors
    ///
    /// Structured [`NetError`]s: accept timeout, malformed handshake,
    /// unknown rejoiner, or [`NetError::ReplayGap`].
    pub fn recover(&mut self) -> Result<u32, NetError> {
        let mut stream = membership::accept_deadline(&self.listener, self.config.read_timeout)?;
        let rejoin: Rejoin =
            membership::expect_payload(&mut stream, kind::REJOIN, self.config.read_timeout)?;
        let link = self
            .links
            .iter_mut()
            .find(|l| l.peer == rejoin.from)
            .ok_or_else(|| {
                NetError::Handshake(format!("rejoin from unknown shard {}", rejoin.from))
            })?;
        link.resume(stream, rejoin.have_sync)?;
        Ok(rejoin.from)
    }

    /// The chaos link-drop: force-close the link to `dst`, then
    /// immediately redial with a [`Rejoin`] carrying this shard's live
    /// frontier. The peer replays anything newer (its in-flight frames of
    /// the next barrier); nothing is lost, nothing re-executes.
    fn drop_and_redial(&mut self, dst: u32) -> Result<(), NetError> {
        let slot = self.link_index(dst as usize);
        let port = self
            .peers
            .iter()
            .find(|&&(p, _)| p == dst)
            .expect("chaos drop target in roster")
            .1;
        self.links[slot].force_close();
        let mut stream =
            membership::dial_retry(SocketAddr::from((Ipv4Addr::LOCALHOST, port)), &self.config)?;
        let rejoin = Rejoin {
            from: self.shard,
            have_sync: self.seq,
        };
        super::frame::write_frame(&mut stream, kind::REJOIN, &rejoin.to_wire())?;
        stream.flush().map_err(NetError::from)?;
        self.links[slot].reconnect(stream)
    }

    /// The chaos kill: optionally tear a frame mid-write (modeling death
    /// inside `write_all`), then die the way `SIGKILL` looks to peers.
    fn chaos_abort(&mut self, sync: u64, mid_frame: bool) -> ! {
        if mid_frame && !self.links.is_empty() {
            // Header plus a few payload bytes of a 24-byte frame: the
            // peer's reader surfaces a structured UnexpectedEof.
            let _ = self.links[0].send_torn(kind::ROUND, &[0xAB; 24], 9);
        }
        eprintln!(
            "netplane-chaos: shard {} aborting at sync {sync}",
            self.shard
        );
        std::process::abort();
    }

    /// Runs one protocol phase across the mesh, stepping only this
    /// shard's nodes, and returns a result bit-identical (on all
    /// observables: states of owned nodes, merged metrics, errors) to
    /// [`SequentialRuntime`](crate::runtime::SequentialRuntime) — the
    /// round loop *is* the sequential engine's, driven through the mesh
    /// transport, so [`Scheduling`](crate::Scheduling) and
    /// [`FaultConfig`](crate::FaultConfig) behave identically here.
    ///
    /// States of nodes this shard does **not** own are left at their
    /// deterministic init values; callers must [`NetPlane::sync_rows`]
    /// anything they derive from them.
    ///
    /// # Errors
    ///
    /// Exactly the sequential engine's errors — [`SimError::Bandwidth`]
    /// (the globally first violation, identical in every shard) and
    /// [`SimError::RoundLimitExceeded`] (with globally summed
    /// `live_nodes` and the global progress watermark).
    ///
    /// # Panics
    ///
    /// Panics on unrecoverable transport failures (structured
    /// [`NetError`] in the message), and on the same protocol bugs the
    /// sequential engine rejects (silent-round sends).
    pub fn execute_with<P: Protocol>(
        &mut self,
        graph: &Graph,
        protocol: &P,
        config: &SimConfig,
        net: &Arc<NetTables>,
    ) -> Result<RunResult<P::State>, SimError>
    where
        P::Msg: Wire,
    {
        assert!(net.matches(graph), "NetTables built for a different graph");
        let n = graph.n();
        let k = self.n_shards as usize;
        let (lo, hi) = self.local_range(n);
        let period = protocol.sync_period().max(1);
        let budget = engine::round_budget(config, n, period);
        let mut ctxs = net.contexts();
        // Full deterministic world: every shard inits all n nodes (so
        // state/RNG indices line up), then steps only [lo, hi).
        let (mut rngs, mut states) = engine::init_nodes(protocol, config, &ctxs, 0);
        if n == 0 {
            return Ok(RunResult {
                states,
                metrics: Metrics {
                    bandwidth_bits: budget,
                    ..Metrics::default()
                },
            });
        }
        // The simulated fault schedule is a pure function of
        // (config, salt, n), so every shard holds the identical trace and
        // charges fates/crashes exactly as the in-process engines do.
        let fault_plane = config
            .faults
            .as_ref()
            .map(|f| FaultPlane::new(f, config.rng_salt, n));
        let result = {
            let outgoing = (0..self.links.len()).map(|_| Vec::new()).collect();
            let mut transport = MeshTransport {
                plane: self,
                n,
                k,
                outgoing,
            };
            engine::drive(
                graph,
                protocol,
                config,
                net,
                ShardWorld {
                    start: lo,
                    ctxs: &mut ctxs[lo..hi],
                    states: &mut states[lo..hi],
                    rngs: &mut rngs[lo..hi],
                    plane: fault_plane.as_ref(),
                },
                &mut transport,
            )
        };
        let mut metrics = result?;
        // Merge metrics so every shard returns the identical global
        // record (and driver-level absorption stays engine-agnostic).
        // `Metrics::absorb` folds every field — including any added later
        // — so distributed runs can't silently lose one; the round count
        // is identical everywhere (asserted) and zeroed on peer records
        // so the sum keeps the global value.
        let peers = self
            .collective(kind::STATS, &metrics.to_wire())
            .unwrap_or_else(|e| panic!("netplane: {e}"));
        for (peer, body) in peers {
            let mut theirs = Metrics::from_wire(&body)
                .unwrap_or_else(|e| panic!("netplane: malformed stats from shard {peer}: {e}"));
            assert_eq!(
                theirs.rounds, metrics.rounds,
                "netplane: shard {peer} disagrees on round count"
            );
            theirs.rounds = 0;
            metrics.absorb(&theirs);
        }
        Ok(RunResult { states, metrics })
    }
}

/// The socket transport: one [`RoundEnvelope`] per peer per
/// communication round (the flush is the barrier), collectives for the
/// watchdog. Chaos actions fire at their scheduled syncs inside
/// `exchange`, exactly where the old in-line loop fired them, so
/// recorded chaos plans stay valid: the engine core exchanges once per
/// communication round regardless of scheduling mode, which keeps the
/// plane's `seq` trajectory identical under `ActiveSet` and
/// `AlwaysStep`.
struct MeshTransport<'a, M> {
    plane: &'a mut NetPlane,
    n: usize,
    k: usize,
    /// Staged cross-shard messages, one buffer per link (same order).
    outgoing: Vec<Vec<(u32, u32, M)>>,
}

impl<M: Wire> Transport<M> for MeshTransport<'_, M> {
    fn stage(&mut self, dest: u32, port: u32, msg: M) {
        let owner = shard_of(self.n, self.k, dest as usize);
        let slot = self.plane.link_index(owner);
        self.outgoing[slot].push((dest, port, msg));
    }

    fn exchange(&mut self, local: RoundFlags, deliver: &mut dyn FnMut(u32, u32, M)) -> RoundFlags {
        self.plane.seq += 1;
        let sync = self.plane.seq;
        if let Some(mid_frame) = self.plane.chaos.as_ref().and_then(|c| c.kill_action(sync)) {
            self.plane.chaos_abort(sync, mid_frame);
        }
        for slot in 0..self.outgoing.len() {
            let envelope = RoundEnvelope {
                sync,
                all_done: local.all_done,
                running: local.running,
                proj_running: local.proj_running,
                violation: local.violation,
                msgs: std::mem::take(&mut self.outgoing[slot]),
            };
            self.plane.send_mesh(slot, kind::ROUND, &envelope.to_wire());
            self.plane.flush_mesh(slot, sync);
        }
        let mut merged = local;
        for slot in 0..self.plane.links.len() {
            let frame = self
                .plane
                .recv_mesh(slot, kind::ROUND, sync)
                .unwrap_or_else(|e| panic!("netplane: {e}"));
            let peer = self.plane.links[slot].peer;
            let envelope = RoundEnvelope::<M>::from_wire(&frame.payload).unwrap_or_else(|e| {
                panic!("netplane: malformed round frame from shard {peer}: {e}")
            });
            debug_assert_eq!(envelope.sync, sync);
            merged.absorb(&RoundFlags {
                all_done: envelope.all_done,
                running: envelope.running,
                proj_running: envelope.proj_running,
                violation: envelope.violation,
            });
            for (dest, arrival, msg) in envelope.msgs {
                deliver(dest, arrival, msg);
            }
        }
        if let Some(dst) = self
            .plane
            .chaos
            .as_mut()
            .and_then(|c| c.take_drop_action(sync))
        {
            self.plane
                .drop_and_redial(dst)
                .unwrap_or_else(|e| panic!("netplane: {e}"));
        }
        merged
    }

    fn watchdog(&mut self, live: u64, last_progress: u64) -> (u64, u64) {
        // One REDUCE collective globalizes both diagnostics: live count
        // by sum, progress watermark by max.
        let peers = self
            .plane
            .collective(kind::REDUCE, &(live, last_progress).to_wire())
            .unwrap_or_else(|e| panic!("netplane: {e}"));
        let (mut sum, mut max) = (live, last_progress);
        for (peer, body) in peers {
            let (l, p) = <(u64, u64)>::from_wire(&body).unwrap_or_else(|e| {
                panic!("netplane: malformed watchdog contribution from shard {peer}: {e}")
            });
            sum += l;
            max = max.max(p);
        }
        (sum, max)
    }
}

/// Rebuilds a [`NetPlane`] for a shard restarted from scratch by the
/// supervisor. The replacement binds a fresh (unused) mesh listener,
/// dials the coordinator for a new control stream (the supervisor accepts
/// it via [`Coordinator::accept_control`]), and dials every surviving
/// peer's *original* mesh port with `Rejoin { have_sync: 0 }` — each
/// survivor replays its full retained history while the replacement
/// re-executes the run, so every mesh read is satisfied and the rejoiner
/// reaches the live frontier deterministically.
///
/// `peer_ports[s]` is shard `s`'s mesh port from the original
/// [`Assignment`](membership::Assignment); the entry at `shard` itself is
/// ignored.
///
/// # Errors
///
/// Structured [`NetError`]s from the dials and handshakes.
pub fn rejoin_mesh(
    coordinator: SocketAddr,
    shard: u32,
    peer_ports: &[u16],
    config: NetConfig,
) -> Result<NetPlane, NetError> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).map_err(NetError::from)?;
    let control = membership::dial_retry(coordinator, &config)?;
    let n_shards = peer_ports.len() as u32;
    let peers: Vec<(u32, u16)> = peer_ports
        .iter()
        .enumerate()
        .map(|(s, &port)| (s as u32, port))
        .collect();
    let mut links = Vec::with_capacity(peer_ports.len().saturating_sub(1));
    for &(peer, port) in &peers {
        if peer == shard {
            continue;
        }
        let mut stream =
            membership::dial_retry(SocketAddr::from((Ipv4Addr::LOCALHOST, port)), &config)?;
        let rejoin = Rejoin {
            from: shard,
            have_sync: 0,
        };
        super::frame::write_frame(&mut stream, kind::REJOIN, &rejoin.to_wire())?;
        stream.flush().map_err(NetError::from)?;
        links.push(Link::new(peer, stream, config.retained_syncs)?);
    }
    Ok(NetPlane {
        shard,
        n_shards,
        peers,
        links,
        listener,
        control,
        seq: 0,
        config,
        chaos: None,
    })
}

/// The process-wide netplane registry. A shard process installs its
/// [`NetPlane`] once after the mesh handshake; pipeline drivers then
/// transparently route phases and row syncs through it. Non-shard
/// processes (every in-process run, every unit test) never install one
/// and pay only a mutex check.
static ACTIVE: Mutex<Option<NetPlane>> = Mutex::new(None);

fn registry() -> std::sync::MutexGuard<'static, Option<NetPlane>> {
    ACTIVE.lock().expect("netplane registry poisoned")
}

/// Installs `plane` as this process's transport. Panics if one is
/// already installed.
pub fn install(plane: NetPlane) {
    let mut guard = registry();
    assert!(guard.is_none(), "a netplane is already installed");
    *guard = Some(plane);
}

/// Removes and returns the installed plane (for result shipping and
/// clean shutdown).
pub fn uninstall() -> Option<NetPlane> {
    registry().take()
}

/// Whether this process runs behind a netplane.
#[must_use]
pub fn is_active() -> bool {
    registry().is_some()
}

/// The installed plane's node range on an `n`-node graph, or `None`
/// without a plane.
#[must_use]
pub fn local_range(n: usize) -> Option<(usize, usize)> {
    registry().as_ref().map(|p| p.local_range(n))
}

/// Global AND across shards; identity without a plane.
#[must_use]
pub fn allreduce_and(local: bool) -> bool {
    match registry().as_mut() {
        Some(plane) => plane.allreduce_and(local),
        None => local,
    }
}

/// Makes a states-derived per-node vector globally authoritative (see
/// [`NetPlane::sync_rows`]); no-op without a plane.
pub fn sync_rows<T: Wire>(rows: &mut [T]) {
    if let Some(plane) = registry().as_mut() {
        plane.sync_rows(rows);
    }
}

/// Runs one phase through the installed plane, or returns `None` when no
/// plane is installed (callers fall back to the in-process engines).
///
/// # Errors
///
/// Inner result: the engine's [`SimError`]s, bit-identical to sequential.
pub fn run_phase<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    config: &SimConfig,
    net: &Arc<NetTables>,
) -> Option<Result<RunResult<P::State>, SimError>>
where
    P::Msg: Wire,
{
    registry()
        .as_mut()
        .map(|plane| plane.execute_with(graph, protocol, config, net))
}

/// Convenience for shard drivers: full membership handshake against a
/// coordinator at `coordinator` under `config`'s deadlines, then mesh
/// build, optionally carrying a seeded chaos schedule.
///
/// # Errors
///
/// Structured [`NetError`]s from handshake and mesh build.
pub fn join_mesh(
    coordinator: SocketAddr,
    config: NetConfig,
    chaos: Option<ChaosConfig>,
) -> Result<NetPlane, NetError> {
    NetPlane::connect(membership::join(coordinator, &config)?, config, chaos)
}

/// Convenience for orchestrators: a bound coordinator on an ephemeral
/// localhost port.
///
/// # Errors
///
/// Propagates bind errors.
pub fn coordinator() -> io::Result<Coordinator> {
    Coordinator::bind()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SequentialRuntime;
    use crate::{Inbox, Message, NodeCtx, NodeRng, Outbox, Scheduling, Status, Wake};
    use graphs::gen;
    use std::thread;
    use std::time::Duration;

    /// Runs `f` once per shard on a fresh `k`-way localhost mesh (threads
    /// standing in for processes) and returns the results in shard order.
    fn with_mesh_cfg<R, F>(k: u32, config: NetConfig, chaos: Option<ChaosConfig>, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(NetPlane) -> R + Send + Sync + 'static,
    {
        let coordinator = Coordinator::bind().unwrap();
        let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, coordinator.port()));
        let coord_cfg = config.clone();
        let coord = thread::spawn(move || coordinator.assign(k, &coord_cfg).unwrap());
        let f = Arc::new(f);
        let handles: Vec<_> = (0..k)
            .map(|_| {
                let f = Arc::clone(&f);
                let config = config.clone();
                thread::spawn(move || {
                    let membership = membership::join(addr, &config).unwrap();
                    let shard = membership.assign.shard;
                    let plane = NetPlane::connect(membership, config, chaos).unwrap();
                    (shard, f(plane))
                })
            })
            .collect();
        let mut results: Vec<(u32, R)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by_key(|&(s, _)| s);
        coord.join().unwrap();
        results.into_iter().map(|(_, r)| r).collect()
    }

    fn with_mesh<R, F>(k: u32, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(NetPlane) -> R + Send + Sync + 'static,
    {
        with_mesh_cfg(k, NetConfig::default(), None, f)
    }

    #[test]
    fn shard_ranges_partition() {
        for (n, k) in [(10, 2), (10, 3), (7, 4), (1, 4), (100, 1)] {
            let mut covered = 0;
            for s in 0..k {
                let (lo, hi) = shard_range(n, k, s);
                assert_eq!(lo, covered);
                covered = hi;
                for v in lo..hi {
                    assert_eq!(shard_of(n, k, v), s);
                }
            }
            assert_eq!(covered, n);
        }
    }

    /// Max-ident flood: every round's traffic crosses shard boundaries.
    struct Flood;

    impl Protocol for Flood {
        type State = (u64, bool);
        type Msg = u64;
        fn init(&self, ctx: &NodeCtx, _: &mut NodeRng) -> (u64, bool) {
            (ctx.ident, true)
        }
        fn round(
            &self,
            st: &mut (u64, bool),
            _: &NodeCtx,
            _: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(_, id) in inbox {
                if id > st.0 {
                    *st = (id, true);
                }
            }
            if st.1 {
                st.1 = false;
                out.broadcast(st.0);
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    fn reference_cfg(seed: u64) -> SimConfig {
        SimConfig::seeded(seed).with_scheduling(Scheduling::AlwaysStep)
    }

    #[test]
    fn flood_matches_sequential_across_2_and_4_shards() {
        for k in [2u32, 4] {
            let g = gen::gnp_capped(40, 0.15, 6, 7);
            let cfg = reference_cfg(3);
            let seq = SequentialRuntime.execute(&g, &Flood, &cfg).unwrap();
            let outs = with_mesh(k, move |mut plane| {
                let g = gen::gnp_capped(40, 0.15, 6, 7);
                let cfg = reference_cfg(3);
                let net = NetTables::build(&g, &cfg);
                let range = plane.local_range(g.n());
                (range, plane.execute_with(&g, &Flood, &cfg, &net).unwrap())
            });
            for ((lo, hi), res) in outs {
                // Metrics are globally merged: identical in every shard
                // and equal to the sequential record.
                assert_eq!(res.metrics, seq.metrics);
                // Owned states match the reference row-for-row.
                assert_eq!(res.states[lo..hi], seq.states[lo..hi]);
            }
        }
    }

    /// A protocol that parks: each node waits for its ident-th round via
    /// `Wake::At`, then floods once — under `ActiveSet` most rounds step
    /// only a few nodes, so the frontier must travel the mesh correctly.
    struct Staggered;

    impl Protocol for Staggered {
        type State = (u64, bool);
        type Msg = u64;
        fn init(&self, ctx: &NodeCtx, _: &mut NodeRng) -> (u64, bool) {
            (ctx.ident, false)
        }
        fn round(
            &self,
            st: &mut (u64, bool),
            ctx: &NodeCtx,
            _: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(_, id) in inbox {
                st.0 = st.0.max(id);
            }
            if !st.1 && ctx.round >= ctx.ident % 7 {
                st.1 = true;
                out.broadcast(st.0);
            }
            if st.1 {
                Status::Done
            } else {
                Status::Running
            }
        }
        fn next_wake(&self, st: &Self::State, ctx: &NodeCtx, _: Status) -> Wake {
            if st.1 {
                Wake::Message
            } else {
                Wake::At(ctx.ident % 7)
            }
        }
    }

    /// Netplane × `ActiveSet` is bit-identical to netplane × `AlwaysStep`
    /// and to the sequential engine on every observable, with only
    /// `stepped_nodes` allowed to shrink — the frontier machinery now
    /// runs inside the shared core, over the mesh transport.
    #[test]
    fn active_set_matches_sequential_and_always_step_across_shards() {
        let g = gen::gnp_capped(40, 0.15, 6, 7);
        let active_cfg = SimConfig::seeded(3); // ActiveSet is the default
        let seq_active = SequentialRuntime
            .execute(&g, &Staggered, &active_cfg)
            .unwrap();
        let seq_always = SequentialRuntime
            .execute(&g, &Staggered, &reference_cfg(3))
            .unwrap();
        assert_eq!(seq_active.states, seq_always.states);
        assert!(
            seq_active.metrics.stepped_nodes < seq_always.metrics.stepped_nodes,
            "parking must shrink the stepped-node count"
        );
        for k in [2u32, 4] {
            let outs = with_mesh(k, move |mut plane| {
                let g = gen::gnp_capped(40, 0.15, 6, 7);
                let cfg = SimConfig::seeded(3);
                let net = NetTables::build(&g, &cfg);
                let range = plane.local_range(g.n());
                (
                    range,
                    plane.execute_with(&g, &Staggered, &cfg, &net).unwrap(),
                )
            });
            for ((lo, hi), res) in outs {
                // Full metrics equality — including `stepped_nodes`,
                // which only matches if every shard's frontier walked
                // the same schedule as the sequential engine's.
                assert_eq!(res.metrics, seq_active.metrics);
                assert_eq!(res.states[lo..hi], seq_active.states[lo..hi]);
            }
        }
    }

    /// The simulated fault plane (drops + duplicates) charges the same
    /// fates on every shard, and the STATS merge carries the fault
    /// counters — the old hand-rolled merge silently zeroed them.
    #[test]
    fn fault_plane_matches_sequential_across_shards() {
        let faults = || {
            crate::FaultConfig::seeded(11)
                .with_drops(120_000)
                .with_dups(90_000)
        };
        let g = gen::gnp_capped(40, 0.15, 6, 7);
        let cfg = reference_cfg(3).with_faults(faults());
        let seq = SequentialRuntime.execute(&g, &Flood, &cfg).unwrap();
        assert!(
            seq.metrics.faults_dropped > 0 && seq.metrics.faults_duplicated > 0,
            "fault config must actually bite: {:?}",
            seq.metrics
        );
        let outs = with_mesh(3, move |mut plane| {
            let g = gen::gnp_capped(40, 0.15, 6, 7);
            let cfg = reference_cfg(3).with_faults(faults());
            let net = NetTables::build(&g, &cfg);
            let range = plane.local_range(g.n());
            (range, plane.execute_with(&g, &Flood, &cfg, &net).unwrap())
        });
        for ((lo, hi), res) in outs {
            assert_eq!(res.metrics, seq.metrics);
            assert_eq!(res.states[lo..hi], seq.states[lo..hi]);
        }
    }

    /// Crash faults under `ActiveSet`: the projection-driven probe latch
    /// must fire on the same round in every shard, and the round-limit
    /// watchdog must exclude crashed nodes globally.
    #[test]
    fn crash_faults_with_active_set_latch_identically_across_shards() {
        let faults = || crate::FaultConfig::seeded(5).with_crashes(400_000, 6, u64::MAX);
        let g = gen::path(40);
        let cfg = SimConfig::seeded(1)
            .with_max_rounds(10)
            .with_faults(faults())
            .with_phase_label("crashy");
        let seq_err = SequentialRuntime.execute(&g, &Forever, &cfg).unwrap_err();
        let errs = with_mesh(4, move |mut plane| {
            let g = gen::path(40);
            let cfg = SimConfig::seeded(1)
                .with_max_rounds(10)
                .with_faults(faults())
                .with_phase_label("crashy");
            let net = NetTables::build(&g, &cfg);
            plane.execute_with(&g, &Forever, &cfg, &net).unwrap_err()
        });
        for err in errs {
            assert_eq!(err, seq_err);
        }
    }

    /// A periodic protocol (sync_period 3): silent rounds must stay
    /// silent on the wire and termination must land on a comm round.
    struct Pulse;

    impl Protocol for Pulse {
        type State = u64;
        type Msg = u64;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) -> u64 {
            0
        }
        fn round(
            &self,
            st: &mut u64,
            ctx: &NodeCtx,
            _: &mut NodeRng,
            inbox: &Inbox<u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            for &(p, x) in inbox {
                *st = st.wrapping_add(x ^ u64::from(p));
            }
            let pulse = ctx.round / 3;
            if ctx.round.is_multiple_of(3) && pulse < 4 {
                out.broadcast(ctx.ident + pulse);
                Status::Running
            } else if pulse < 4 {
                Status::Running
            } else {
                Status::Done
            }
        }
        fn sync_period(&self) -> u64 {
            3
        }
    }

    #[test]
    fn periodic_protocol_matches_sequential() {
        let g = gen::cycle(8);
        let cfg = reference_cfg(2);
        let seq = SequentialRuntime.execute(&g, &Pulse, &cfg).unwrap();
        assert_eq!(seq.metrics.rounds, 13);
        let outs = with_mesh(2, move |mut plane| {
            let g = gen::cycle(8);
            let cfg = reference_cfg(2);
            let net = NetTables::build(&g, &cfg);
            let range = plane.local_range(g.n());
            (range, plane.execute_with(&g, &Pulse, &cfg, &net).unwrap())
        });
        for ((lo, hi), res) in outs {
            assert_eq!(res.metrics, seq.metrics);
            assert_eq!(res.states[lo..hi], seq.states[lo..hi]);
        }
    }

    /// Never terminates, never sends: exercises the round-limit error.
    struct Forever;

    impl Protocol for Forever {
        type State = ();
        type Msg = ();
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
        fn round(
            &self,
            _: &mut (),
            _: &NodeCtx,
            _: &mut NodeRng,
            _: &Inbox<()>,
            _: &mut Outbox<()>,
        ) -> Status {
            Status::Running
        }
    }

    #[test]
    fn round_limit_error_is_global_and_identical() {
        let g = gen::path(9);
        let cfg = reference_cfg(0)
            .with_max_rounds(10)
            .with_phase_label("forever");
        let seq_err = SequentialRuntime.execute(&g, &Forever, &cfg).unwrap_err();
        let errs = with_mesh(3, move |mut plane| {
            let g = gen::path(9);
            let cfg = reference_cfg(0)
                .with_max_rounds(10)
                .with_phase_label("forever");
            let net = NetTables::build(&g, &cfg);
            plane.execute_with(&g, &Forever, &cfg, &net).unwrap_err()
        });
        for err in errs {
            // live_nodes sums across shards to the sequential count.
            assert_eq!(err, seq_err);
        }
    }

    /// One oversized message from node 0: exercises the strict-bandwidth
    /// abort, whose error value must be globally agreed.
    struct Fat;

    #[derive(Debug, Clone)]
    struct Huge;
    impl Message for Huge {
        fn bits(&self) -> u64 {
            1 << 20
        }
    }
    impl Wire for Huge {
        fn put(&self, _: &mut Vec<u8>) {}
        fn take(_: &mut Reader<'_>) -> Result<Self, WireError> {
            Ok(Huge)
        }
    }

    impl Protocol for Fat {
        type State = ();
        type Msg = Huge;
        fn init(&self, _: &NodeCtx, _: &mut NodeRng) {}
        fn round(
            &self,
            _: &mut (),
            ctx: &NodeCtx,
            _: &mut NodeRng,
            _: &Inbox<Huge>,
            out: &mut Outbox<Huge>,
        ) -> Status {
            if ctx.round == 0 {
                out.broadcast(Huge);
                Status::Running
            } else {
                Status::Done
            }
        }
    }

    #[test]
    fn strict_bandwidth_error_is_global_and_identical() {
        let g = gen::path(6);
        let cfg = reference_cfg(0).strict();
        let seq_err = SequentialRuntime.execute(&g, &Fat, &cfg).unwrap_err();
        let errs = with_mesh(2, move |mut plane| {
            let g = gen::path(6);
            let cfg = reference_cfg(0).strict();
            let net = NetTables::build(&g, &cfg);
            plane.execute_with(&g, &Fat, &cfg, &net).unwrap_err()
        });
        for err in errs {
            assert_eq!(err, seq_err);
        }
    }

    #[test]
    fn collectives_agree_across_shards() {
        let outs = with_mesh(3, |mut plane| {
            let me = plane.shard;
            // AND: true only when every shard contributes true.
            let all_true = plane.allreduce_and(true);
            let not_all = plane.allreduce_and(me != 1);
            // Sum of shard indices.
            let sum = plane.allreduce_sum(u64::from(me));
            // Row sync: each shard authoritatively owns 2 of 6 rows.
            let mut rows: Vec<u64> = (0..6)
                .map(|v| {
                    let (lo, hi) = plane.local_range(6);
                    if (lo..hi).contains(&v) {
                        100 + v as u64
                    } else {
                        999 // stale ghost row
                    }
                })
                .collect();
            plane.sync_rows(&mut rows);
            (all_true, not_all, sum, rows)
        });
        for (all_true, not_all, sum, rows) in outs {
            assert!(all_true);
            assert!(!not_all);
            assert_eq!(sum, 3);
            assert_eq!(rows, vec![100, 101, 102, 103, 104, 105]);
        }
    }

    /// A peer "restarts" mid-stream; `recover` replays the unacked syncs.
    #[test]
    fn recover_replays_unacked_round_frames() {
        let outs = with_mesh(2, |mut plane| {
            if plane.shard == 0 {
                let link = &mut plane.links[0];
                for sync in 1u64..=3 {
                    link.send_retained(sync, kind::ROUND, &sync.to_wire())
                        .unwrap();
                    link.flush().unwrap();
                }
                let rejoined = plane.recover().unwrap();
                assert_eq!(rejoined, 1);
                plane.links[0]
                    .send_retained(4, kind::ROUND, &4u64.to_wire())
                    .unwrap();
                plane.links[0].flush().unwrap();
                vec![]
            } else {
                // Apply sync 1, then crash: drop the link mid-phase.
                let first = plane.links[0].recv().unwrap();
                let have = u64::from_wire(&first.payload).unwrap();
                assert_eq!(have, 1);
                let peer_port = plane.peers[0].1;
                let me = plane.shard;
                drop(plane);
                // Restarted incarnation redials and announces its ack.
                let mut stream = TcpStream::connect((Ipv4Addr::LOCALHOST, peer_port)).unwrap();
                super::super::frame::write_frame(
                    &mut stream,
                    kind::REJOIN,
                    &Rejoin {
                        from: me,
                        have_sync: have,
                    }
                    .to_wire(),
                )
                .unwrap();
                stream.flush().unwrap();
                let mut link = Link::new(0, stream, 2).unwrap();
                (2u64..=4)
                    .map(|_| u64::from_wire(&link.recv().unwrap().payload).unwrap())
                    .collect::<Vec<_>>()
            }
        });
        assert_eq!(outs[1], vec![2, 3, 4]);
    }

    /// The acceptance check for "no unbounded blocking on the hot path":
    /// a peer that is alive but silent surfaces as a structured
    /// `PeerTimeout` within the configured budget.
    #[test]
    fn silent_peer_yields_peer_timeout_within_budget() {
        let config = NetConfig::default().with_read_timeout(Duration::from_millis(300));
        let outs = with_mesh_cfg(2, config, None, |mut plane| {
            if plane.shard == 0 {
                let start = Instant::now();
                let err = plane.try_allreduce_sum(1).unwrap_err();
                Some((err, start.elapsed()))
            } else {
                // Alive but silent: hold the plane open without ever
                // answering the collective.
                thread::sleep(Duration::from_millis(900));
                None
            }
        });
        let (err, elapsed) = outs[0].clone().expect("shard 0 reports");
        assert_eq!(err, NetError::PeerTimeout { shard: 1, sync: 1 });
        assert!(
            elapsed < Duration::from_millis(800),
            "timeout not bounded by the budget: {elapsed:?}"
        );
    }

    /// A lost link with recovery disabled is a structured `PeerLost`,
    /// not a hang or a panic deep in the transport.
    #[test]
    fn lost_peer_without_rejoin_window_is_structured() {
        let outs = with_mesh(2, |mut plane| {
            if plane.shard == 0 {
                Some(plane.try_allreduce_sum(1).unwrap_err())
            } else {
                drop(plane); // peer dies outright
                None
            }
        });
        match outs[0].clone().expect("shard 0 reports") {
            NetError::PeerLost {
                shard: 1, sync: 1, ..
            } => {}
            // The send may land before the peer's close is visible, in
            // which case the loss surfaces at the recv instead — but it
            // must still be PeerLost, never a hang.
            other => panic!("expected PeerLost, got {other:?}"),
        }
    }

    /// Seeded chaos link-drop mid-run: the source force-closes and
    /// redials, the destination replays its in-flight frames, and the
    /// result stays bit-identical to sequential.
    #[test]
    fn seeded_link_drop_recovers_bit_identically() {
        // Pick a seed whose drop fires early enough to land mid-run.
        let seed = (0..64u64)
            .find(|&s| super::super::chaos::drop_plan(s, 2).sync <= 3)
            .expect("some seed drops early");
        let chaos = ChaosConfig {
            seed,
            kill: false,
            drop_link: true,
            flush_delay: false,
        };
        let config = NetConfig::default().with_rejoin_timeout(Some(Duration::from_secs(10)));
        let g = gen::gnp_capped(40, 0.15, 6, 7);
        let cfg = reference_cfg(3);
        let seq = SequentialRuntime.execute(&g, &Flood, &cfg).unwrap();
        assert!(
            seq.metrics.rounds >= 4,
            "workload too short to exercise the drop"
        );
        let outs = with_mesh_cfg(2, config, Some(chaos), move |mut plane| {
            let g = gen::gnp_capped(40, 0.15, 6, 7);
            let cfg = reference_cfg(3);
            let net = NetTables::build(&g, &cfg);
            let range = plane.local_range(g.n());
            (range, plane.execute_with(&g, &Flood, &cfg, &net).unwrap())
        });
        for ((lo, hi), res) in outs {
            assert_eq!(res.metrics, seq.metrics);
            assert_eq!(res.states[lo..hi], seq.states[lo..hi]);
        }
    }

    #[test]
    fn registry_roundtrip_is_inert_without_plane() {
        assert!(!is_active());
        assert_eq!(local_range(100), None);
        assert!(allreduce_and(true));
        assert!(!allreduce_and(false));
        let mut rows = vec![1u64, 2, 3];
        sync_rows(&mut rows);
        assert_eq!(rows, vec![1, 2, 3]);
        assert!(uninstall().is_none());
    }
}
