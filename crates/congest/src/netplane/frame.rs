//! Length-prefixed frames: the unit of transmission between shard
//! processes.
//!
//! # Wire format
//!
//! ```text
//! ┌────────┬────────┬──────────────┬─────────────────┐
//! │ magic  │ kind   │ len (u32 LE) │ payload (len B) │
//! │ 1 byte │ 1 byte │ 4 bytes      │                 │
//! └────────┴────────┴──────────────┴─────────────────┘
//! ```
//!
//! The magic byte (`0xC6`) lets a receiver reject a stream that is not a
//! netplane peer (or that desynchronized) with a structured
//! [`FrameError::BadMagic`] instead of misinterpreting garbage as a
//! length. The length is capped at [`MAX_FRAME_LEN`]; a prefix above the
//! cap is [`FrameError::TooLarge`] — corrupt input can never trigger a
//! multi-gigabyte allocation.
//!
//! Two decoders cover the two consumption patterns:
//!
//! * [`read_frame`] — blocking, over any [`Read`]; used by the per-peer
//!   reader threads.
//! * [`FrameReader`] — incremental; bytes are fed in arbitrary splits and
//!   complete frames pop out. The property tests drive it with frames
//!   torn at every byte boundary.

use std::fmt;
use std::io::{self, Read, Write};

/// First byte of every frame.
pub const MAGIC: u8 = 0xC6;

/// Upper bound on a frame payload (64 MiB). Far above any real round
/// batch; exists so a corrupt length prefix fails structurally instead of
/// attempting a huge allocation.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Frame kinds. A `u8` namespace shared by membership and the round loop.
pub mod kind {
    /// Shard → coordinator: "my mesh listener is on this port".
    pub const HELLO: u8 = 1;
    /// Coordinator → shard: shard index, world size, peer table.
    pub const ASSIGN: u8 = 2;
    /// Dialing shard → accepting shard: "I am shard `from`".
    pub const JOIN: u8 = 3;
    /// Restarted shard → surviving shard: "I am shard `from`, I have
    /// acked syncs `≤ have_sync`; replay the rest".
    pub const REJOIN: u8 = 4;
    /// One communication round's batch + control flags (peer ↔ peer).
    pub const ROUND: u8 = 5;
    /// One allreduce contribution (peer ↔ peer).
    pub const REDUCE: u8 = 6;
    /// End-of-phase stats exchange (peer ↔ peer).
    pub const STATS: u8 = 7;
    /// Shard → coordinator: final colors + metrics of the owned range.
    pub const RESULT: u8 = 8;
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Discriminator from [`kind`].
    pub kind: u8,
    /// Opaque payload; interpreted by the layer owning `kind` via
    /// [`Wire`](super::Wire).
    pub payload: Vec<u8>,
}

/// A structured framing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream closed cleanly at a frame boundary.
    Closed,
    /// The stream closed mid-frame.
    UnexpectedEof,
    /// The first byte of a frame was not [`MAGIC`].
    BadMagic(u8),
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    TooLarge {
        /// The claimed payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// An underlying I/O error (message only, for comparability).
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the stream"),
            FrameError::UnexpectedEof => write!(f, "stream closed mid-frame"),
            FrameError::BadMagic(b) => {
                write!(f, "bad frame magic {b:#04x} (expected {MAGIC:#04x})")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

/// Writes one frame. The caller flushes (the round loop batches all
/// per-peer frames of a communication round into one flush — the round
/// barrier *is* the flush point).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — outbound frames are
/// engine-constructed, so an oversized one is a bug, not wire input.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).expect("payload length fits u32");
    assert!(len <= MAX_FRAME_LEN, "outbound frame exceeds MAX_FRAME_LEN");
    w.write_all(&[MAGIC, kind])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Writes only the first `keep` bytes of what [`write_frame`] would emit
/// — a *torn* frame. The chaos plane uses this to model a sender dying
/// mid-`write_all`: the receiver must surface a structured
/// [`FrameError::UnexpectedEof`] (or [`FrameError::BadMagic`] on the next
/// read, if the tear lands between frames), never a decoded partial
/// payload.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] (same contract as
/// [`write_frame`]).
pub fn write_torn_frame(
    w: &mut impl Write,
    kind: u8,
    payload: &[u8],
    keep: usize,
) -> io::Result<()> {
    let mut full = Vec::with_capacity(6 + payload.len());
    write_frame(&mut full, kind, payload)?;
    let keep = keep.min(full.len());
    w.write_all(&full[..keep])
}

/// Reads exactly one frame, blocking.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF at a frame boundary; the other
/// variants on malformed or truncated input.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; 6];
    // Distinguish clean close (0 bytes) from mid-frame close by reading
    // the first byte separately.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    read_exact_or_eof(r, &mut header[1..])?;
    parse_header(&header)?;
    let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes")) as usize;
    let mut payload = vec![0u8; len];
    read_exact_or_eof(r, &mut payload)?;
    Ok(Frame {
        kind: header[1],
        payload,
    })
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::UnexpectedEof
        } else {
            e.into()
        }
    })
}

/// Validates a 6-byte header: magic and length cap.
fn parse_header(header: &[u8; 6]) -> Result<u32, FrameError> {
    if header[0] != MAGIC {
        return Err(FrameError::BadMagic(header[0]));
    }
    let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    Ok(len)
}

/// Incremental frame decoder: bytes in (arbitrary splits), frames out.
///
/// After any error the reader is *poisoned* — a framing error means the
/// byte stream can no longer be trusted to realign, so every later call
/// returns the same error.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    poisoned: Option<FrameError>,
}

impl FrameReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if the buffer holds one.
    ///
    /// # Errors
    ///
    /// Returns the structured [`FrameError`] for malformed input; the
    /// reader stays poisoned with it afterwards.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buf.len() < 6 {
            // Not even a header yet — but a wrong magic byte is already
            // diagnosable from the first byte alone.
            if let Some(&b) = self.buf.first() {
                if b != MAGIC {
                    let e = FrameError::BadMagic(b);
                    self.poisoned = Some(e.clone());
                    return Err(e);
                }
            }
            return Ok(None);
        }
        let header: [u8; 6] = self.buf[..6].try_into().expect("6 bytes");
        let len = match parse_header(&header) {
            Ok(len) => len as usize,
            Err(e) => {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        };
        if self.buf.len() < 6 + len {
            return Ok(None);
        }
        let payload = self.buf[6..6 + len].to_vec();
        let kind = header[1];
        self.buf.drain(..6 + len);
        Ok(Some(Frame { kind, payload }))
    }

    /// Bytes buffered but not yet consumed as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::ROUND, b"hello").unwrap();
        write_frame(&mut buf, kind::STATS, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        let f1 = read_frame(&mut cursor).unwrap();
        assert_eq!(
            (f1.kind, f1.payload.as_slice()),
            (kind::ROUND, &b"hello"[..])
        );
        let f2 = read_frame(&mut cursor).unwrap();
        assert_eq!((f2.kind, f2.payload.as_slice()), (kind::STATS, &b""[..]));
        assert_eq!(read_frame(&mut cursor), Err(FrameError::Closed));
    }

    #[test]
    fn blocking_reader_rejects_garbage_and_truncation() {
        let mut cursor = io::Cursor::new(vec![0x00u8, 1, 2, 3, 4, 5]);
        assert_eq!(read_frame(&mut cursor), Err(FrameError::BadMagic(0x00)));
        // Truncated mid-header.
        let mut cursor = io::Cursor::new(vec![MAGIC, kind::ROUND, 9]);
        assert_eq!(read_frame(&mut cursor), Err(FrameError::UnexpectedEof));
        // Truncated mid-payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, kind::ROUND, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor), Err(FrameError::UnexpectedEof));
        // Oversized length prefix.
        let mut buf = vec![MAGIC, kind::ROUND];
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn torn_frame_truncates_at_the_requested_byte() {
        let mut full = Vec::new();
        write_frame(&mut full, kind::ROUND, b"abcdef").unwrap();
        // Tear mid-payload: a blocking reader sees a structured EOF.
        let mut torn = Vec::new();
        write_torn_frame(&mut torn, kind::ROUND, b"abcdef", 9).unwrap();
        assert_eq!(torn, full[..9]);
        let mut cursor = io::Cursor::new(torn);
        assert_eq!(read_frame(&mut cursor), Err(FrameError::UnexpectedEof));
        // `keep` past the end is the whole frame.
        let mut whole = Vec::new();
        write_torn_frame(&mut whole, kind::ROUND, b"abcdef", 999).unwrap();
        assert_eq!(whole, full);
    }

    #[test]
    fn incremental_reader_handles_torn_input() {
        let mut stream = Vec::new();
        write_frame(&mut stream, kind::ROUND, b"abc").unwrap();
        write_frame(&mut stream, kind::REDUCE, &[1, 2, 3, 4, 5, 6, 7]).unwrap();
        // Feed one byte at a time; frames must pop exactly twice.
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        for &b in &stream {
            r.feed(&[b]);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, b"abc");
        assert_eq!(got[1].kind, kind::REDUCE);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn incremental_reader_poisons_on_bad_magic() {
        let mut r = FrameReader::new();
        r.feed(&[0x42]);
        assert_eq!(r.next_frame(), Err(FrameError::BadMagic(0x42)));
        // Stays poisoned even if valid bytes follow.
        r.feed(&[MAGIC, 0, 0, 0, 0, 0]);
        assert_eq!(r.next_frame(), Err(FrameError::BadMagic(0x42)));
    }

    #[test]
    fn error_display() {
        assert!(FrameError::BadMagic(7).to_string().contains("0x07"));
        assert!(FrameError::TooLarge { len: 9, max: 1 }
            .to_string()
            .contains('9'));
        assert!(FrameError::Closed.to_string().contains("closed"));
        let io_err: FrameError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
    }
}
