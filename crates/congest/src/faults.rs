//! Deterministic fault injection: message drops/duplicates and node
//! crash/restart schedules.
//!
//! # Why faults are *scheduled*, not sampled online
//!
//! Every engine — sequential, parallel, and the multi-process netplane —
//! must produce bit-identical observables for the same seed (the repo's
//! foundational differential invariant), so faults cannot be drawn from
//! any stream whose consumption order depends on the engine: the parallel
//! runtime steps shards concurrently and stages messages in
//! shard-interleaved order, and netplane shards evaluate fates in
//! separate OS processes. Instead, every fault is a **pure function of
//! its coordinates**:
//!
//! * the fate of a message (delivered / dropped / duplicated) depends only
//!   on `(fault seed, round, sending node, sending port)` — a SplitMix64
//!   hash of the coordinates compared against per-million thresholds;
//! * the crash window of a node is precomputed at plane construction by
//!   walking nodes `0..n` in index order with one `ChaCha8` stream.
//!
//! Whichever thread — or process — evaluates a fault, at whatever time,
//! it computes the same answer. The differential harness
//! (`tests/fault_equivalence.rs`) asserts this across sequential vs
//! parallel engines, and `tests/net_equivalence.rs` extends the claim to
//! shards running over sockets.
//!
//! The plane is salted with the run's RNG salt, so each phase of a
//! multi-phase [`Driver`](crate::SimConfig::rng_salt)-style pipeline draws
//! a fresh fault trace while staying reproducible end to end.
//!
//! # What "crash" means in a synchronous round
//!
//! A node crashed at round `r` (i.e. `r` lies inside its crash window):
//!
//! * **does not step**: its [`Protocol::round`](crate::Protocol) is not
//!   called, so it sends nothing and observes nothing;
//! * **keeps its state and its RNG stream untouched** (*crash with durable
//!   state*): on restart it resumes exactly where it stopped, so a restart
//!   is deterministic and bit-identical across engines;
//! * **implicitly votes [`Done`](crate::Status::Done)**: a crashed node
//!   must not be able to block global termination forever (its restart
//!   round may lie beyond the round limit). If the protocol terminates
//!   while the node is down, the node's state is frozen mid-protocol —
//!   exactly the damage the repair pipeline (`d2core::repair`) recovers
//!   from;
//! * **receives nothing**: a message whose *arrival* round (send round
//!   `+ 1`) lands inside the destination's crash window is discarded at
//!   delivery-staging time and counted in
//!   [`Metrics::crash_drops`](crate::Metrics::crash_drops).
//!
//! Senders are unaffected by a neighbor's crash — in a synchronous
//! message-passing network a sender cannot observe a silent receiver
//! within the same round.
//!
//! # Accounting
//!
//! Bandwidth is charged at *send* time: a dropped message still consumed
//! its slot on the wire, so [`Metrics::messages`](crate::Metrics) counts
//! protocol sends regardless of fate and strict-bandwidth violations abort
//! even if the offending message would have been dropped. Fault artifacts
//! are tallied separately ([`Metrics::faults_dropped`](crate::Metrics),
//! `faults_duplicated`, `crash_drops`, `crashed_rounds`), and the
//! duplicate copy of a duplicated message is *not* counted as a protocol
//! message — with faults disabled every metric is bit-identical to a
//! fault-free build.
//!
//! A duplicated message arrives as **two identical copies on the same
//! port** in the same round. [`Inbox::from_port`](crate::Inbox::from_port)
//! deterministically returns the first copy;
//! [`Inbox::from_port_strict`](crate::Inbox::from_port_strict) surfaces
//! the duplication as a structured error for protocols that want to treat
//! it as a fault signal.

use crate::node::Port;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// The number of "per-million" probability units in a certainty.
pub const PER_MILLION: u32 = 1_000_000;

/// Declarative fault model for a run, hung on
/// [`SimConfig::faults`](crate::SimConfig::faults).
///
/// All probabilities are integer **parts per million**, so configurations
/// are exact, hashable, and platform-independent (no float rounding in the
/// fault schedule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the fault schedule. Independent of the run seed: the same
    /// protocol randomness can be replayed under different fault traces
    /// and vice versa.
    pub fault_seed: u64,
    /// Per-message drop probability, in parts per million.
    pub drop_per_million: u32,
    /// Per-message duplication probability, in parts per million. A
    /// duplicated message is delivered twice on the same port.
    pub dup_per_million: u32,
    /// Per-node probability of suffering one crash, in parts per million.
    pub crash_per_million: u32,
    /// Crash rounds are drawn uniformly from `[0, crash_window)`.
    pub crash_window: u64,
    /// Rounds a crashed node stays down before restarting
    /// (`u64::MAX` = the node never restarts).
    pub crash_down: u64,
}

impl FaultConfig {
    /// A fault model with the given schedule seed and no faults enabled —
    /// combine with the `with_*` builders.
    #[must_use]
    pub fn seeded(fault_seed: u64) -> Self {
        FaultConfig {
            fault_seed,
            drop_per_million: 0,
            dup_per_million: 0,
            crash_per_million: 0,
            crash_window: 0,
            crash_down: 0,
        }
    }

    /// Returns `self` with the message drop rate set (parts per million).
    #[must_use]
    pub fn with_drops(mut self, per_million: u32) -> Self {
        self.drop_per_million = per_million;
        self
    }

    /// Returns `self` with the message duplication rate set (parts per
    /// million).
    #[must_use]
    pub fn with_dups(mut self, per_million: u32) -> Self {
        self.dup_per_million = per_million;
        self
    }

    /// Returns `self` with node crashes enabled: each node crashes with
    /// probability `per_million` ppm, at a round uniform in `[0, window)`,
    /// staying down for `down` rounds (`u64::MAX` = forever).
    #[must_use]
    pub fn with_crashes(mut self, per_million: u32, window: u64, down: u64) -> Self {
        self.crash_per_million = per_million;
        self.crash_window = window;
        self.crash_down = down;
        self
    }

    /// Whether any fault class is enabled at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_per_million > 0 || self.dup_per_million > 0 || self.crash_per_million > 0
    }
}

/// The fate of one sent message under the fault plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered normally (one copy).
    Deliver,
    /// Lost on the wire.
    Drop,
    /// Delivered twice on the same port.
    Duplicate,
}

/// SplitMix64 finalizer: the avalanche permutation both the per-node RNG
/// derivation and the fault plane use to decorrelate structured inputs.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A materialized fault schedule for one run: per-message fates as a pure
/// hash, per-node crash windows precomputed in index order. Built by the
/// engines from [`SimConfig::faults`](crate::SimConfig::faults); see the
/// [module docs](self) for the determinism argument.
#[derive(Debug)]
pub struct FaultPlane {
    seed: u64,
    drop_per_million: u32,
    dup_per_million: u32,
    /// Per-node crash window `[start, end)`; `start == u64::MAX` means the
    /// node never crashes.
    crash_windows: Vec<(u64, u64)>,
    any_crashes: bool,
}

impl FaultPlane {
    /// Builds the schedule for a network of `n` nodes. `salt` is the run's
    /// RNG salt (phase counter in multi-phase drivers): mixing it in gives
    /// every phase a fresh, reproducible fault trace.
    #[must_use]
    pub fn new(config: &FaultConfig, salt: u64, n: usize) -> Self {
        let seed = splitmix(config.fault_seed ^ splitmix(salt ^ 0x6A09_E667_F3BC_C909));
        let mut any_crashes = false;
        let crash_windows = if config.crash_per_million > 0 && config.crash_window > 0 {
            // One ChaCha stream, consumed in node-index order — identical
            // on every engine because it is consumed only here, at plane
            // construction.
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC3A5_C85C_97CB_3127);
            (0..n)
                .map(|_| {
                    if rng.gen_range(0..PER_MILLION) < config.crash_per_million {
                        any_crashes = true;
                        let start = rng.gen_range(0..config.crash_window);
                        (start, start.saturating_add(config.crash_down))
                    } else {
                        (u64::MAX, u64::MAX)
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        FaultPlane {
            seed,
            drop_per_million: config.drop_per_million,
            dup_per_million: config.dup_per_million,
            crash_windows,
            any_crashes,
        }
    }

    /// The fate of the message sent by node `src` on port `port` in round
    /// `round` — a pure function of the coordinates, so every engine (and
    /// every netplane shard process) agrees regardless of evaluation order.
    #[must_use]
    pub fn fate(&self, round: u64, src: u32, port: Port) -> Fate {
        if self.drop_per_million == 0 && self.dup_per_million == 0 {
            return Fate::Deliver;
        }
        let edge = (u64::from(src) << 32) | u64::from(port);
        let roll = (splitmix(splitmix(self.seed ^ round) ^ edge) % u64::from(PER_MILLION)) as u32;
        if roll < self.drop_per_million {
            Fate::Drop
        } else if roll < self.drop_per_million + self.dup_per_million {
            Fate::Duplicate
        } else {
            Fate::Deliver
        }
    }

    /// Whether node `v` is crashed (down) at round `round`.
    #[must_use]
    pub fn is_crashed(&self, v: usize, round: u64) -> bool {
        if !self.any_crashes {
            return false;
        }
        let (start, end) = self.crash_windows[v];
        start <= round && round < end
    }

    /// Whether any node has a crash scheduled at all — lets engines skip
    /// the per-node window check entirely on crash-free planes.
    #[must_use]
    pub fn has_crashes(&self) -> bool {
        self.any_crashes
    }

    /// The crash window `[start, end)` scheduled for node `v`, or `None`
    /// if the node never crashes (`end == u64::MAX` means it never
    /// restarts). Engines use this to build crash/recovery event lists for
    /// active-set scheduling and to count crashed node-rounds analytically.
    #[must_use]
    pub fn crash_window(&self, v: usize) -> Option<(u64, u64)> {
        if !self.any_crashes {
            return None;
        }
        let (start, end) = self.crash_windows[v];
        (start != u64::MAX).then_some((start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_a_pure_function() {
        let cfg = FaultConfig::seeded(7).with_drops(100_000).with_dups(50_000);
        let a = FaultPlane::new(&cfg, 3, 100);
        let b = FaultPlane::new(&cfg, 3, 100);
        for round in 0..50 {
            for src in 0..20 {
                for port in 0..4 {
                    assert_eq!(a.fate(round, src, port), b.fate(round, src, port));
                }
            }
        }
    }

    #[test]
    fn fate_rates_are_roughly_calibrated() {
        let cfg = FaultConfig::seeded(11)
            .with_drops(100_000)
            .with_dups(100_000);
        let plane = FaultPlane::new(&cfg, 0, 10);
        let mut drops = 0u32;
        let mut dups = 0u32;
        let total = 40_000u32;
        for i in 0..total {
            match plane.fate(u64::from(i / 100), i % 10, (i / 10) % 10) {
                Fate::Drop => drops += 1,
                Fate::Duplicate => dups += 1,
                Fate::Deliver => {}
            }
        }
        // 10% each; allow wide slack (binomial σ ≈ 0.15%).
        let lo = total / 10 - total / 50;
        let hi = total / 10 + total / 50;
        assert!((lo..=hi).contains(&drops), "drops = {drops}");
        assert!((lo..=hi).contains(&dups), "dups = {dups}");
    }

    #[test]
    fn salt_changes_the_trace() {
        let cfg = FaultConfig::seeded(7).with_drops(200_000);
        let a = FaultPlane::new(&cfg, 0, 10);
        let b = FaultPlane::new(&cfg, 1, 10);
        let differs = (0..200u64).any(|r| a.fate(r, 0, 0) != b.fate(r, 0, 0));
        assert!(differs, "different salts must yield different traces");
    }

    #[test]
    fn crash_windows_are_deterministic_and_bounded() {
        let cfg = FaultConfig::seeded(9).with_crashes(500_000, 30, 10);
        let a = FaultPlane::new(&cfg, 2, 500);
        let b = FaultPlane::new(&cfg, 2, 500);
        assert!(a.has_crashes());
        let mut crashed = 0;
        for v in 0..500 {
            let window_a: Vec<bool> = (0..60).map(|r| a.is_crashed(v, r)).collect();
            let window_b: Vec<bool> = (0..60).map(|r| b.is_crashed(v, r)).collect();
            assert_eq!(window_a, window_b);
            if window_a.iter().any(|&x| x) {
                crashed += 1;
                let down = window_a.iter().filter(|&&x| x).count();
                assert!(down <= 10, "down {down} rounds, configured 10");
            }
        }
        // ~50% of 500 nodes crash inside the 60-round observation span.
        assert!((150..=350).contains(&crashed), "crashed = {crashed}");
    }

    #[test]
    fn never_restart_windows_extend_forever() {
        let cfg = FaultConfig::seeded(1).with_crashes(PER_MILLION, 5, u64::MAX);
        let plane = FaultPlane::new(&cfg, 0, 4);
        for v in 0..4 {
            assert!(plane.is_crashed(v, 1 << 40), "node {v} must stay down");
        }
    }

    #[test]
    fn crash_window_accessor_matches_is_crashed() {
        let cfg = FaultConfig::seeded(9).with_crashes(500_000, 30, 10);
        let plane = FaultPlane::new(&cfg, 2, 200);
        for v in 0..200 {
            match plane.crash_window(v) {
                Some((start, end)) => {
                    assert!(plane.is_crashed(v, start));
                    assert!(!plane.is_crashed(v, end));
                    assert!(start > 0 || plane.is_crashed(v, 0));
                }
                None => assert!((0..60).all(|r| !plane.is_crashed(v, r))),
            }
        }
        let clean = FaultPlane::new(&FaultConfig::seeded(3), 0, 10);
        assert_eq!(clean.crash_window(0), None);
    }

    #[test]
    fn inactive_config_yields_clean_plane() {
        let cfg = FaultConfig::seeded(3);
        assert!(!cfg.is_active());
        let plane = FaultPlane::new(&cfg, 0, 100);
        assert!(!plane.has_crashes());
        assert_eq!(plane.fate(0, 0, 0), Fate::Deliver);
    }
}
