//! Per-node context: what a CONGEST node is allowed to know.

use crate::net::NetTables;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::sync::Arc;

/// Port number: index into a node's incident-edge list. CONGEST nodes
/// address messages by port, not by global name.
pub type Port = u32;

/// The private random stream of one node. Seeded from the run seed and the
/// node index, so executions are reproducible and runtime-independent.
pub type NodeRng = ChaCha8Rng;

/// Everything a node knows a priori, plus the current round number.
///
/// This is the *knowledge model* of the simulation: standard KT₁-style
/// initial knowledge (own ID, neighbor IDs by port) plus the global
/// parameters `n` and `∆` that the paper's algorithms assume
/// ("We assume ∆ is known to the nodes", §2.6).
///
/// Contexts do not own their neighbor lists: the neighbor-identifier rows
/// live in a shared CSR [`NetTables`] built once per `(graph, config)`,
/// so cloning a context (or rebuilding all of them for a new driver phase)
/// allocates nothing per node.
#[derive(Clone)]
pub struct NodeCtx {
    /// Simulator index in `0..n`. Used to index per-node inputs/outputs in
    /// drivers; protocols must break symmetry with [`NodeCtx::ident`], never
    /// with `index` (identifiers are the model-sanctioned names).
    pub index: u32,
    /// The node's unique `O(log n)`-bit identifier.
    pub ident: u64,
    /// Number of nodes in the network.
    pub n: usize,
    /// Maximum degree `∆` of the network.
    pub max_degree: usize,
    /// Current round number (0-based), maintained by the engine.
    pub round: u64,
    /// Shared per-network tables holding this node's neighbor-identifier
    /// row.
    net: Arc<NetTables>,
    /// Row bounds of this node in the flat tables.
    row_start: u32,
    row_end: u32,
}

impl fmt::Debug for NodeCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeCtx")
            .field("index", &self.index)
            .field("ident", &self.ident)
            .field("n", &self.n)
            .field("max_degree", &self.max_degree)
            .field("round", &self.round)
            .field("neighbor_idents", &self.neighbor_idents())
            .finish()
    }
}

impl NodeCtx {
    /// Context backed by a row of shared [`NetTables`].
    pub(crate) fn from_tables(
        net: Arc<NetTables>,
        index: u32,
        row_start: u32,
        row_end: u32,
    ) -> Self {
        NodeCtx {
            index,
            ident: net.idents()[index as usize],
            n: net.n(),
            max_degree: net.max_degree(),
            round: 0,
            net,
            row_start,
            row_end,
        }
    }

    /// A free-standing context with an explicit neighbor list, detached from
    /// any simulation — for unit-testing protocol logic that only needs a
    /// `NodeCtx` value.
    #[must_use]
    pub fn standalone(
        index: u32,
        ident: u64,
        n: usize,
        max_degree: usize,
        neighbor_idents: Vec<u64>,
    ) -> Self {
        let degree = neighbor_idents.len() as u32;
        NodeCtx {
            index,
            ident,
            n,
            max_degree,
            round: 0,
            net: NetTables::standalone(ident, n, max_degree, neighbor_idents),
            row_start: 0,
            row_end: degree,
        }
    }

    /// Identifier of the neighbor on each port (`degree` entries), a slice
    /// of the shared CSR identifier table.
    #[must_use]
    pub fn neighbor_idents(&self) -> &[u64] {
        &self.net.neighbor_idents_flat()[self.row_start as usize..self.row_end as usize]
    }

    /// Degree of this node.
    #[must_use]
    pub fn degree(&self) -> usize {
        (self.row_end - self.row_start) as usize
    }

    /// `∆²`, the palette bound parameter of the paper (max degree of `G²`).
    #[must_use]
    pub fn delta_sq(&self) -> usize {
        self.max_degree * self.max_degree
    }

    /// Port of the neighbor with identifier `ident`, if any. `O(degree)`.
    #[must_use]
    pub fn port_of_ident(&self, ident: u64) -> Option<Port> {
        self.neighbor_idents()
            .iter()
            .position(|&x| x == ident)
            .map(|p| p as Port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> NodeCtx {
        NodeCtx::standalone(3, 42, 10, 4, vec![7, 9, 11])
    }

    #[test]
    fn degree_and_delta_sq() {
        let c = ctx();
        assert_eq!(c.degree(), 3);
        assert_eq!(c.delta_sq(), 16);
        assert_eq!(c.neighbor_idents(), &[7, 9, 11]);
    }

    #[test]
    fn port_lookup() {
        let c = ctx();
        assert_eq!(c.port_of_ident(9), Some(1));
        assert_eq!(c.port_of_ident(8), None);
    }

    #[test]
    fn debug_shows_neighbors_not_tables() {
        let s = format!("{:?}", ctx());
        assert!(s.contains("neighbor_idents: [7, 9, 11]"), "{s}");
    }
}
