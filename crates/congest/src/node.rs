//! Per-node context: what a CONGEST node is allowed to know.

use rand_chacha::ChaCha8Rng;

/// Port number: index into a node's incident-edge list. CONGEST nodes
/// address messages by port, not by global name.
pub type Port = u32;

/// The private random stream of one node. Seeded from the run seed and the
/// node index, so executions are reproducible and runtime-independent.
pub type NodeRng = ChaCha8Rng;

/// Everything a node knows a priori, plus the current round number.
///
/// This is the *knowledge model* of the simulation: standard KT₁-style
/// initial knowledge (own ID, neighbor IDs by port) plus the global
/// parameters `n` and `∆` that the paper's algorithms assume
/// ("We assume ∆ is known to the nodes", §2.6).
#[derive(Debug, Clone)]
pub struct NodeCtx {
    /// Simulator index in `0..n`. Used to index per-node inputs/outputs in
    /// drivers; protocols must break symmetry with [`NodeCtx::ident`], never
    /// with `index` (identifiers are the model-sanctioned names).
    pub index: u32,
    /// The node's unique `O(log n)`-bit identifier.
    pub ident: u64,
    /// Number of nodes in the network.
    pub n: usize,
    /// Maximum degree `∆` of the network.
    pub max_degree: usize,
    /// Identifier of the neighbor on each port (`degree` entries).
    pub neighbor_idents: Vec<u64>,
    /// Current round number (0-based), maintained by the engine.
    pub round: u64,
}

impl NodeCtx {
    /// Degree of this node.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.neighbor_idents.len()
    }

    /// `∆²`, the palette bound parameter of the paper (max degree of `G²`).
    #[must_use]
    pub fn delta_sq(&self) -> usize {
        self.max_degree * self.max_degree
    }

    /// Port of the neighbor with identifier `ident`, if any. `O(degree)`.
    #[must_use]
    pub fn port_of_ident(&self, ident: u64) -> Option<Port> {
        self.neighbor_idents
            .iter()
            .position(|&x| x == ident)
            .map(|p| p as Port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> NodeCtx {
        NodeCtx {
            index: 3,
            ident: 42,
            n: 10,
            max_degree: 4,
            neighbor_idents: vec![7, 9, 11],
            round: 0,
        }
    }

    #[test]
    fn degree_and_delta_sq() {
        let c = ctx();
        assert_eq!(c.degree(), 3);
        assert_eq!(c.delta_sq(), 16);
    }

    #[test]
    fn port_lookup() {
        let c = ctx();
        assert_eq!(c.port_of_ident(9), Some(1));
        assert_eq!(c.port_of_ident(8), None);
    }
}
