//! Minimal vendored criterion-style benchmark runner.
//!
//! The build environment has no network access, so this workspace ships a
//! tiny wall-clock bench harness behind the `criterion` API surface the
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark
//! runs a short warmup, then `sample_size` timed samples, and prints
//! `min/mean/max` per iteration. Statistical analysis, plots, and HTML
//! reports of the real crate are intentionally out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier showing just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warmup, and keeps `routine` observable
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(group: &str, name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group}/{name}: time [min {min:?}  mean {mean:?}  max {max:?}] ({} samples)",
        samples.len()
    );
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Ends the group (reporting happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a bench entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("x", 7).to_string(), "x/7");
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
    }
}
