//! Minimal vendored `rand_chacha`: a genuine ChaCha8 keystream generator
//! behind the [`ChaCha8Rng`] name.
//!
//! The build environment has no network access, so the workspace ships its
//! own implementation. The cipher core is the real ChaCha quarter-round
//! construction with 8 rounds (RFC 8439 layout); only the `seed_from_u64`
//! key-expansion differs from upstream (SplitMix64 instead of PCG), so
//! streams are deterministic per seed but not bit-identical to the
//! crates.io crate. Every experiment in this repository only relies on
//! per-seed determinism and statistical quality, both of which hold.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const BUF_WORDS: usize = 16;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf` (`BUF_WORDS` = exhausted).
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BUF_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // "expand 32-byte k" sigma constants.
        let mut st = [0u32; 16];
        st[0] = 0x6170_7865;
        st[1] = 0x3320_646E;
        st[2] = 0x7962_2D32;
        st[3] = 0x6B20_6574;
        let mut sm = state;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            st[4 + 2 * i] = k as u32;
            st[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0, nonce = 0.
        ChaCha8Rng {
            state: st,
            buf: [0; BUF_WORDS],
            idx: BUF_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..20).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..20).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(43);
            (0..20).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        // 16 words per block; draw several blocks' worth and check basic
        // dispersion (no stuck words).
        let vals: Vec<u32> = (0..64).map(|_| r.next_u32()).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 60, "keystream words should be distinct");
    }

    #[test]
    fn uniformity_smoke() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} far from 1000");
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let _ = r.next_u64();
        let mut s = r.clone();
        assert_eq!(r.next_u64(), s.next_u64());
    }
}
