//! Minimal vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this workspace ships
//! its own implementation of exactly the surface the simulator uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Semantics match the real crate closely enough
//! for the repository's purposes (uniform draws, Fisher–Yates shuffle);
//! bit-streams are **not** guaranteed to match upstream `rand`, only to be
//! deterministic per seed, which is all the experiments rely on.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64` (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`] stream
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Unbiased rejection sampling (Lemire-style threshold).
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let x = rng.next_u64();
                    if x < zone || zone == 0 {
                        return self.start.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Inclusive span; wraps to 0 only when the range covers the
                // full u64 value space, where any draw is uniform.
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let x = rng.next_u64();
                    if x < zone || zone == 0 {
                        return lo.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::draw(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice helpers: `shuffle` and `choose`.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rand::prelude`.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::SampleRange;

    /// Deterministic test source.
    struct SplitMix(u64);
    impl super::RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..7);
            assert!(x < 7);
            let y: u32 = r.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let f: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = SplitMix(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SplitMix(5);
        let v = [10u32, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let x = *v.choose(&mut r).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn inclusive_range_at_type_extremes() {
        let mut r = SplitMix(7);
        for _ in 0..100 {
            let x: u64 = r.gen_range(u64::MAX - 2..=u64::MAX);
            assert!(x >= u64::MAX - 2);
            let y: u64 = r.gen_range(0..=u64::MAX);
            let _ = y; // full span: any value is valid
            let z: u32 = r.gen_range(u32::MAX - 1..=u32::MAX);
            assert!(z >= u32::MAX - 1);
        }
    }

    #[test]
    fn rejection_sampling_handles_full_span() {
        let mut r = SplitMix(6);
        // span that does not divide 2^64 — exercise the rejection loop.
        for _ in 0..100 {
            let x: u64 = (0u64..3).sample_single(&mut r);
            assert!(x < 3);
        }
    }
}
