//! Statistical property tests for the O(n + m) generators.
//!
//! The geometric-skip `gnp` sampler replaced the per-pair Bernoulli loop,
//! which changes the realization drawn for a given seed while promising
//! the same distribution. These tests pin the promise down:
//!
//! * edge counts and degree statistics of skip-sampled `G(n, p)` match
//!   the closed-form Binomial expectations within a generous z-bound;
//! * the skip sampler and the old `O(n²)` Bernoulli reference (kept here,
//!   in the test tree, as `naive_gnp` — the production path is gone)
//!   agree in aggregate;
//! * `gnp_capped` never exceeds its degree cap anywhere in parameter
//!   space;
//! * `GraphBuilder::from_edge_stream` is bit-identical to the
//!   incremental `GraphBuilder::build` on random edge lists, including
//!   duplicate edges in both orientations, and rejects invalid edges the
//!   same way.

use graphs::{gen, Graph, GraphBuilder, GraphError, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// The pre-PR-3 `O(n²)` Bernoulli sampler, preserved as the statistical
/// reference implementation.
fn naive_gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if r.gen_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("reference sampler produces valid edges")
}

/// z-score of an observed Binomial(trials, p) outcome.
fn binomial_z(observed: f64, trials: f64, p: f64) -> f64 {
    let mean = trials * p;
    let sd = (trials * p * (1.0 - p)).sqrt();
    (observed - mean) / sd
}

#[test]
fn gnp_edge_count_matches_closed_form() {
    // Pooled across seeds, the total edge count is Binomial(S·C(n,2), p);
    // |z| < 4 has false-positive probability ~6e-5 and the seeds are
    // fixed, so this is deterministic in practice.
    let (n, p, seeds) = (600usize, 0.01, 20u64);
    let pairs = (n * (n - 1) / 2) as f64;
    let total: usize = (0..seeds).map(|s| gen::gnp(n, p, 1000 + s).m()).sum();
    let z = binomial_z(total as f64, pairs * seeds as f64, p);
    assert!(z.abs() < 4.0, "pooled edge count z = {z}, total = {total}");
}

#[test]
fn gnp_degree_statistics_match_closed_form() {
    // Each degree is Binomial(n-1, p): check the pooled mean degree, and
    // that the maximum degree stays within a union-bound tail.
    let (n, p) = (2000usize, 0.005);
    let g = gen::gnp(n, p, 7);
    let mean = 2.0 * g.m() as f64 / n as f64;
    let expect = (n - 1) as f64 * p;
    let sd_of_mean = ((n - 1) as f64 * p * (1.0 - p) / n as f64).sqrt();
    let z = (mean - expect) / sd_of_mean;
    assert!(z.abs() < 4.0, "mean degree {mean} vs {expect}, z = {z}");
    // E[deg] ≈ 10; P(deg > 40 anywhere) is astronomically small.
    assert!(g.max_degree() < 40, "max degree {}", g.max_degree());
}

#[test]
fn gnp_matches_naive_reference_in_aggregate() {
    // Same distribution ⇒ pooled edge counts of the two samplers are
    // both Binomial(S·C(n,2), p); their standardized difference is
    // N(0, 2) under the null.
    let (n, p, seeds) = (400usize, 0.02, 15u64);
    let pairs = (n * (n - 1) / 2) as f64;
    let skip: usize = (0..seeds).map(|s| gen::gnp(n, p, 300 + s).m()).sum();
    let naive: usize = (0..seeds).map(|s| naive_gnp(n, p, 300 + s).m()).sum();
    let sd = (pairs * seeds as f64 * p * (1.0 - p)).sqrt();
    let z = (skip as f64 - naive as f64) / (sd * std::f64::consts::SQRT_2);
    assert!(
        z.abs() < 4.0,
        "skip {skip} vs naive {naive} pooled edges, z = {z}"
    );
}

#[test]
fn gnp_skip_sampler_handles_extreme_p() {
    assert_eq!(gen::gnp(100, 0.0, 1).m(), 0);
    assert_eq!(gen::gnp(100, 1.0, 1).m(), 100 * 99 / 2);
    assert_eq!(gen::gnp(1, 0.5, 1).m(), 0);
    assert_eq!(gen::gnp(0, 0.5, 1).n(), 0);
    // Tiny p on a large n: expected m = 0.0005·C(2000,2) ≈ 1000; must
    // not hang (the old loop did 2·10⁶ Bernoulli draws here).
    let g = gen::gnp(2000, 0.0005, 3);
    assert!(g.m() > 500 && g.m() < 1500, "m = {}", g.m());
    // Subnormal-adjacent p where (1.0 - p).ln() rounds to -0.0: the
    // skip must stay finite (ln_1p path), terminating with ~surely no
    // edges instead of looping forever on skip = -inf.
    assert_eq!(gen::gnp(100, 1e-18, 1).m(), 0);
    assert_eq!(gen::gnp(100, f64::MIN_POSITIVE, 1).m(), 0);
}

#[test]
fn gnp_capped_never_exceeds_cap() {
    for (n, p, cap, seed) in [
        (50usize, 0.5, 3usize, 1u64),
        (200, 0.1, 7, 2),
        (500, 0.05, 12, 3),
        (1000, 0.9, 2, 4),
        (100, 1.0, 1, 5),
        (300, 0.02, 64, 6),
    ] {
        let g = gen::gnp_capped(n, p, cap, seed);
        assert!(
            g.max_degree() <= cap,
            "gnp_capped({n}, {p}, {cap}, {seed}): ∆ = {}",
            g.max_degree()
        );
    }
}

#[test]
fn gnp_capped_saturates_toward_cap_when_dense() {
    // With p = 1 every pair is a candidate, so (almost) every node
    // should reach the cap — the random-order acceptance can strand at
    // most a negligible fraction below it.
    let (n, cap) = (200usize, 4usize);
    let g = gen::gnp_capped(n, 1.0, cap, 9);
    let at_cap = (0..n as NodeId).filter(|&v| g.degree(v) == cap).count();
    assert!(
        at_cap * 10 >= n * 9,
        "only {at_cap}/{n} nodes reached the cap"
    );
}

#[test]
fn unit_disk_grid_bucketing_matches_all_pairs_scan() {
    // The bucketed unit_disk must produce the exact edge set of the
    // brute-force O(n²) scan — same predicate, different search order.
    for (n, radius, seed) in [
        (150usize, 0.09, 3u64),
        (80, 0.3, 5),
        (60, 0.02, 8),
        (40, 2.0, 9),
    ] {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (r.gen::<f64>(), r.gen::<f64>())).collect();
        let bucketed = gen::unit_disk_from_points(&pts, radius);
        let r2 = radius * radius;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let (dx, dy) = (pts[u].0 - pts[v].0, pts[u].1 - pts[v].1);
                if dx * dx + dy * dy <= r2 {
                    edges.push((u as NodeId, v as NodeId));
                }
            }
        }
        let brute = Graph::from_edges(n, &edges).expect("valid edges");
        assert_eq!(
            bucketed, brute,
            "unit_disk(n = {n}, r = {radius}, seed = {seed}) diverged from the all-pairs scan"
        );
    }
}

#[test]
fn unit_disk_handles_degenerate_layouts() {
    // All points coincident: K_n for any positive radius.
    let pts = vec![(0.25, 0.25); 12];
    assert_eq!(gen::unit_disk_from_points(&pts, 0.1).m(), 12 * 11 / 2);
    // Collinear points (zero-height bounding box).
    let line: Vec<(f64, f64)> = (0..50).map(|i| (f64::from(i) * 0.1, 3.0)).collect();
    let g = gen::unit_disk_from_points(&line, 0.15);
    assert_eq!(g.m(), 49, "each consecutive pair within radius");
    // Points far outside the unit square.
    let far = vec![(1e6, -1e6), (1e6 + 0.05, -1e6), (-1e6, 1e6)];
    let g = gen::unit_disk_from_points(&far, 0.1);
    assert_eq!(g.m(), 1);
    assert!(g.has_edge(0, 1));
}

#[test]
fn from_edge_stream_bit_identical_to_builder_on_random_lists() {
    for seed in 0..30u64 {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        let n = r.gen_range(1usize..120);
        let len = r.gen_range(0usize..400);
        let mut edges = Vec::with_capacity(len);
        let mut b = GraphBuilder::new(n);
        for _ in 0..len {
            let u = r.gen_range(0..n as NodeId);
            let v = r.gen_range(0..n as NodeId);
            if u == v {
                continue; // self-loop rejection is covered below
            }
            // Both orientations land in the list, plus natural duplicates
            // from the small node range.
            edges.push((u, v));
            b.add_edge(u, v);
        }
        let via_builder = b.build().expect("valid edges");
        let via_stream = GraphBuilder::from_edge_stream(n, edges).expect("valid edges");
        assert_eq!(
            via_builder, via_stream,
            "stream CSR diverged from builder CSR at seed {seed}"
        );
    }
}

#[test]
fn from_edge_stream_rejects_exactly_like_builder() {
    // Self-loop.
    let stream = GraphBuilder::from_edge_stream(5, [(0, 1), (2, 2)]);
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 1).add_edge(2, 2);
    assert_eq!(stream.unwrap_err(), b.build().unwrap_err());
    assert_eq!(
        GraphBuilder::from_edge_stream(5, [(2, 2)]).unwrap_err(),
        GraphError::SelfLoop { u: 2 }
    );
    // Out-of-range endpoint.
    assert_eq!(
        GraphBuilder::from_edge_stream(3, [(0, 1), (1, 9)]).unwrap_err(),
        GraphError::EndpointOutOfRange { u: 1, v: 9, n: 3 }
    );
    // Empty stream on zero nodes is fine.
    let g = GraphBuilder::from_edge_stream(0, std::iter::empty()).unwrap();
    assert_eq!(g.n(), 0);
}

/// Reference `random_regular` with the pre-incremental full rescan per
/// sweep (the production loop now `retain`s the open list instead): both
/// must draw identical RNG streams and emit identical graphs per seed.
fn rescan_random_regular(n: usize, d: usize, seed: u64) -> Graph {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let mut deg = vec![0usize; n];
    let mut b = GraphBuilder::new(n);
    for _ in 0..(4 * d + 20) {
        let mut open: Vec<NodeId> = (0..n as NodeId).filter(|&v| deg[v as usize] < d).collect();
        if open.len() < 2 {
            break;
        }
        open.shuffle(&mut r);
        for pair in open.chunks_exact(2) {
            let (u, v) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if u == v || b.contains_edge(u, v) {
                continue;
            }
            if deg[u as usize] < d && deg[v as usize] < d {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("generator produces valid edges")
}

#[test]
fn random_regular_incremental_open_list_is_bit_identical_to_rescan() {
    for (n, d, seed) in [(40, 3, 1u64), (200, 8, 7), (500, 5, 42), (64, 1, 9)] {
        let fast = gen::random_regular(n, d, seed);
        let reference = rescan_random_regular(n, d, seed);
        assert_eq!(
            fast, reference,
            "incremental open list diverged from rescan at n={n} d={d} seed={seed}"
        );
    }
}
