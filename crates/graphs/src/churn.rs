//! Batched edge churn: apply inserts and deletes to an immutable CSR
//! [`Graph`], producing the updated graph plus the set of *touched*
//! endpoints.
//!
//! The CSR representation is deliberately immutable — every consumer
//! (simulator port tables, `D2View`, squares) assumes frozen offsets — so
//! churn is modeled as a **batch rebuild**: collect the surviving edges,
//! append the effective inserts, and run the same `O(n + m log ∆)`
//! counting-pass construction the generators use
//! ([`GraphBuilder::from_edge_stream`]). One rebuild per batch amortizes
//! arbitrarily many edge events, which is how the churn benchmark drives
//! it (Poisson batches, not per-edge rebuilds).
//!
//! The returned *touched* list contains the endpoints of edges whose
//! membership actually changed — a delete of an absent edge or an insert
//! of a present one is a no-op and marks nothing. Touched endpoints are
//! exactly the seeds a repair pipeline needs: any new distance-2 conflict
//! after the batch has an endpoint within one hop of a touched node, so
//! damage detection can stay local instead of re-verifying the world.

use crate::graph::{Graph, GraphBuilder, GraphError, NodeId};
use std::collections::HashMap;

/// A batch of edge insertions and deletions to apply in one rebuild.
///
/// Within one batch, deletes are applied before inserts: an edge listed in
/// both ends up present. Duplicate entries are idempotent.
#[derive(Debug, Clone, Default)]
pub struct EdgeBatch {
    inserts: Vec<(NodeId, NodeId)>,
    deletes: Vec<(NodeId, NodeId)>,
}

impl EdgeBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        EdgeBatch::default()
    }

    /// Queues the undirected edge `{u, v}` for insertion.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.inserts.push((u, v));
        self
    }

    /// Queues the undirected edge `{u, v}` for deletion.
    pub fn delete(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.deletes.push((u, v));
        self
    }

    /// Number of queued events (inserts + deletes, before no-op
    /// filtering).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the batch queues no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Result of [`apply_batch`]: the rebuilt graph and the endpoints whose
/// adjacency actually changed.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// The graph after the batch.
    pub graph: Graph,
    /// Sorted, duplicate-free endpoints of every edge whose membership
    /// changed. Empty iff the batch was a no-op.
    pub touched: Vec<NodeId>,
    /// Number of edges actually inserted (absent before, present after).
    pub inserted: usize,
    /// Number of edges actually deleted (present before, absent after).
    pub deleted: usize,
}

/// Applies `batch` to `graph`, rebuilding the CSR once.
///
/// `O(n + m log ∆ + b)` for a batch of `b` events. See the module docs
/// for the no-op and ordering semantics.
///
/// # Errors
///
/// Returns [`GraphError`] if any queued edge (insert *or* delete) has an
/// out-of-range endpoint or is a self-loop — malformed events indicate a
/// corrupted churn trace, not a benign no-op.
pub fn apply_batch(graph: &Graph, batch: &EdgeBatch) -> Result<ChurnResult, GraphError> {
    let n = graph.n();
    for &(u, v) in batch.inserts.iter().chain(&batch.deletes) {
        if u as usize >= n || v as usize >= n {
            return Err(GraphError::EndpointOutOfRange { u, v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { u });
        }
    }
    // Net effect per mentioned edge: deletes first, then inserts, so an
    // edge in both lists is present afterwards. `final_present` is the
    // desired membership; comparing it with the current membership
    // classifies the event as effective or a no-op.
    let mut fate: HashMap<(NodeId, NodeId), bool> = HashMap::new();
    for &(u, v) in &batch.deletes {
        fate.insert((u.min(v), u.max(v)), false);
    }
    for &(u, v) in &batch.inserts {
        fate.insert((u.min(v), u.max(v)), true);
    }

    let mut to_add: Vec<(NodeId, NodeId)> = Vec::new();
    let mut to_remove: Vec<(NodeId, NodeId)> = Vec::new();
    let mut touched: Vec<NodeId> = Vec::new();
    for (&(u, v), &present_after) in &fate {
        if graph.has_edge(u, v) == present_after {
            continue; // no-op event
        }
        if present_after {
            to_add.push((u, v));
        } else {
            to_remove.push((u, v));
        }
        touched.push(u);
        touched.push(v);
    }
    touched.sort_unstable();
    touched.dedup();
    let (inserted, deleted) = (to_add.len(), to_remove.len());

    if inserted == 0 && deleted == 0 {
        return Ok(ChurnResult {
            graph: graph.clone(),
            touched,
            inserted,
            deleted,
        });
    }

    // Survivor stream + effective inserts → one counting-pass rebuild.
    // `to_remove` is tiny relative to `m`, so a sorted binary-search
    // membership test beats hashing every surviving edge.
    to_remove.sort_unstable();
    let survivors = graph
        .edges()
        .filter(|&(u, v)| to_remove.binary_search(&(u, v)).is_err());
    let rebuilt = GraphBuilder::from_edge_stream(n, survivors.chain(to_add.iter().copied()))?;
    Ok(ChurnResult {
        graph: rebuilt,
        touched,
        inserted,
        deleted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn insert_and_delete_in_one_batch() {
        let g = path4();
        let mut b = EdgeBatch::new();
        b.insert(0, 3).delete(1, 2);
        let r = apply_batch(&g, &b).unwrap();
        assert!(r.graph.has_edge(0, 3));
        assert!(!r.graph.has_edge(1, 2));
        assert!(r.graph.has_edge(0, 1), "untouched edges survive");
        assert_eq!(r.touched, vec![0, 1, 2, 3]);
        assert_eq!((r.inserted, r.deleted), (1, 1));
        assert_eq!(r.graph.m(), 3);
    }

    #[test]
    fn noop_events_touch_nothing() {
        let g = path4();
        let mut b = EdgeBatch::new();
        // Insert an existing edge, delete an absent one.
        b.insert(0, 1).delete(0, 2);
        let r = apply_batch(&g, &b).unwrap();
        assert_eq!(r.graph, g);
        assert!(r.touched.is_empty());
        assert_eq!((r.inserted, r.deleted), (0, 0));
    }

    #[test]
    fn delete_then_insert_same_edge_keeps_it() {
        let g = path4();
        let mut b = EdgeBatch::new();
        b.delete(1, 2).insert(2, 1);
        let r = apply_batch(&g, &b).unwrap();
        assert!(r.graph.has_edge(1, 2), "insert wins over delete");
        assert_eq!(r.graph, g);
        assert!(r.touched.is_empty(), "net membership unchanged");
    }

    #[test]
    fn duplicate_events_are_idempotent() {
        let g = path4();
        let mut b = EdgeBatch::new();
        b.insert(0, 2).insert(2, 0).delete(2, 3).delete(3, 2);
        assert_eq!(b.len(), 4);
        let r = apply_batch(&g, &b).unwrap();
        assert_eq!((r.inserted, r.deleted), (1, 1));
        assert!(r.graph.has_edge(0, 2));
        assert!(!r.graph.has_edge(2, 3));
    }

    #[test]
    fn empty_batch_is_identity() {
        let g = path4();
        let b = EdgeBatch::new();
        assert!(b.is_empty());
        let r = apply_batch(&g, &b).unwrap();
        assert_eq!(r.graph, g);
        assert!(r.touched.is_empty());
    }

    #[test]
    fn malformed_events_are_rejected() {
        let g = path4();
        let mut b = EdgeBatch::new();
        b.insert(0, 9);
        assert_eq!(
            apply_batch(&g, &b).unwrap_err(),
            GraphError::EndpointOutOfRange { u: 0, v: 9, n: 4 }
        );
        let mut b = EdgeBatch::new();
        b.delete(2, 2);
        assert_eq!(
            apply_batch(&g, &b).unwrap_err(),
            GraphError::SelfLoop { u: 2 }
        );
    }

    #[test]
    fn rebuild_matches_from_scratch_construction() {
        let g = crate::gen::gnp(60, 0.1, 7);
        let mut b = EdgeBatch::new();
        // Delete a few known edges, insert a few absent ones.
        let existing: Vec<_> = g.edges().take(5).collect();
        for &(u, v) in &existing {
            b.delete(u, v);
        }
        let mut added = 0;
        'outer: for u in 0..g.n() as NodeId {
            for v in (u + 1)..g.n() as NodeId {
                if !g.has_edge(u, v) {
                    b.insert(u, v);
                    added += 1;
                    if added == 5 {
                        break 'outer;
                    }
                }
            }
        }
        let r = apply_batch(&g, &b).unwrap();
        assert_eq!((r.inserted, r.deleted), (5, 5));
        // The rebuilt CSR equals a from-scratch build over the same set.
        let reference =
            GraphBuilder::from_edge_stream(g.n(), r.graph.edges().collect::<Vec<_>>()).unwrap();
        assert_eq!(r.graph, reference);
        assert_eq!(r.graph.m(), g.m());
    }
}
