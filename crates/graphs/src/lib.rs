//! Graph structures, workload generators, and verification for the
//! distance-2 coloring reproduction.
//!
//! This crate is the *workload substrate*: it provides the network
//! topologies on which the CONGEST algorithms run, plus centralized
//! utilities (square graphs, coloring verification, sparsity in the sense of
//! Definition 2.4 of the paper) that are used **only** by tests, the
//! verifier, and the experiment harness — never by the distributed
//! algorithms themselves.
//!
//! # Quick example
//!
//! ```
//! use graphs::{gen, verify};
//!
//! let g = gen::gnp_capped(200, 0.05, 12, 42);
//! assert!(g.max_degree() <= 12);
//! // A trivially valid d2-coloring: every node gets its own color.
//! let coloring: Vec<u32> = (0..g.n() as u32).collect();
//! assert!(verify::is_valid_d2_coloring(&g, &coloring));
//! ```

pub mod churn;
mod d2view;
pub mod gen;
mod graph;
pub mod io;
pub mod square;
pub mod stats;
pub mod verify;

pub use churn::{apply_batch, ChurnResult, EdgeBatch};
pub use d2view::D2View;
pub use graph::{Graph, GraphBuilder, GraphError, NodeId};

/// Number of bits needed to write down values in `0..n` (at least 1).
///
/// This is the unit in which CONGEST identifiers are measured: an ID is
/// `O(log n)` bits, and `id_bits(n)` is the exact `⌈log₂ n⌉` budget.
#[must_use]
pub fn id_bits(n: usize) -> u64 {
    usize::BITS as u64 - (n.max(2) - 1).leading_zeros() as u64
}

/// `⌈log₂ x⌉` for `x ≥ 1`, as a convenience for palette-size bit costs.
#[must_use]
pub fn ceil_log2(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros() as u64
    }
}

/// The iterated logarithm `log* n` (base 2), used when reporting the
/// `O(∆² + log* n)` bound of Theorem 1.2.
#[must_use]
pub fn log_star(mut x: f64) -> u32 {
    let mut i = 0;
    while x > 1.0 {
        x = x.log2();
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_matches_ceil_log2() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
    }

    #[test]
    fn id_bits_handles_degenerate_sizes() {
        // Even a 1-node network gets a nonzero identifier budget.
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
    }

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn log_star_known_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(1e9), 5);
    }
}
