//! Workload generators.
//!
//! Each generator is deterministic in its `seed` argument (ChaCha8 stream),
//! so every experiment in EXPERIMENTS.md is reproducible bit-for-bit.
//!
//! The families mirror the paper's motivation: wireless interference graphs
//! (unit-disk), task/resource bipartite graphs (strong hypergraph coloring),
//! the dense `G²`-clique regime that drives `Reduce`, and the double-star
//! instance from the distance-3 hardness discussion.
//!
//! # Complexity classes
//!
//! Every generator runs in time linear in its output (plus per-row sorting
//! inside the CSR build), so `n = 10⁶` workloads build in seconds:
//!
//! | generator | time | notes |
//! |---|---|---|
//! | [`gnp`], [`gnp_capped`] | `O(n + m)` expected | Batagelj–Brandes geometric skip |
//! | [`unit_disk`], [`unit_disk_from_points`] | `O(n + m)` expected | grid-bucketed, cell side ≥ radius |
//! | [`random_regular`] | `O((n + m) · sweeps)` | `4d + 20` matching sweeps, `m = nd/2` |
//! | [`grid`], [`torus`], [`path`], [`cycle`], [`binary_tree`] | `O(n)` | `m = Θ(n)` |
//! | [`star`], [`double_star`], [`caterpillar`], [`empty`] | `O(n)` | |
//! | [`clique`], [`complete_bipartite`], [`clique_ring`] | `O(n + m)` | dense: `m = Θ(n²)` is the output size |
//! | [`hypercube`] | `O(n log n)` | `m = n·d/2`, `d = log₂ n` |
//! | [`task_resource`] | `O(tasks · resources)` | per-task shuffle of the resource pool |
//! | [`preferential_attachment`] | `O(n · m_per_node)` expected | endpoint-pool sampling |
//! | [`disjoint_union`] | `O(Σ nᵢ + Σ mᵢ)` | |
//!
//! The random samplers go through [`GraphBuilder::from_edge_stream`], the
//! flat bulk-ingest CSR path with no per-edge hash-set bookkeeping.

use crate::{Graph, GraphBuilder, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Streams every pair `{u, v}` of an Erdős–Rényi `G(n, p)` draw to `emit`,
/// in `O(n + m)` expected time (Batagelj–Brandes geometric skip: instead of
/// flipping a coin per pair, jump straight to the next success — the gap
/// between successes in the lexicographic pair order is geometrically
/// distributed with parameter `p`, so one `f64` draw plus one `ln` replaces
/// `1/p` Bernoulli draws).
fn gnp_pairs(n: usize, p: f64, r: &mut ChaCha8Rng, mut emit: impl FnMut(NodeId, NodeId)) {
    assert!(p.is_finite(), "gnp probability must be finite, got {p}");
    if n < 2 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        // Degenerate clique: every pair is present; O(n²) = O(m).
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                emit(u, v);
            }
        }
        return;
    }
    // log(1 - p) < 0 for p ∈ (0, 1). ln_1p keeps it nonzero even for
    // subnormal p where `(1.0 - p).ln()` rounds to -0.0 (which would turn
    // every skip into -inf and the walk into an infinite loop).
    let log_q = (-p).ln_1p();
    // Walk pairs (w, v) with w < v in lexicographic (v, w) order; `w` may
    // transiently hold -1 or an overshoot past the current row.
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        // Skip ~ Geometric(p): floor(ln(1-U) / ln(1-p)), U uniform [0, 1).
        // Clamped to [0, 4e18] so the cast and the add below stay exact;
        // any skip past the last pair just walks `v` off the end.
        let u: f64 = r.gen();
        let skip = ((1.0 - u).ln() / log_q).floor().clamp(0.0, 4.0e18);
        w = w.saturating_add(1 + skip as i64);
        while v < n && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            emit(w as NodeId, v as NodeId);
        }
    }
}

/// Erdős–Rényi `G(n, p)` with every degree capped at `max_deg`.
///
/// Candidate edges are drawn with the `O(n + m)` geometric-skip sampler,
/// then visited in random order and accepted only while both endpoints are
/// below the cap, so `∆ ≤ max_deg` always holds. This keeps `∆` an
/// experiment parameter, which the paper's bounds are stated in.
///
/// `O(n + m)` expected time and space, `m` the number of candidate edges
/// (`≈ p·n²/2`).
#[must_use]
pub fn gnp_capped(n: usize, p: f64, max_deg: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    gnp_pairs(n, p, &mut r, |u, v| candidates.push((u, v)));
    candidates.shuffle(&mut r);
    let mut deg = vec![0usize; n];
    candidates.retain(|&(u, v)| {
        let ok = deg[u as usize] < max_deg && deg[v as usize] < max_deg;
        if ok {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        ok
    });
    GraphBuilder::from_edge_stream(n, candidates).expect("generator produces valid edges")
}

/// Plain Erdős–Rényi `G(n, p)` (no degree cap).
///
/// `O(n + m)` expected time via the geometric-skip sampler (the classic
/// `O(n²)` Bernoulli loop is gone; same distribution, different
/// realization per seed).
#[must_use]
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    gnp_pairs(n, p, &mut r, |u, v| edges.push((u, v)));
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// Random near-`d`-regular graph via a permutation matching heuristic.
///
/// Produces a simple graph where almost every node has degree exactly `d`
/// (a few nodes may fall short when matchings collide). Guarantees `∆ ≤ d`.
///
/// # Panics
///
/// Panics if `d >= n`.
#[must_use]
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree must be < n");
    let mut r = rng(seed);
    let mut deg = vec![0usize; n];
    let mut b = GraphBuilder::new(n);
    // Repeated random perfect-matching-ish passes: pair up nodes that still
    // need degree, skipping collisions (the builder's hash-backed
    // `contains_edge` makes the duplicate check O(1)). A handful of sweeps
    // converges.
    //
    // The open-node list is maintained incrementally: filled nodes are
    // dropped by an `O(|open|)` retain per sweep instead of a full
    // `O(n)` rescan — at n = 10⁶, d = 8 the rescans dominated the whole
    // generator (~1.4 s). `retain` preserves the ascending order a rescan
    // would produce and the shuffle consumes the same number of RNG
    // draws, so the generated graph is bit-identical per seed; the
    // shuffle itself works on a scratch copy so `open` stays ascending.
    let mut open: Vec<NodeId> = (0..n as NodeId).collect();
    let mut work: Vec<NodeId> = Vec::with_capacity(n);
    for sweep in 0..(4 * d + 20) {
        if sweep > 0 {
            open.retain(|&v| deg[v as usize] < d);
        }
        if open.len() < 2 {
            break;
        }
        work.clear();
        work.extend_from_slice(&open);
        work.shuffle(&mut r);
        for pair in work.chunks_exact(2) {
            let (u, v) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if u == v || b.contains_edge(u, v) {
                continue;
            }
            if deg[u as usize] < d && deg[v as usize] < d {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("generator produces valid edges")
}

/// 2-dimensional grid `rows × cols` (∆ = 4). `O(n)` time.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
        }
    }
    GraphBuilder::from_edge_stream(rows * cols, edges).expect("generator produces valid edges")
}

/// 2-dimensional torus (wrap-around grid, exactly 4-regular for dims ≥ 3).
/// `O(n)` time.
#[must_use]
pub fn torus(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx((r + 1) % rows, c)));
            edges.push((idx(r, c), idx(r, (c + 1) % cols)));
        }
    }
    GraphBuilder::from_edge_stream(rows * cols, edges).expect("generator produces valid edges")
}

/// Complete graph `K_n`; its square is itself and every node needs a
/// distinct color — a sanity anchor for palette bounds. `O(n²) = O(m)`.
#[must_use]
pub fn clique(n: usize) -> Graph {
    let edges = (0..n as NodeId).flat_map(|u| ((u + 1)..n as NodeId).map(move |v| (u, v)));
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// A star `K_{1,k}`: hub 0, leaves `1..=k`. Its square is a clique on
/// `k + 1` nodes — the densest d2 instance at ∆ = k.
#[must_use]
pub fn star(k: usize) -> Graph {
    GraphBuilder::from_edge_stream(k + 1, (1..=k as NodeId).map(|v| (0, v)))
        .expect("generator produces valid edges")
}

/// The **double star** from the paper's hardness discussion (§1): an edge
/// `{a, b}` with `k` leaves attached to each endpoint. Verifying a
/// distance-3 coloring on this instance requires `Ω(∆)` rounds; distance-2
/// coloring it is easy — the contrast the paper draws.
///
/// Node 0 is `a`, node 1 is `b`; leaves of `a` are `2..2+k`, leaves of `b`
/// are `2+k..2+2k`.
#[must_use]
pub fn double_star(k: usize) -> Graph {
    let mut edges = Vec::with_capacity(1 + 2 * k);
    edges.push((0, 1));
    for i in 0..k as NodeId {
        edges.push((0, 2 + i));
        edges.push((1, 2 + k as NodeId + i));
    }
    GraphBuilder::from_edge_stream(2 + 2 * k, edges).expect("generator produces valid edges")
}

/// A balanced binary tree on `n` nodes (heap indexing). `O(n)` time.
#[must_use]
pub fn binary_tree(n: usize) -> Graph {
    let edges = (1..n).map(|v| (v as NodeId, ((v - 1) / 2) as NodeId));
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` leaves.
/// High ∆, tiny sparsity variation — exercises the similarity graphs.
#[must_use]
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut edges = Vec::with_capacity(n);
    for s in 1..spine {
        edges.push(((s - 1) as NodeId, s as NodeId));
    }
    for s in 0..spine {
        for l in 0..legs {
            edges.push((s as NodeId, (spine + s * legs + l) as NodeId));
        }
    }
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// Disjoint cliques of size `k` joined in a ring by single edges.
/// `G²` restricted to each clique-plus-bridge is extremely dense: the
/// "coloring with a little help from my friends" regime of Section 2.1.
#[must_use]
pub fn clique_ring(num_cliques: usize, k: usize) -> Graph {
    let n = num_cliques * k;
    let mut edges = Vec::new();
    for c in 0..num_cliques {
        let base = (c * k) as NodeId;
        for i in 0..k as NodeId {
            for j in (i + 1)..k as NodeId {
                edges.push((base + i, base + j));
            }
        }
        if num_cliques > 1 {
            let next = ((c + 1) % num_cliques * k) as NodeId;
            edges.push((base, next));
        }
    }
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// Unit-disk graph: `n` points uniform in the unit square, edges between
/// pairs at Euclidean distance ≤ `radius`. The wireless-interference
/// workload from the paper's motivation (§1, frequency assignment).
///
/// `O(n + m)` expected time (grid-bucketed; see
/// [`unit_disk_from_points`]).
#[must_use]
pub fn unit_disk(n: usize, radius: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (r.gen::<f64>(), r.gen::<f64>())).collect();
    unit_disk_from_points(&pts, radius)
}

/// Unit-disk graph over caller-provided points (e.g. a planned antenna
/// layout). Exposed so examples can attach semantics to node positions.
///
/// Points are bucketed into a uniform grid whose cell side is at least
/// `radius`, so every edge is found by comparing each point against the
/// 3×3 block of cells around it: `O(n + m)` expected time for points in
/// general position (instead of the all-pairs `O(n²)` scan), identical
/// edge set. The grid is capped at `O(n)` cells, so memory stays linear
/// even for tiny radii over a huge bounding box.
#[must_use]
pub fn unit_disk_from_points(pts: &[(f64, f64)], radius: f64) -> Graph {
    let n = pts.len();
    let r2 = radius * radius;
    let radius = radius.abs();
    if n == 0 {
        return empty(0);
    }
    // Bounding box of the point set (callers may pass arbitrary layouts,
    // not just the unit square).
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y) in pts {
        assert!(
            x.is_finite() && y.is_finite(),
            "non-finite point ({x}, {y})"
        );
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    // Grid dimensions: cell side ≥ radius (so the 3×3 neighborhood covers
    // every candidate pair), capped per axis so the grid has O(n) cells.
    let axis_cap = ((n as f64).sqrt().ceil() as usize).max(1);
    let dims = |extent: f64| -> usize {
        if extent <= 0.0 {
            1
        } else if radius <= 0.0 {
            // Degenerate radius: only coincident points connect, and they
            // share a cell under any grid — use the finest capped grid.
            axis_cap
        } else {
            (((extent / radius).floor() as usize).max(1)).min(axis_cap)
        }
    };
    let (gx, gy) = (dims(max_x - min_x), dims(max_y - min_y));
    let (cw, ch) = ((max_x - min_x) / gx as f64, (max_y - min_y) / gy as f64);
    let cell_of = |x: f64, y: f64| -> usize {
        let cx = if cw > 0.0 {
            (((x - min_x) / cw) as usize).min(gx - 1)
        } else {
            0
        };
        let cy = if ch > 0.0 {
            (((y - min_y) / ch) as usize).min(gy - 1)
        } else {
            0
        };
        cy * gx + cx
    };
    // Counting-sort the points into cells (CSR-style bucket layout: one
    // flat index array, no per-cell Vec).
    let cells = gx * gy;
    let mut counts = vec![0usize; cells + 1];
    for &(x, y) in pts {
        counts[cell_of(x, y) + 1] += 1;
    }
    for c in 0..cells {
        counts[c + 1] += counts[c];
    }
    let mut bucket = vec![0 as NodeId; n];
    let mut cursor = counts.clone();
    for (i, &(x, y)) in pts.iter().enumerate() {
        let c = cell_of(x, y);
        bucket[cursor[c]] = i as NodeId;
        cursor[c] += 1;
    }
    // For each point, scan the 3×3 block of cells around it; keep `u < v`
    // so each pair is examined once.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for u in 0..n {
        let (x, y) = pts[u];
        let c = cell_of(x, y);
        let (cx, cy) = (c % gx, c / gx);
        for ny in cy.saturating_sub(1)..=(cy + 1).min(gy - 1) {
            for nx in cx.saturating_sub(1)..=(cx + 1).min(gx - 1) {
                let nc = ny * gx + nx;
                for &v in &bucket[counts[nc]..counts[nc + 1]] {
                    if (v as usize) <= u {
                        continue;
                    }
                    let dx = x - pts[v as usize].0;
                    let dy = y - pts[v as usize].1;
                    if dx * dx + dy * dy <= r2 {
                        edges.push((u as NodeId, v));
                    }
                }
            }
        }
    }
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// Bipartite task/resource graph: `tasks` task nodes each using
/// `uses_per_task` uniformly random resources out of `resources`.
///
/// Distance-2 coloring the task side so that tasks sharing a resource get
/// distinct colors is exactly the strong hypergraph coloring application
/// from §1. Task nodes are `0..tasks`, resource nodes `tasks..tasks+resources`.
#[must_use]
pub fn task_resource(tasks: usize, resources: usize, uses_per_task: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut edges = Vec::with_capacity(tasks * uses_per_task.min(resources));
    for t in 0..tasks {
        let mut chosen: Vec<usize> = (0..resources).collect();
        chosen.shuffle(&mut r);
        for &res in chosen.iter().take(uses_per_task.min(resources)) {
            edges.push((t as NodeId, (tasks + res) as NodeId));
        }
    }
    GraphBuilder::from_edge_stream(tasks + resources, edges)
        .expect("generator produces valid edges")
}

/// Barabási–Albert-style preferential attachment with `m` edges per new
/// node. Skewed degrees stress the varying-sparsity regime of `Reduce`.
#[must_use]
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Graph {
    let m = m.max(1).min(n.saturating_sub(1)).max(1);
    let mut r = rng(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    // Endpoint pool: each node appears once per incident edge, so sampling
    // uniformly from the pool is degree-proportional.
    let mut pool: Vec<NodeId> = Vec::new();
    for v in 1..(m + 1).min(n) {
        edges.push((v as NodeId, 0));
        pool.push(0);
        pool.push(v as NodeId);
    }
    for v in (m + 1)..n {
        let mut targets: Vec<NodeId> = Vec::new();
        let mut guard = 0;
        while targets.len() < m && guard < 50 * m {
            guard += 1;
            let t = pool[r.gen_range(0..pool.len())];
            if t != v as NodeId && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            edges.push((v as NodeId, t));
            pool.push(v as NodeId);
            pool.push(t);
        }
    }
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// The `d`-dimensional hypercube (`n = 2^d`, `∆ = d`): a classic CONGEST
/// topology with logarithmic degree and diameter.
///
/// # Panics
///
/// Panics if `d ≥ 28` (guards against absurd allocations).
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    assert!(d < 28, "hypercube dimension too large");
    let n = 1usize << d;
    let edges = (0..n).flat_map(move |v| {
        (0..d).filter_map(move |bit| {
            let u = v ^ (1 << bit);
            (v < u).then_some((v as NodeId, u as NodeId))
        })
    });
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// Complete bipartite graph `K_{a,b}` (left nodes `0..a`, right nodes
/// `a..a+b`): the extreme task/resource instance — every pair of same-side
/// nodes is at distance 2, so each side needs all-distinct colors.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let edges = (0..a).flat_map(move |u| (0..b).map(move |v| (u as NodeId, (a + v) as NodeId)));
    GraphBuilder::from_edge_stream(a + b, edges).expect("generator produces valid edges")
}

/// A path on `n` nodes. `O(n)` time.
#[must_use]
pub fn path(n: usize) -> Graph {
    let edges = (1..n).map(|v| ((v - 1) as NodeId, v as NodeId));
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// A cycle on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let edges = (0..n).map(|v| (v as NodeId, ((v + 1) % n) as NodeId));
    GraphBuilder::from_edge_stream(n, edges).expect("generator produces valid edges")
}

/// The empty graph on `n` nodes (no edges) — boundary-condition workload.
#[must_use]
pub fn empty(n: usize) -> Graph {
    GraphBuilder::new(n)
        .build()
        .expect("no edges, always valid")
}

/// The disjoint union of `parts`: part `i`'s node `v` becomes node
/// `offset_i + v`, with no edges between parts. The canonical generator of
/// disconnected workloads (multi-component networks exercise termination
/// detection: every component must keep voting until the globally slowest
/// one finishes).
#[must_use]
pub fn disjoint_union(parts: &[Graph]) -> Graph {
    let n: usize = parts.iter().map(Graph::n).sum();
    let mut edges = Vec::with_capacity(parts.iter().map(Graph::m).sum());
    let mut base = 0u32;
    for g in parts {
        edges.extend(g.edges().map(|(u, v)| (base + u, base + v)));
        base += g.n() as NodeId;
    }
    GraphBuilder::from_edge_stream(n, edges).expect("parts are valid simple graphs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_capped_respects_cap_and_seed() {
        let g1 = gnp_capped(100, 0.2, 7, 9);
        let g2 = gnp_capped(100, 0.2, 7, 9);
        let g3 = gnp_capped(100, 0.2, 7, 10);
        assert!(g1.max_degree() <= 7);
        assert_eq!(g1, g2, "same seed must reproduce");
        assert_ne!(g1, g3, "different seeds should differ");
    }

    #[test]
    fn random_regular_is_near_regular() {
        let g = random_regular(60, 6, 3);
        assert!(g.max_degree() <= 6);
        let full = (0..60u32).filter(|&v| g.degree(v) == 6).count();
        assert!(
            full >= 50,
            "most nodes should reach target degree, got {full}"
        );
    }

    #[test]
    #[should_panic(expected = "degree must be < n")]
    fn random_regular_rejects_excessive_degree() {
        let _ = random_regular(5, 5, 0);
    }

    #[test]
    fn grid_and_torus_shapes() {
        let g = grid(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 3 * 5);
        assert_eq!(g.max_degree(), 4);
        let t = torus(4, 5);
        assert_eq!(t.m(), 2 * 20);
        assert!((0..20u32).all(|v| t.degree(v) == 4));
    }

    #[test]
    fn clique_star_double_star() {
        assert_eq!(clique(6).m(), 15);
        let s = star(8);
        assert_eq!(s.max_degree(), 8);
        assert_eq!(s.d2_degree(1), 8); // a leaf sees hub + 7 other leaves
        let d = double_star(5);
        assert_eq!(d.n(), 12);
        assert_eq!(d.degree(0), 6);
        assert_eq!(d.degree(1), 6);
        // Leaves of a and leaves of b are at distance 3: not d2-neighbors.
        assert!(!d.are_d2_neighbors(2, 2 + 5));
        assert!(d.are_d2_neighbors(2, 1));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        // Interior spine nodes: 2 spine neighbors + 3 legs.
        assert_eq!(g.degree(2), 5);
        assert!(g.is_connected());
    }

    #[test]
    fn clique_ring_is_dense_and_connected() {
        let g = clique_ring(4, 5);
        assert_eq!(g.n(), 20);
        assert!(g.is_connected());
        // Every in-clique pair is adjacent.
        assert!(g.has_edge(0, 4));
        assert!(g.has_edge(5, 9));
    }

    #[test]
    fn unit_disk_radius_monotone() {
        let small = unit_disk(80, 0.05, 5);
        let large = unit_disk(80, 0.3, 5);
        assert!(small.m() < large.m());
    }

    #[test]
    fn task_resource_is_bipartite() {
        let tasks = 30;
        let g = task_resource(tasks, 10, 3, 1);
        for (u, v) in g.edges() {
            let tu = (u as usize) < tasks;
            let tv = (v as usize) < tasks;
            assert_ne!(tu, tv, "edge {u}-{v} not across the bipartition");
        }
        assert!((0..tasks as NodeId).all(|t| g.degree(t) == 3));
    }

    #[test]
    fn preferential_attachment_connected_and_skewed() {
        let g = preferential_attachment(200, 2, 7);
        assert!(g.is_connected());
        assert!(
            g.max_degree() > 6,
            "hub should emerge, ∆ = {}",
            g.max_degree()
        );
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!((0..16u32).all(|v| g.degree(v) == 4));
        assert!(g.is_connected());
        // Antipodal nodes are at distance 4, not 2.
        assert!(!g.are_d2_neighbors(0, 15));
        assert!(g.are_d2_neighbors(0, 3)); // differs in 2 bits
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 5);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 15);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(3), 3);
        // Same-side pairs are d2-neighbors; its square is a clique.
        assert!(g.are_d2_neighbors(0, 1));
        assert!(g.are_d2_neighbors(3, 7));
        assert_eq!(g.d2_degree(0), 7);
    }

    #[test]
    fn path_cycle_empty() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(empty(5).m(), 0);
        assert_eq!(empty(5).max_degree(), 0);
    }

    #[test]
    fn disjoint_union_offsets_parts() {
        let g = disjoint_union(&[cycle(4), empty(3), path(2)]);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 5);
        assert!(!g.is_connected());
        // Component structure survives the offset.
        assert!(g.has_edge(0, 3), "cycle closes within first part");
        assert!((4..7u32).all(|v| g.degree(v) == 0), "isolated middle part");
        assert!(g.has_edge(7, 8), "path lands after the offset");
        assert!(!g.are_d2_neighbors(3, 4), "no cross-part adjacency");
        assert_eq!(disjoint_union(&[]).n(), 0);
    }
}
