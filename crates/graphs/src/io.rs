//! Graph file I/O: whitespace edge lists and DIMACS `p edge` format.
//!
//! Lets the CLI (and downstream users) run the coloring algorithms on
//! their own network topologies.

use crate::{Graph, GraphBuilder, NodeId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from graph parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not match the expected format.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Structural problem (self-loop / out-of-range endpoint).
    Graph(crate::GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<crate::GraphError> for ParseError {
    fn from(e: crate::GraphError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parses a whitespace edge list: one `u v` pair per line; `#` comments
/// and blank lines ignored; `n` is inferred as `max endpoint + 1`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines or structural problems.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, ParseError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_node: u64 = 0;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (a, b) = (it.next(), it.next());
        let (a, b) = match (a, b) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(ParseError::Malformed {
                    line: i + 1,
                    reason: "expected two endpoints".into(),
                })
            }
        };
        let parse = |s: &str, line: usize| {
            s.parse::<u64>().map_err(|_| ParseError::Malformed {
                line,
                reason: format!("bad node id {s:?}"),
            })
        };
        let (u, v) = (parse(a, i + 1)?, parse(b, i + 1)?);
        max_node = max_node.max(u).max(v);
        edges.push((u as NodeId, v as NodeId));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_node as usize + 1
    };
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build()?)
}

/// Parses DIMACS `p edge n m` format (1-based `e u v` lines).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines or structural problems.
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let mut it = line.split_whitespace();
        match it.next() {
            None | Some("c") => {}
            Some("p") => {
                let _fmt = it.next();
                let n: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    ParseError::Malformed {
                        line: i + 1,
                        reason: "p-line missing node count".into(),
                    }
                })?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or_else(|| ParseError::Malformed {
                    line: i + 1,
                    reason: "e-line before p-line".into(),
                })?;
                let mut endpoint = |tag: &str| -> Result<NodeId, ParseError> {
                    it.next()
                        .and_then(|s| s.parse::<NodeId>().ok())
                        .filter(|&x| x >= 1)
                        .map(|x| x - 1)
                        .ok_or_else(|| ParseError::Malformed {
                            line: i + 1,
                            reason: format!("bad {tag} endpoint"),
                        })
                };
                let u = endpoint("first")?;
                let v = endpoint("second")?;
                b.add_edge(u, v);
            }
            Some(other) => {
                return Err(ParseError::Malformed {
                    line: i + 1,
                    reason: format!("unknown record {other:?}"),
                })
            }
        }
    }
    Ok(builder.unwrap_or_else(|| GraphBuilder::new(0)).build()?)
}

/// Writes a graph as a whitespace edge list (with an `# n = …` header so
/// isolated trailing nodes round-trip).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# n = {}", g.n())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Writes a coloring as `node color` lines.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_coloring<W: Write>(colors: &[u32], mut w: W) -> std::io::Result<()> {
    for (v, &c) in colors.iter().enumerate() {
        writeln!(w, "{v} {c}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::gnp_capped(50, 0.1, 6, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(std::io::Cursor::new(&buf)).unwrap();
        // Header comment does not carry n for trailing isolated nodes;
        // compare edges and degrees on the common prefix.
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn edge_list_parses_comments_and_blanks() {
        let text = "# header\n\n0 1  # inline\n1 2\n";
        let g = read_edge_list(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list(std::io::Cursor::new("0 x\n")).unwrap_err();
        assert!(err.to_string().contains("bad node id"));
        let err = read_edge_list(std::io::Cursor::new("7\n")).unwrap_err();
        assert!(err.to_string().contains("two endpoints"));
        let err = read_edge_list(std::io::Cursor::new("3 3\n")).unwrap_err();
        assert!(matches!(err, ParseError::Graph(_)));
    }

    #[test]
    fn dimacs_basics() {
        let text = "c comment\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n";
        let g = read_dimacs(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn dimacs_rejects_edge_before_header() {
        let err = read_dimacs(std::io::Cursor::new("e 1 2\n")).unwrap_err();
        assert!(err.to_string().contains("before p-line"));
    }

    #[test]
    fn dimacs_rejects_zero_based_ids() {
        let err = read_dimacs(std::io::Cursor::new("p edge 3 1\ne 0 1\n")).unwrap_err();
        assert!(err.to_string().contains("bad first endpoint"));
    }

    #[test]
    fn coloring_output_format() {
        let mut buf = Vec::new();
        write_coloring(&[2, 0, 1], &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0 2\n1 0\n2 1\n");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(read_edge_list(std::io::Cursor::new("")).unwrap().n(), 0);
        assert_eq!(read_dimacs(std::io::Cursor::new("")).unwrap().n(), 0);
    }
}
