//! Precomputed distance-2 neighborhood oracle in CSR form.
//!
//! # The oracle/distributed boundary
//!
//! The entire point of Halldórsson–Kuhn–Maus (PODC 2020) is that a CONGEST
//! node **cannot** afford to materialize its distance-2 neighborhood: it is
//! `∆²` identifiers behind `O(log n)`-bit pipes. The *distributed
//! algorithms* in this repository therefore never see `G²` or any
//! [`D2View`] — they only exchange messages through the simulator.
//!
//! The *centralized* side is a different story. The verifier, the square
//! graph, sparsity estimation, experiment statistics, and the test suites
//! all consult distance-2 neighborhoods constantly — and the naive
//! [`Graph::d2_neighbors`] allocates, sorts, and dedups a fresh `Vec` on
//! every call. Sitting under near-quadratic loops (similarity ground
//! truth, per-node sparsity), that is an allocation storm on the hot path
//! of every experiment.
//!
//! [`D2View`] fixes this with a one-shot `O(Σ_v deg²(v))` construction:
//! one offsets array plus one flat, sorted `NodeId` array (the same CSR
//! layout as [`Graph`] itself). After construction every query is
//! allocation-free:
//!
//! * [`D2View::d2_neighbors`] — a borrowed sorted slice,
//! * [`D2View::d2_degree`] — two array reads,
//! * [`D2View::common_d2`] — a linear merge over two CSR rows,
//! * [`D2View::are_d2_neighbors`] — a binary search.
//!
//! Build the view **once per experiment** (the harness, drivers, and test
//! helpers do) and pass it to every consumer. For memory-constrained
//! one-off queries where a full view is not warranted, use the
//! scratch-buffer fallback [`Graph::d2_neighbors_into`] instead.

use crate::{Graph, NodeId};

/// Precomputed distance-2 neighborhoods of every node, in CSR form.
///
/// Row `v` is the sorted set of nodes at distance 1 or 2 from `v`,
/// excluding `v` itself — exactly the adjacency of `v` in `G²`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct D2View {
    offsets: Vec<usize>,
    flat: Vec<NodeId>,
    base_max_degree: usize,
    max_d2_degree: usize,
}

impl D2View {
    /// Builds the view with a single `O(Σ_v deg²(v))` pass over `g`.
    #[must_use]
    pub fn build(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        // Lower bound: every edge contributes its endpoints to each other's
        // rows; the true total is Σ deg², unknown until rows are deduped.
        let mut flat: Vec<NodeId> = Vec::with_capacity(2 * g.m());
        let mut scratch: Vec<NodeId> = Vec::new();
        let mut max_d2 = 0usize;
        for v in 0..n as NodeId {
            g.d2_neighbors_into(v, &mut scratch);
            max_d2 = max_d2.max(scratch.len());
            flat.extend_from_slice(&scratch);
            offsets.push(flat.len());
        }
        D2View {
            offsets,
            flat,
            base_max_degree: g.max_degree(),
            max_d2_degree: max_d2,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted distance-≤2 neighborhood of `v`, excluding `v` itself.
    /// Zero-allocation borrowed slice.
    #[must_use]
    pub fn d2_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.flat[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v` in `G²`.
    #[must_use]
    pub fn d2_degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum degree of `G²` (0 for the empty graph).
    #[must_use]
    pub fn max_d2_degree(&self) -> usize {
        self.max_d2_degree
    }

    /// Maximum degree `∆` of the *base* graph the view was built from.
    #[must_use]
    pub fn base_max_degree(&self) -> usize {
        self.base_max_degree
    }

    /// Whether `u` and `v` are distinct nodes at distance ≤ 2.
    #[must_use]
    pub fn are_d2_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.d2_neighbors(u).binary_search(&v).is_ok()
    }

    /// Number of common *distance-2* neighbors of `u` and `v` — the
    /// quantity thresholded by the similarity graphs `H_{1-1/k}` (§2.3).
    /// A single merge over the two CSR rows; no allocation.
    #[must_use]
    pub fn common_d2(&self, u: NodeId, v: NodeId) -> usize {
        let (a, b) = (self.d2_neighbors(u), self.d2_neighbors(v));
        let (mut i, mut j, mut c) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    c += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        c
    }

    /// Materializes `G²` as a [`Graph`]: the view's rows *are* the square
    /// graph's CSR adjacency, so this is a plain copy — no builder, no
    /// per-edge work.
    #[must_use]
    pub fn to_square(&self) -> Graph {
        Graph::from_csr_parts(self.offsets.clone(), self.flat.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn assert_matches_naive(g: &Graph) {
        let view = D2View::build(g);
        assert_eq!(view.n(), g.n());
        for v in 0..g.n() as NodeId {
            let naive = g.d2_neighbors(v);
            assert_eq!(view.d2_neighbors(v), naive.as_slice(), "row {v}");
            assert_eq!(view.d2_degree(v), naive.len());
            for u in 0..g.n() as NodeId {
                assert_eq!(
                    view.are_d2_neighbors(v, u),
                    g.are_d2_neighbors(v, u),
                    "adjacency ({v},{u})"
                );
            }
        }
        assert_eq!(view.base_max_degree(), g.max_degree());
        assert_eq!(
            view.max_d2_degree(),
            (0..g.n() as NodeId)
                .map(|v| g.d2_neighbors(v).len())
                .max()
                .unwrap_or(0)
        );
    }

    #[test]
    fn agrees_with_naive_on_shapes() {
        assert_matches_naive(&gen::path(7));
        assert_matches_naive(&gen::star(6));
        assert_matches_naive(&gen::cycle(9));
        assert_matches_naive(&gen::clique(6));
        assert_matches_naive(&gen::empty(5));
        assert_matches_naive(&gen::gnp_capped(60, 0.1, 6, 3));
    }

    #[test]
    fn common_d2_matches_naive_counts() {
        let g = gen::gnp_capped(40, 0.15, 5, 8);
        let view = D2View::build(&g);
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                assert_eq!(
                    view.common_d2(u, v),
                    g.common_d2_neighbors(u, v),
                    "pair ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn to_square_is_the_square_graph() {
        let g = gen::path(5);
        let sq = D2View::build(&g).to_square();
        assert!(sq.has_edge(0, 2));
        assert!(sq.has_edge(1, 3));
        assert!(!sq.has_edge(0, 3));
        assert_eq!(sq.m(), 4 + 3);
        // Round trip through the view of a disconnected graph too.
        let g = Graph::from_edges(6, &[(0, 1), (3, 4), (4, 5)]).unwrap();
        let sq = D2View::build(&g).to_square();
        assert!(sq.has_edge(3, 5));
        assert!(!sq.has_edge(1, 3));
    }

    #[test]
    fn empty_graph() {
        let view = D2View::build(&gen::empty(0));
        assert_eq!(view.n(), 0);
        assert_eq!(view.max_d2_degree(), 0);
    }
}
