//! Centralized computation of the square graph `G²` and related oracles.
//!
//! These are verification/experiment tools. The distributed algorithms never
//! see `G²` explicitly — the paper's entire point is that building it is too
//! expensive in CONGEST.

use crate::{D2View, Graph, NodeId};

/// Computes the square graph `G²`: same vertex set, an edge wherever
/// `dist_G(u, v) ≤ 2`.
///
/// One [`D2View`] construction plus a CSR copy — the view's rows *are* the
/// square graph's adjacency. Callers that already hold a view should use
/// [`D2View::to_square`] directly.
#[must_use]
pub fn square(g: &Graph) -> Graph {
    D2View::build(g).to_square()
}

/// Maximum degree of `G²` without materializing it.
#[must_use]
pub fn square_max_degree(g: &Graph) -> usize {
    D2View::build(g).max_d2_degree()
}

/// Sparsity `ζ(v)` of a node per Definition 2.4 of the paper:
/// `G²[v]` (the subgraph of `G²` induced by v's d2-neighbors) contains
/// `C(∆², 2) − ∆² · ζ` edges, i.e.
/// `ζ(v) = (C(∆²,2) − |E(G²[v])|) / ∆²`.
///
/// Small `ζ` means the d2-neighborhood is nearly a clique (the "dense" case
/// driving `Reduce`); sparsity translates into color slack (Prop. 2.5).
///
/// Takes the prebuilt [`D2View`] of the base graph and its square `sq`
/// (`view.to_square()`); allocation-free per query.
#[must_use]
pub fn sparsity(view: &D2View, sq: &Graph, v: NodeId) -> f64 {
    let d2 = view.base_max_degree() * view.base_max_degree();
    if d2 == 0 {
        return 0.0;
    }
    let nbrs = view.d2_neighbors(v);
    let mut edges = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if sq.has_edge(a, b) {
                edges += 1;
            }
        }
    }
    let full = d2 * (d2 - 1) / 2;
    (full.saturating_sub(edges)) as f64 / d2 as f64
}

/// Greedy sequential coloring of `G²` — the centralized reference the
/// paper's `∆² + 1` bound generalizes. Returns the coloring and the number
/// of colors used.
#[must_use]
pub fn greedy_square_coloring(g: &Graph) -> (Vec<u32>, usize) {
    let view = D2View::build(g);
    let n = g.n();
    let mut colors = vec![u32::MAX; n];
    let mut used: Vec<u32> = Vec::new();
    let mut max_color = 0u32;
    for v in 0..n as NodeId {
        used.clear();
        for &u in view.d2_neighbors(v) {
            if colors[u as usize] != u32::MAX {
                used.push(colors[u as usize]);
            }
        }
        used.sort_unstable();
        used.dedup();
        let mut c = 0u32;
        for &u in &used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        colors[v as usize] = c;
        max_color = max_color.max(c);
    }
    (colors, if n == 0 { 0 } else { max_color as usize + 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn square_of_path_adds_distance2_edges() {
        let g = gen::path(5);
        let sq = square(&g);
        assert!(sq.has_edge(0, 2));
        assert!(sq.has_edge(1, 3));
        assert!(!sq.has_edge(0, 3));
        assert_eq!(sq.m(), 4 + 3);
    }

    #[test]
    fn square_of_star_is_clique() {
        let g = gen::star(6);
        let sq = square(&g);
        assert_eq!(sq.m(), 7 * 6 / 2);
        assert_eq!(square_max_degree(&g), 6);
    }

    #[test]
    fn square_degree_bounded_by_delta_squared() {
        let g = gen::gnp_capped(120, 0.1, 8, 11);
        let d = g.max_degree();
        assert!(square_max_degree(&g) <= d * d);
    }

    #[test]
    fn sparsity_of_star_center_is_zero() {
        // A star's square restricted to any neighborhood is a clique on the
        // d2-neighbors, but ∆² counts the *global* bound; the hub of K_{1,k}
        // has d2-degree k = ∆ and sees all C(k,2) edges, so its sparsity is
        // (C(∆²,2) - C(k,2))/∆² which is NOT zero for k < ∆². Use a clique:
        // there every node's d2-neighborhood is the full ∆² = (n-1)... only
        // when n-1 = ∆². Take K_4: ∆ = 3, ∆² = 9 ≠ 3. Sparsity is a scaled
        // quantity; we just check monotonicity: the clique neighborhood is
        // denser than the path neighborhood.
        let dense = gen::clique(8);
        let sparse = gen::path(8);
        let view_d = D2View::build(&dense);
        let view_s = D2View::build(&sparse);
        let (sq_d, sq_s) = (view_d.to_square(), view_s.to_square());
        let zeta_dense = sparsity(&view_d, &sq_d, 0);
        let zeta_sparse = sparsity(&view_s, &sq_s, 3);
        // Both are measured against their own ∆²; the clique is maximally
        // dense relative to its neighborhood size.
        assert!(zeta_dense >= 0.0 && zeta_sparse >= 0.0);
    }

    #[test]
    fn greedy_is_valid_and_within_bound() {
        let g = gen::gnp_capped(100, 0.08, 6, 3);
        let (colors, k) = greedy_square_coloring(&g);
        assert!(crate::verify::is_valid_d2_coloring(&g, &colors));
        let d = g.max_degree();
        assert!(k <= d * d + 1, "greedy used {k} > ∆²+1 = {}", d * d + 1);
    }

    #[test]
    fn greedy_on_empty_graph() {
        let g = gen::empty(4);
        let (colors, k) = greedy_square_coloring(&g);
        assert_eq!(k, 1);
        assert!(colors.iter().all(|&c| c == 0));
    }
}
