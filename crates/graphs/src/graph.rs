//! Compact CSR (compressed sparse row) undirected graph.

use std::fmt;

/// Index of a node inside a [`Graph`] (`0..n`).
///
/// Distinct from the node's CONGEST *identifier*: indices are a simulator
/// convenience, identifiers are the `O(log n)`-bit names the distributed
/// algorithms are allowed to see. The simulator assigns identifiers
/// separately (see the `congest` crate).
pub type NodeId = u32;

/// Errors from [`GraphBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    EndpointOutOfRange { u: NodeId, v: NodeId, n: usize },
    /// A self-loop `{u, u}` was added; CONGEST networks are simple graphs.
    SelfLoop { u: NodeId },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { u, v, n } => {
                write!(f, "edge ({u}, {v}) has an endpoint outside 0..{n}")
            }
            GraphError::SelfLoop { u } => write!(f, "self-loop at node {u}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable simple undirected graph in CSR form.
///
/// Neighbor lists are sorted and duplicate-free; this is the canonical
/// network topology handed to the CONGEST simulator.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    adj: Vec<NodeId>,
    /// Cached `∆`, computed once at build time. `max_degree()` sits inside
    /// per-node loops all over the codebase (sparsity, palette sizing), so
    /// it must not be an `O(n)` scan per call.
    max_degree: usize,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

impl Graph {
    /// Builds a graph from an explicit edge list. Convenience wrapper around
    /// [`GraphBuilder`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or an edge is a
    /// self-loop.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `v`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum degree `∆` of the graph (0 for the empty graph). Cached at
    /// build time; `O(1)`.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Assembles a graph directly from CSR parts: `offsets` of length
    /// `n + 1` and sorted, duplicate-free adjacency rows in `flat`.
    ///
    /// Crate-internal: used by [`GraphBuilder::build`] and by
    /// [`D2View::to_square`](crate::D2View::to_square), which both
    /// guarantee the invariants (sorted rows, symmetric adjacency, no
    /// self-loops).
    pub(crate) fn from_csr_parts(offsets: Vec<usize>, flat: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().expect("nonempty"), flat.len());
        let max_degree = offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        Graph {
            offsets,
            adj: flat,
            max_degree,
        }
    }

    /// Sorted slice of neighbors of `v`.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether `{u, v}` is an edge. `O(log degree)`.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The port of `v` on `u`'s interface list, if adjacent.
    ///
    /// CONGEST nodes address messages by port; the simulator uses this to
    /// translate between the two endpoints of an edge.
    #[must_use]
    pub fn port_of(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.neighbors(u).binary_search(&v).ok()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Number of nodes at distance exactly 1 or 2 from `v` (its degree in
    /// `G²`). Centralized helper used by the verifier and by experiments.
    #[must_use]
    pub fn d2_degree(&self, v: NodeId) -> usize {
        self.d2_neighbors(v).len()
    }

    /// Sorted distance-≤2 neighborhood of `v`, excluding `v` itself.
    ///
    /// Centralized (oracle) computation: the distributed algorithms are not
    /// permitted to call this — that is the whole difficulty of the paper.
    ///
    /// Allocates a fresh `Vec` per call. For repeated queries build a
    /// [`D2View`](crate::D2View) once (`O(Σ deg²)`, then allocation-free
    /// slices); for one-off queries under memory pressure reuse a scratch
    /// buffer via [`Graph::d2_neighbors_into`].
    #[must_use]
    pub fn d2_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(v) * 4);
        self.d2_neighbors_into(v, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Graph::d2_neighbors`]: clears `out` and
    /// fills it with the sorted distance-≤2 neighborhood of `v` (excluding
    /// `v`), reusing the buffer's capacity. The allocation-free fallback
    /// for callers that cannot afford a full [`D2View`](crate::D2View).
    pub fn d2_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for &u in self.neighbors(v) {
            out.push(u);
            out.extend_from_slice(self.neighbors(u));
        }
        out.sort_unstable();
        out.dedup();
        if let Ok(i) = out.binary_search(&v) {
            out.remove(i);
        }
    }

    /// Whether `u` and `v` are at distance ≤ 2 (and distinct).
    #[must_use]
    pub fn are_d2_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        if self.has_edge(u, v) {
            return true;
        }
        // Merge-intersect the sorted neighbor lists.
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Number of common neighbors of `u` and `v` in `G` (i.e. the number of
    /// 2-paths between them).
    #[must_use]
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let (mut i, mut j, mut c) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    c += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        c
    }

    /// Number of common *distance-2* neighbors of `u` and `v` — the quantity
    /// thresholded by the similarity graphs `H_{1-1/k}` of Section 2.3.
    #[must_use]
    pub fn common_d2_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        let a = self.d2_neighbors(u);
        let b = self.d2_neighbors(v);
        let (mut i, mut j, mut c) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    c += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        c
    }

    /// Whether the graph is connected (true for `n ≤ 1`).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n()
    }
}

/// Incremental builder for [`Graph`]. Duplicate edges are deduplicated.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    /// Normalized `(min, max)` endpoint pairs, kept so
    /// [`GraphBuilder::contains_edge`] is `O(1)` instead of a scan over the
    /// edge list (generators call it inside sampling loops).
    seen: std::collections::HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// New builder for a graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Records the undirected edge `{u, v}`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self.seen.insert((u.min(v), u.max(v)));
        self
    }

    /// Whether the edge `{u, v}` was already recorded. `O(1)` expected
    /// (hash lookup on the normalized endpoint pair).
    #[must_use]
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.seen.contains(&(u.min(v), u.max(v)))
    }

    /// Number of edges recorded so far (before deduplication).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into an immutable CSR [`Graph`].
    ///
    /// Two passes over the edge list — count degrees, then scatter into one
    /// flat array — followed by an in-place per-row sort/dedup compaction.
    /// No intermediate `Vec<Vec<NodeId>>` (the old path allocated one `Vec`
    /// per node, a per-build allocation spike on large graphs).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints or self-loops.
    pub fn build(&self) -> Result<Graph, GraphError> {
        csr_from_edge_list(self.n, &self.edges)
    }

    /// Builds a CSR [`Graph`] straight from an edge stream, bypassing the
    /// incremental builder entirely: no per-edge hash-set bookkeeping (the
    /// builder maintains one so [`GraphBuilder::contains_edge`] is `O(1)`)
    /// and no `Vec<Vec>` staging — just one flat `O(m)` edge buffer feeding
    /// the counting-pass CSR construction. Duplicate edges (in either
    /// orientation) are deduplicated during row compaction.
    ///
    /// This is the bulk-ingest path the `O(n + m)` generators use: for a
    /// ten-million-edge stream it does two linear passes plus a per-row
    /// sort, with peak memory bounded by the edge buffer + the CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints or self-loops.
    pub fn from_edge_stream<I>(n: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let edges: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        csr_from_edge_list(n, &edges)
    }
}

/// Shared CSR construction: validate, count degrees, scatter, per-row
/// sort/dedup compaction. `O(n + m log ∆)` time, `O(n + m)` space.
fn csr_from_edge_list(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
    for &(u, v) in edges {
        if u as usize >= n || v as usize >= n {
            return Err(GraphError::EndpointOutOfRange { u, v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { u });
        }
    }
    // Pass 1: degree counts (duplicates included; deduped below).
    let mut counts = vec![0usize; n];
    for &(u, v) in edges {
        counts[u as usize] += 1;
        counts[v as usize] += 1;
    }
    // Exclusive prefix sums = provisional row offsets.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in &counts {
        acc += c;
        offsets.push(acc);
    }
    // Pass 2: scatter both endpoint directions via per-row cursors.
    let mut flat = vec![0 as NodeId; acc];
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    for &(u, v) in edges {
        flat[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
        flat[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }
    // Sort each row, dedup by compacting the flat array in place.
    let mut write = 0usize;
    let mut final_offsets = Vec::with_capacity(n + 1);
    final_offsets.push(0usize);
    for v in 0..n {
        let (start, end) = (offsets[v], offsets[v + 1]);
        flat[start..end].sort_unstable();
        let mut prev: Option<NodeId> = None;
        for i in start..end {
            let x = flat[i];
            if prev != Some(x) {
                flat[write] = x;
                write += 1;
                prev = Some(x);
            }
        }
        final_offsets.push(write);
    }
    flat.truncate(write);
    Ok(Graph::from_csr_parts(final_offsets, flat))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loop_rejected() {
        assert_eq!(
            Graph::from_edges(3, &[(1, 1)]).unwrap_err(),
            GraphError::SelfLoop { u: 1 }
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(3, &[(0, 7)]).unwrap_err();
        assert_eq!(err, GraphError::EndpointOutOfRange { u: 0, v: 7, n: 3 });
    }

    #[test]
    fn error_display_is_informative() {
        let err = Graph::from_edges(3, &[(0, 7)]).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn ports_are_consistent() {
        let g = path4();
        assert_eq!(g.port_of(1, 0), Some(0));
        assert_eq!(g.port_of(1, 2), Some(1));
        assert_eq!(g.port_of(1, 3), None);
        assert_eq!(g.neighbors(1)[g.port_of(1, 2).unwrap()], 2);
    }

    #[test]
    fn d2_neighborhood_of_path() {
        let g = path4();
        assert_eq!(g.d2_neighbors(0), vec![1, 2]);
        assert_eq!(g.d2_neighbors(1), vec![0, 2, 3]);
        assert!(g.are_d2_neighbors(0, 2));
        assert!(!g.are_d2_neighbors(0, 3));
        assert!(!g.are_d2_neighbors(2, 2));
    }

    #[test]
    fn common_neighbor_counts() {
        // Two 2-paths between 0 and 3: via 1 and via 2.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(g.common_neighbors(0, 3), 2);
        assert_eq!(g.common_neighbors(0, 1), 0);
        assert_eq!(g.common_d2_neighbors(0, 3), 2); // 1 and 2
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn contains_edge_is_symmetric() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 1);
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn counting_pass_build_matches_expected_csr() {
        // Unsorted insertion order, duplicates in both orientations.
        let g = Graph::from_edges(5, &[(3, 1), (0, 3), (1, 3), (4, 0), (0, 4), (2, 0), (1, 0)])
            .unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[0, 1]);
        assert_eq!(g.neighbors(4), &[0]);
        assert_eq!(g.m(), 5);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn from_edge_stream_matches_builder_with_duplicates() {
        let edges = [(3, 1), (0, 3), (1, 3), (4, 0), (0, 4), (2, 0), (1, 0)];
        let via_builder = Graph::from_edges(5, &edges).unwrap();
        let via_stream = GraphBuilder::from_edge_stream(5, edges).unwrap();
        assert_eq!(via_builder, via_stream);
        assert_eq!(via_stream.m(), 5);
    }

    #[test]
    fn from_edge_stream_rejects_bad_edges() {
        assert_eq!(
            GraphBuilder::from_edge_stream(3, [(1, 1)]).unwrap_err(),
            GraphError::SelfLoop { u: 1 }
        );
        assert_eq!(
            GraphBuilder::from_edge_stream(3, [(0, 7)]).unwrap_err(),
            GraphError::EndpointOutOfRange { u: 0, v: 7, n: 3 }
        );
    }

    #[test]
    fn d2_neighbors_into_reuses_buffer() {
        let g = path4();
        let mut buf = Vec::new();
        g.d2_neighbors_into(1, &mut buf);
        assert_eq!(buf, vec![0, 2, 3]);
        g.d2_neighbors_into(0, &mut buf);
        assert_eq!(buf, vec![1, 2]);
        assert_eq!(buf, g.d2_neighbors(0));
    }

    #[test]
    fn connectivity() {
        assert!(path4().is_connected());
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(empty.is_connected());
        assert_eq!(empty.max_degree(), 0);
    }
}
