//! Centralized structural statistics used by the experiment reports:
//! degree distributions, d2-degree distributions, and the sparsity
//! spectrum of Definition 2.4 (which governs how much slack the initial
//! random phase creates — Proposition 2.5).

use crate::{square, D2View, Graph, NodeId};

/// Summary statistics of one distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Minimum value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Summarizes an iterator of values (0/0/0 for empty input).
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            count += 1;
        }
        if count == 0 {
            return Summary {
                min: 0.0,
                mean: 0.0,
                max: 0.0,
            };
        }
        Summary {
            min,
            mean: sum / count as f64,
            max,
        }
    }
}

/// Structural profile of a workload graph.
#[derive(Debug, Clone)]
pub struct GraphProfile {
    /// Nodes.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Maximum degree `∆`.
    pub delta: usize,
    /// Degree distribution.
    pub degree: Summary,
    /// d2-degree distribution (degree in `G²`).
    pub d2_degree: Summary,
    /// Sparsity `ζ(v)` distribution (Definition 2.4).
    pub sparsity: Summary,
}

/// Degree-only structural profile: everything [`profile`] reports that
/// does not require distance-2 information.
#[derive(Debug, Clone)]
pub struct DegreeProfile {
    /// Nodes.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Maximum degree `∆`.
    pub delta: usize,
    /// Degree distribution.
    pub degree: Summary,
}

/// Computes the degree-only profile in `O(n)` with no auxiliary
/// structures. [`profile`] builds a [`D2View`] and `G²` (`O(Σ deg²)`
/// time *and* memory), which is prohibitive at the `n = 10⁶` scale the
/// generators now reach; this is the variant the scaling harness uses to
/// sanity-check huge builds.
#[must_use]
pub fn degree_profile(g: &Graph) -> DegreeProfile {
    DegreeProfile {
        n: g.n(),
        m: g.m(),
        delta: g.max_degree(),
        degree: Summary::of((0..g.n() as NodeId).map(|v| g.degree(v) as f64)),
    }
}

/// Computes the full profile (builds one [`D2View`] and `G²`; intended for
/// analysis, not the hot path).
#[must_use]
pub fn profile(g: &Graph) -> GraphProfile {
    let view = D2View::build(g);
    let sq = view.to_square();
    GraphProfile {
        n: g.n(),
        m: g.m(),
        delta: g.max_degree(),
        degree: Summary::of((0..g.n() as NodeId).map(|v| g.degree(v) as f64)),
        d2_degree: Summary::of((0..g.n() as NodeId).map(|v| view.d2_degree(v) as f64)),
        sparsity: Summary::of((0..g.n() as NodeId).map(|v| square::sparsity(&view, &sq, v))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn summary_basics() {
        let s = Summary::of([1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max, 3.0);
        let empty = Summary::of(std::iter::empty());
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn degree_profile_matches_full_profile_degrees() {
        let g = gen::gnp_capped(120, 0.05, 6, 2);
        let full = profile(&g);
        let cheap = degree_profile(&g);
        assert_eq!(cheap.n, full.n);
        assert_eq!(cheap.m, full.m);
        assert_eq!(cheap.delta, full.delta);
        assert_eq!(cheap.degree, full.degree);
    }

    #[test]
    fn torus_profile_is_regular() {
        let g = gen::torus(6, 6);
        let p = profile(&g);
        assert_eq!(p.delta, 4);
        assert_eq!(p.degree.min, 4.0);
        assert_eq!(p.degree.max, 4.0);
        // Torus d2-degree: 4 + 8 = 12 for every node... (4 at distance 1,
        // 8 at distance 2 on the 4-regular torus).
        assert_eq!(p.d2_degree.min, p.d2_degree.max);
    }

    #[test]
    fn sparsity_is_bounded_and_uniform_on_vertex_transitive_graphs() {
        // ζ ranges over [0, (∆²−1)/2] (Def. 2.4); on a vertex-transitive
        // graph every node has the same value.
        let g = gen::torus(7, 7);
        let p = profile(&g);
        let cap = ((p.delta * p.delta - 1) as f64) / 2.0;
        assert!(p.sparsity.min >= 0.0 && p.sparsity.max <= cap);
        assert!((p.sparsity.max - p.sparsity.min).abs() < 1e-9);
    }
}
