//! Centralized verification of colorings.
//!
//! Every algorithm run in this repository ends with a pass through these
//! checks; the experiment harness refuses to report numbers for runs that
//! fail them.

use crate::{D2View, Graph, NodeId};

/// A single violation of the distance-2 constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct D2Violation {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint (at distance ≤ 2 from `u`).
    pub v: NodeId,
    /// The shared color.
    pub color: u32,
}

/// Checks that `colors` is a valid distance-2 coloring of `g`:
/// every pair at distance ≤ 2 has distinct colors and every node is colored
/// (`u32::MAX` denotes "uncolored" and always fails).
///
/// Builds a [`D2View`] internally; callers that verify repeatedly on the
/// same graph should build the view once and use
/// [`is_valid_d2_coloring_with`].
#[must_use]
pub fn is_valid_d2_coloring(g: &Graph, colors: &[u32]) -> bool {
    is_valid_d2_coloring_with(&D2View::build(g), colors)
}

/// [`is_valid_d2_coloring`] against a prebuilt [`D2View`].
#[must_use]
pub fn is_valid_d2_coloring_with(view: &D2View, colors: &[u32]) -> bool {
    first_d2_violation_with(view, colors).is_none() && colors.iter().all(|&c| c != u32::MAX)
}

/// Returns the first distance-2 violation, if any. Linear in `Σ_v deg²(v)`.
#[must_use]
pub fn first_d2_violation(g: &Graph, colors: &[u32]) -> Option<D2Violation> {
    first_d2_violation_with(&D2View::build(g), colors)
}

/// [`first_d2_violation`] against a prebuilt [`D2View`] — allocation-free.
#[must_use]
pub fn first_d2_violation_with(view: &D2View, colors: &[u32]) -> Option<D2Violation> {
    assert_eq!(colors.len(), view.n(), "coloring length must equal n");
    for v in 0..view.n() as NodeId {
        let cv = colors[v as usize];
        if cv == u32::MAX {
            continue;
        }
        for &u in view.d2_neighbors(v) {
            if u > v && colors[u as usize] == cv {
                return Some(D2Violation {
                    u: v,
                    v: u,
                    color: cv,
                });
            }
        }
    }
    None
}

/// Checks that `colors` is a valid *distance-1* (ordinary) coloring of `g`.
#[must_use]
pub fn is_valid_coloring(g: &Graph, colors: &[u32]) -> bool {
    colors.len() == g.n()
        && colors.iter().all(|&c| c != u32::MAX)
        && g.edges()
            .all(|(u, v)| colors[u as usize] != colors[v as usize])
}

/// Number of distinct colors used.
#[must_use]
pub fn num_colors(colors: &[u32]) -> usize {
    let mut v: Vec<u32> = colors.iter().copied().filter(|&c| c != u32::MAX).collect();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Largest color value used plus one (the palette-size certificate: the
/// paper's bounds are on the palette `[∆²]`, i.e. max color ≤ ∆²).
#[must_use]
pub fn palette_size(colors: &[u32]) -> usize {
    colors
        .iter()
        .copied()
        .filter(|&c| c != u32::MAX)
        .max()
        .map_or(0, |c| c as usize + 1)
}

/// Number of uncolored nodes (`u32::MAX` sentinels).
#[must_use]
pub fn uncolored_count(colors: &[u32]) -> usize {
    colors.iter().filter(|&&c| c == u32::MAX).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn detects_distance1_conflict() {
        let g = gen::path(3);
        let colors = vec![0, 0, 1];
        let v = first_d2_violation(&g, &colors).unwrap();
        assert_eq!((v.u, v.v, v.color), (0, 1, 0));
        assert!(!is_valid_d2_coloring(&g, &colors));
    }

    #[test]
    fn detects_distance2_conflict() {
        let g = gen::path(3);
        let colors = vec![0, 1, 0];
        assert!(is_valid_coloring(&g, &colors), "valid at distance 1");
        assert!(!is_valid_d2_coloring(&g, &colors), "invalid at distance 2");
    }

    #[test]
    fn accepts_valid_d2_coloring() {
        let g = gen::path(4);
        let colors = vec![0, 1, 2, 0];
        assert!(is_valid_d2_coloring(&g, &colors));
    }

    #[test]
    fn uncolored_nodes_fail_validation() {
        let g = gen::path(3);
        let colors = vec![0, 1, u32::MAX];
        assert!(!is_valid_d2_coloring(&g, &colors));
        assert_eq!(uncolored_count(&colors), 1);
        // But they do not count as conflicts.
        assert!(first_d2_violation(&g, &colors).is_none());
    }

    #[test]
    fn color_counting() {
        let colors = vec![3, 1, 3, u32::MAX, 0];
        assert_eq!(num_colors(&colors), 3);
        assert_eq!(palette_size(&colors), 4);
        assert_eq!(palette_size(&[u32::MAX]), 0);
    }

    #[test]
    #[should_panic(expected = "coloring length")]
    fn length_mismatch_panics() {
        let g = gen::path(3);
        let _ = first_d2_violation(&g, &[0, 1]);
    }
}
