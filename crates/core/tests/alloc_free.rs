//! The allocation-free round invariant, extended to the **similarity
//! exchange** (the congest-side twin, `crates/congest/tests/alloc_free.rs`,
//! covers the engines with a synthetic pump protocol; this binary covers
//! the real protocol whose memory behavior PR 5 rebuilt).
//!
//! With the streaming fold, a steady-state second-stage round performs no
//! heap allocation: arriving batches extend the pre-grown staged tag
//! buffer, the frontier merge sorts in place and bumps the fixed `k × k`
//! counter matrix, and the pump reads the node's own set through a cursor
//! into an inline [`IdBatch`] (whose capacity is clamped to the inline
//! cap — the clamp is load-bearing: an unclamped capacity would spill
//! `SmallIds` to the heap on every message in degenerate configurations).
//!
//! Each integration-test file is its own binary, so the counting global
//! allocator here cannot interfere with other suites.

use congest::{Inbox, NodeCtx, NodeRng, Outbox, Protocol, SimConfig, Status};
use d2core::rand::similarity::{ExactSimilarity, SimMsg, SimilarityState};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

static WARM_SNAPSHOT: AtomicU64 = AtomicU64::new(0);
static LATE_SNAPSHOT: AtomicU64 = AtomicU64::new(0);

/// Delegating wrapper: runs the production [`ExactSimilarity`] protocol
/// unchanged, snapshotting the allocation counter (from node 0, at the
/// top of the round body) inside the second-stage steady state.
struct Snapshotting {
    inner: ExactSimilarity,
    warm_round: u64,
    late_round: u64,
}

impl Protocol for Snapshotting {
    type State = SimilarityState;
    type Msg = SimMsg;

    fn init(&self, ctx: &NodeCtx, rng: &mut NodeRng) -> SimilarityState {
        self.inner.init(ctx, rng)
    }

    fn sync_period(&self) -> u64 {
        self.inner.sync_period()
    }

    fn round(
        &self,
        st: &mut SimilarityState,
        ctx: &NodeCtx,
        rng: &mut NodeRng,
        inbox: &Inbox<SimMsg>,
        out: &mut Outbox<SimMsg>,
    ) -> Status {
        if ctx.index == 0 {
            if ctx.round == self.warm_round {
                WARM_SNAPSHOT.store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            if ctx.round == self.late_round {
                LATE_SNAPSHOT.store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        self.inner.round(st, ctx, rng, inbox, out)
    }
}

/// One test function for both engines: the snapshot statics are shared,
/// so the engine runs must not interleave with other allocating tests.
///
/// `random_regular(400, 10)` keeps every node in the pipelined second
/// stage for ~20 rounds (d2 sets of ~110 ids at ~6 ids per message), so
/// rounds 12 and 19 sit deep inside the steady state: batches arriving,
/// frontier merges closing runs, counters bumping — and zero heap
/// traffic between the two snapshots on either engine.
#[test]
fn similarity_steady_state_rounds_do_not_allocate() {
    let g = graphs::gen::random_regular(400, 10, 3);
    let cfg = SimConfig::seeded(5);
    let proto = Snapshotting {
        inner: ExactSimilarity::new(cfg.bandwidth_bits(g.n())),
        warm_round: 12,
        late_round: 19,
    };
    let res = congest::run(&g, &proto, &cfg).expect("sequential run");
    assert!(
        res.metrics.rounds > 21,
        "workload too short to contain the measurement window: {} rounds",
        res.metrics.rounds
    );
    let warm = WARM_SNAPSHOT.load(Ordering::Relaxed);
    let late = LATE_SNAPSHOT.load(Ordering::Relaxed);
    assert!(warm > 0, "snapshots must have been taken");
    assert_eq!(
        late,
        warm,
        "steady-state similarity rounds allocated {} times (sequential engine)",
        late - warm
    );

    // Parallel engine: cross-shard cells grow over the first syncs, so
    // the warm snapshot moves a little later into the window.
    let proto = Snapshotting {
        inner: ExactSimilarity::new(cfg.bandwidth_bits(g.n())),
        warm_round: 14,
        late_round: 19,
    };
    let res = congest::run_parallel(&g, &proto, &cfg, 3).expect("parallel run");
    assert!(res.metrics.rounds > 21);
    let warm = WARM_SNAPSHOT.load(Ordering::Relaxed);
    let late = LATE_SNAPSHOT.load(Ordering::Relaxed);
    assert_eq!(
        late,
        warm,
        "steady-state similarity rounds allocated {} times (parallel engine)",
        late - warm
    );
}
