//! Exhaustive wire round-trips for every protocol message type.
//!
//! The netplane ships each pipeline's `Protocol::Msg` values between
//! shard processes, so every variant of every message enum must survive
//! `to_wire` → `from_wire` unchanged, and corrupt tag bytes must fail
//! with a structured [`WireError::BadTag`] naming the type.

use congest::netplane::{Wire, WireError};
use congest::SmallIds;
use d2core::baseline::RelayMsg;
use d2core::det::splitting::SplitMsg;
use d2core::det::DetMsg;
use d2core::rand::finish::FinMsg;
use d2core::rand::learn_palette::LpMsg;
use d2core::rand::reduce::ReduceMsg;
use d2core::rand::sampling::SampMsg;
use d2core::rand::similarity::{SimMsg, SimilarityKnowledge};
use d2core::TrialMsg;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(values: Vec<T>, what: &str) {
    for v in values {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).unwrap_or_else(|e| panic!("{what}: {v:?} failed: {e}"));
        assert_eq!(back, v, "{what} round-trip changed the value");
        // Every truncation of the encoding must fail, not mis-decode.
        for cut in 0..bytes.len() {
            assert!(
                T::from_wire(&bytes[..cut]).is_err(),
                "{what}: {v:?} decoded from a {cut}-byte truncation"
            );
        }
    }
}

fn rejects_bad_tag<T: Wire + std::fmt::Debug>(bad: u8, what: &'static str) {
    match T::from_wire(&[bad]) {
        Err(WireError::BadTag { what: w, tag }) => {
            assert_eq!(w, what);
            assert_eq!(tag, bad);
        }
        other => panic!("{what}: tag {bad} gave {other:?}, wanted BadTag"),
    }
}

#[test]
fn trial_msg_all_variants() {
    roundtrip(
        vec![
            TrialMsg::Try(0),
            TrialMsg::Try(u32::MAX),
            TrialMsg::Announce(17),
            TrialMsg::Verdict(true),
            TrialMsg::Verdict(false),
        ],
        "TrialMsg",
    );
    rejects_bad_tag::<TrialMsg>(3, "TrialMsg");
}

#[test]
fn det_msg_all_variants() {
    roundtrip(
        vec![
            DetMsg::Own(5),
            DetMsg::Batch(SmallIds::from_slice(&[])),
            DetMsg::Batch(SmallIds::from_slice(&[1, 2, 3, u32::MAX])),
            // Spills the inline capacity (16) into the heap representation.
            DetMsg::Batch(SmallIds::from_slice(&(0..40u32).collect::<Vec<_>>())),
            DetMsg::Recolor { old: 9, new: 2 },
            DetMsg::Fwd {
                old: 0,
                new: u32::MAX,
            },
        ],
        "DetMsg",
    );
    rejects_bad_tag::<DetMsg>(4, "DetMsg");
}

#[test]
fn split_msg_all_variants() {
    roundtrip(
        vec![
            SplitMsg::Turn,
            SplitMsg::Cond(0.0, -1.5),
            SplitMsg::Cond(f64::MAX, f64::MIN_POSITIVE),
            SplitMsg::Side(true),
            SplitMsg::Side(false),
        ],
        "SplitMsg",
    );
    rejects_bad_tag::<SplitMsg>(3, "SplitMsg");
}

#[test]
fn sim_msg_all_variants() {
    roundtrip(
        vec![
            SimMsg::InS,
            SimMsg::Batch(SmallIds::from_slice(&[7u64, u64::MAX])),
            SimMsg::End,
        ],
        "SimMsg",
    );
    rejects_bad_tag::<SimMsg>(3, "SimMsg");
}

#[test]
fn samp_msg_all_variants() {
    roundtrip(
        vec![
            SampMsg::Slot {
                slot: 3,
                r: u64::MAX,
                b: 0,
            },
            SampMsg::MinReply {
                slot: 0,
                value: 12345,
            },
            SampMsg::Demand,
        ],
        "SampMsg",
    );
    rejects_bad_tag::<SampMsg>(3, "SampMsg");
}

#[test]
fn reduce_msg_all_variants() {
    roundtrip(
        vec![
            ReduceMsg::Samp(SampMsg::Demand),
            ReduceMsg::StartQuery,
            ReduceMsg::Query { v: u64::MAX },
            ReduceMsg::Probe { v: 1, color: 2 },
            ReduceMsg::ProbeAck {
                adj_v: true,
                color_used: false,
            },
            ReduceMsg::ForwardQuery { v: 9, slot: 4 },
            ReduceMsg::RelayQuery { v: 0 },
            ReduceMsg::CheckD2 { v: 77 },
            ReduceMsg::AdjAck(true),
            ReduceMsg::Proposal(41),
            ReduceMsg::ColorOffer(u32::MAX),
            ReduceMsg::Trial(TrialMsg::Try(6)),
            // Recursive variant, including nested recursion.
            ReduceMsg::Both(
                Box::new(ReduceMsg::AdjAck(false)),
                Box::new(ReduceMsg::Both(
                    Box::new(ReduceMsg::StartQuery),
                    Box::new(ReduceMsg::Trial(TrialMsg::Verdict(true))),
                )),
            ),
        ],
        "ReduceMsg",
    );
    rejects_bad_tag::<ReduceMsg>(13, "ReduceMsg");
}

#[test]
fn lp_msg_all_variants() {
    roundtrip(
        vec![
            LpMsg::Live,
            LpMsg::LiveList(SmallIds::from_slice(&[1u64, 2, 3])),
            LpMsg::LiveEnd,
            LpMsg::Assign { i: 7 },
            LpMsg::Inform { v: 1, i: 2 },
            LpMsg::Inform2 { v: 3, i: 4 },
            LpMsg::Gossip { v: 5, color: 6 },
            LpMsg::Gossip2 { v: 7, color: 8 },
            LpMsg::ToHandler {
                v: 9,
                i: 10,
                color: 11,
            },
            LpMsg::ToHandler2 {
                v: u64::MAX,
                i: u32::MAX,
                color: 0,
            },
            LpMsg::Report {
                i: 2,
                missing: SmallIds::from_slice(&[4u32, 8, 15]),
            },
            LpMsg::ReportEnd { i: 2 },
            LpMsg::TQuery(SmallIds::from_slice(&[16u32, 23])),
            LpMsg::TQueryEnd,
            LpMsg::TReply(SmallIds::from_slice(&[42u32])),
            LpMsg::TReplyEnd,
        ],
        "LpMsg",
    );
    rejects_bad_tag::<LpMsg>(16, "LpMsg");
}

#[test]
fn fin_msg_all_variants() {
    roundtrip(
        vec![FinMsg::Trial(TrialMsg::Announce(3)), FinMsg::Fwd(u32::MAX)],
        "FinMsg",
    );
    rejects_bad_tag::<FinMsg>(2, "FinMsg");
}

#[test]
fn relay_msg_all_variants() {
    roundtrip(
        vec![RelayMsg::Trial(TrialMsg::Verdict(false)), RelayMsg::Fwd(0)],
        "RelayMsg",
    );
    rejects_bad_tag::<RelayMsg>(2, "RelayMsg");
}

#[test]
fn similarity_knowledge_roundtrips() {
    let mut k = SimilarityKnowledge::empty(70); // two words per row
    k.set_pair(0, 1, true, false);
    k.set_pair(3, 68, false, true);
    k.set_pair(70, 2, true, true); // involves the self row (k - 1)
    roundtrip(
        vec![SimilarityKnowledge::empty(0), k],
        "SimilarityKnowledge",
    );
}

#[test]
fn similarity_knowledge_rejects_inconsistent_lengths() {
    // Encode k = 70 knowledge but claim k = 4: flag-matrix lengths no
    // longer match k·⌈k/64⌉ and decoding must fail structurally.
    let good = SimilarityKnowledge::empty(70);
    let mut bytes = good.to_wire();
    bytes[..8].copy_from_slice(&4u64.to_le_bytes());
    assert!(matches!(
        SimilarityKnowledge::from_wire(&bytes),
        Err(WireError::BadLength { .. })
    ));
}

/// The unit message (used by wake-only protocols) is zero bytes.
#[test]
fn unit_message_is_zero_bytes() {
    assert!(().to_wire().is_empty());
    <()>::from_wire(&[]).unwrap();
    assert!(<()>::from_wire(&[0]).is_err());
}
