//! Tunable algorithm constants.
//!
//! The paper fixes constants (`c₀ … c₁₁`, the `1/(6000φ)` query rate, the
//! `τ/(8φ)` activation rate, …) for proof convenience; at laptop scale they
//! make the randomized algorithm idle for astronomically many rounds. Every
//! constant is therefore a field here, with two profiles:
//!
//! * [`Params::paper`] — the constants as printed in the paper. Useful to
//!   inspect the literal protocol; impractical to run beyond toy sizes.
//! * [`Params::practical`] — calibrated values preserving every structural
//!   property the proofs rely on (activation is still `Θ(τ/φ)`, queries are
//!   still `Θ(1/φ)` per 2-path, `ρ` still scales as `(φ/τ)² log n`), but
//!   with constants that let progress happen at `n ≤ 10⁵`.
//!
//! EXPERIMENTS.md records which profile each experiment used.

/// Algorithm constants. See module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// `c₀`: the initial phase runs `c₀ · log n` random color trials.
    pub c0_initial_rounds: f64,
    /// `c₁`: the main loop starts at leeway target `τ = c₁ · ∆²`.
    pub c1_leeway_frac: f64,
    /// `c₂`: threshold `∆² < c₂ log n` below which the deterministic
    /// algorithm is used (Step 0), and the final-phase leeway bound.
    pub c2_logn_coeff: f64,
    /// `c₃`: `Reduce(φ, τ)` runs `ρ = c₃ (φ/τ)² log n` phases.
    pub c3_rho_coeff: f64,
    /// `c₁₀`: similarity sampling probability `p = c₁₀ log n / ∆²`.
    pub c10_sample_coeff: f64,
    /// Query rate denominator: the paper sends a query across each 2-path
    /// with probability `1/(query_denom · φ)` (paper: 6000).
    pub query_denom: f64,
    /// Activation denominator: a live node is active in a `Reduce` phase
    /// with probability `τ/(act_denom · φ)` (paper: 8).
    pub act_denom: f64,
    /// When `∆² ≤ exact_similarity_threshold`, similarity graphs are built
    /// from exact d2-neighborhood exchange instead of sampling (the paper
    /// does this for `∆² = O(log n)`).
    pub exact_similarity_threshold: usize,
    /// `LearnPalette`: number of color blocks `Z` as a fraction of `∆`
    /// (paper: `Z = ∆`).
    pub learn_blocks_per_delta: f64,
    /// `LearnPalette`: copies each colored node sends per live d2-neighbor
    /// (paper: `Θ(∆²/P · log n)`), as a multiplier on `log n`.
    pub learn_gossip_coeff: f64,
    /// `LearnPalette`: handler fan-out `P` as a multiplier on
    /// `∆ · sqrt(∆ log n)` (paper sets `P = ∆ sqrt(∆ log n)`).
    pub learn_fanout_coeff: f64,
    /// Splitting: a vertex is constrained when `deg_i(v) ≥
    /// split_threshold_coeff · ln n / λ²` (paper: 12).
    pub split_threshold_coeff: f64,
    /// Floor on the splitting deviation λ. The paper's
    /// `λ = ε/(10 log ∆)` is vanishing; at laptop scale a floor keeps the
    /// constraint threshold within reach (paper: effectively none).
    pub lambda_floor: f64,
    /// Splitting recursion (Lemma 3.3): stop when the part degree bound
    /// drops below `split_stop_coeff · ε⁻² · log³ n` (paper: 1200).
    pub split_stop_coeff: f64,
    /// Hard cap on `ρ` per `Reduce` call, to keep worst-case runs bounded
    /// at small scale (progress is guaranteed by the final phase anyway).
    pub rho_cap: u64,
    /// [`congest::Protocol::sync_period`] for the pipelined list exchanges
    /// (similarity and `LearnPalette`): a communication round carries `p`
    /// classic rounds' worth of list traffic in one message and the
    /// engines synchronize once per `p` rounds. `1` is the paper's
    /// round-per-message schedule; any value is bit-identical across
    /// engines (the round complexity accounting is unchanged — silent
    /// rounds still tick the clock).
    pub list_sync_period: u64,
}

impl Params {
    /// The constants exactly as printed in the paper.
    #[must_use]
    pub fn paper() -> Self {
        let c1 = 1.0 / (402.0 * (3.0f64).exp());
        Params {
            c0_initial_rounds: 3.0 * std::f64::consts::E / c1,
            c1_leeway_frac: c1,
            c2_logn_coeff: 18.0,
            c3_rho_coeff: 32.0 / 1.2e-6, // c₃ = 32/c₇ with c₇ = 1/1 200 000
            c10_sample_coeff: 72.0 * 5.0,
            query_denom: 6000.0,
            act_denom: 8.0,
            exact_similarity_threshold: 64,
            learn_blocks_per_delta: 1.0,
            learn_gossip_coeff: 1.0,
            learn_fanout_coeff: 1.0,
            split_threshold_coeff: 12.0,
            lambda_floor: 1e-3,
            split_stop_coeff: 1200.0,
            rho_cap: u64::MAX,
            list_sync_period: 1,
        }
    }

    /// Calibrated constants for laptop-scale experiments. Structure is
    /// unchanged; only multiplicative constants differ.
    #[must_use]
    pub fn practical() -> Self {
        Params {
            c0_initial_rounds: 6.0,
            c1_leeway_frac: 0.25,
            c2_logn_coeff: 2.0,
            c3_rho_coeff: 3.0,
            c10_sample_coeff: 6.0,
            query_denom: 1.0,
            act_denom: 2.0,
            exact_similarity_threshold: 4096,
            learn_blocks_per_delta: 1.0,
            learn_gossip_coeff: 3.0,
            learn_fanout_coeff: 1.0,
            split_threshold_coeff: 0.25,
            lambda_floor: 0.3,
            split_stop_coeff: 1.0,
            rho_cap: 400,
            list_sync_period: 4,
        }
    }

    /// `c₀ log n`, the number of initial random-trial cycles.
    #[must_use]
    pub fn initial_trials(&self, n: usize) -> u64 {
        ((self.c0_initial_rounds * (n.max(2) as f64).ln()).ceil() as u64).max(1)
    }

    /// `c₂ log n`, the small-degree/final-phase threshold.
    #[must_use]
    pub fn c2_log_n(&self, n: usize) -> f64 {
        self.c2_logn_coeff * (n.max(2) as f64).ln()
    }

    /// `ρ = c₃ (φ/τ)² log n`, capped by `rho_cap`.
    #[must_use]
    pub fn rho(&self, phi: f64, tau: f64, n: usize) -> u64 {
        let raw = self.c3_rho_coeff * (phi / tau).powi(2) * (n.max(2) as f64).ln();
        (raw.ceil() as u64).clamp(1, self.rho_cap)
    }

    /// Similarity sampling probability `p = min(1, c₁₀ log n / ∆²)`.
    #[must_use]
    pub fn sample_prob(&self, n: usize, delta_sq: usize) -> f64 {
        (self.c10_sample_coeff * (n.max(2) as f64).ln() / (delta_sq.max(1) as f64)).min(1.0)
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::practical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_but_share_structure() {
        let p = Params::paper();
        let q = Params::practical();
        assert!(p.query_denom > q.query_denom);
        assert!(p.c3_rho_coeff > q.c3_rho_coeff);
        assert_eq!(Params::default(), q);
    }

    #[test]
    fn derived_quantities_scale() {
        let p = Params::practical();
        assert!(p.initial_trials(1000) > p.initial_trials(10));
        assert!(p.rho(100.0, 50.0, 1000) >= p.rho(100.0, 100.0, 1000));
        let prob = p.sample_prob(1000, 100);
        assert!((0.0..=1.0).contains(&prob));
        assert_eq!(p.sample_prob(1000, 1), 1.0, "tiny ∆² clamps to 1");
    }

    #[test]
    fn rho_respects_cap() {
        let p = Params::practical();
        assert!(p.rho(1e6, 1.0, 100_000) <= p.rho_cap);
        assert!(p.rho(1.0, 1e6, 2) >= 1);
    }
}
