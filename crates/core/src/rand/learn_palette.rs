//! `LearnPalette` (§2.6): live nodes learn their exact remaining palette.
//!
//! A single live node cannot gather the `∆²` colors of its d2-neighborhood
//! through `O(log n)`-bit pipes; instead the *complement* is assembled
//! cooperatively:
//!
//! 1. every node learns the identifiers of its **live** d2-neighbors by a
//!    one-hop announce + relayed lists (paper step 2);
//! 2. each live `v` appoints a **handler** per color block `Bᵢ`
//!    (`Z = ∆` blocks) among its `H`-neighbors (steps 3–4); handlers
//!    *inform* a spray of random d2-neighbors that they handle `(v, i)`;
//! 3. every **colored** node gossips its color along random 2-paths, once
//!    per live d2-neighbor; a gossip copy landing on an informed node is
//!    relayed to the handler (step 5, meet-in-the-middle);
//! 4. handlers report the colors *missing* from their block
//!    (`T_vⁱ = Bᵢ \ Cᵢ`, step 6);
//! 5. `v` cross-checks the union `T_v` with its immediate neighbors, who
//!    filter out every color actually used at distance ≤ 2 from `v`
//!    (step 7) — making the final `T'_v` **exactly** the free palette,
//!    regardless of how much gossip was dropped. Gossip quality only
//!    determines `|T_v|`, i.e. speed (Lemma 2.15: `O(log n)` w.h.p.).
//!
//! Substitution (DESIGN.md §4): handlers are chosen round-robin among `v`'s
//! *immediate* `H`-neighbors instead of uniformly random 2-hop
//! `H`-neighbors — for solid nodes almost all neighbors are `H`-neighbors
//! (Lemma 2.6), assignment/report routing collapses to one hop, and the
//! exactness guarantee is untouched (it rests on step 7 alone).

use super::similarity::SimilarityKnowledge;
use crate::{Params, UNCOLORED};
use congest::netplane::{Reader, Wire, WireError};
use congest::{
    BitCost, Inbox, Message, NodeCtx, NodeRng, Outbox, Port, Protocol, SmallIds, Status, Wake,
};
use rand::prelude::*;
use std::collections::HashMap;

/// Inline-first identifier batch for the live-list relay (see
/// [`crate::rand::similarity::IdBatch`] for the capacity argument).
pub type IdBatch = SmallIds<u64, 32>;

/// Inline-first color batch for reports, queries, and replies.
pub type ColorBatch = SmallIds<u32, 32>;

/// Messages of `LearnPalette`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpMsg {
    /// "I am live" (round 0).
    Live,
    /// Batch of live-neighbor identifiers (relay of step 2).
    LiveList(IdBatch),
    /// Live-list transmission complete.
    LiveEnd,
    /// "You handle block `i` of my palette."
    Assign {
        /// Block index.
        i: u32,
    },
    /// Handler spray, first hop.
    Inform {
        /// The live node.
        v: u64,
        /// Block index.
        i: u32,
    },
    /// Handler spray, second hop.
    Inform2 {
        /// The live node.
        v: u64,
        /// Block index.
        i: u32,
    },
    /// Color gossip, first hop.
    Gossip {
        /// The live node this gossip is for.
        v: u64,
        /// The sender's color.
        color: u32,
    },
    /// Color gossip, second hop.
    Gossip2 {
        /// The live node this gossip is for.
        v: u64,
        /// The sender's color.
        color: u32,
    },
    /// Gossip captured by an informed node, en route to the handler.
    ToHandler {
        /// The live node.
        v: u64,
        /// Block index.
        i: u32,
        /// The gossiped color.
        color: u32,
    },
    /// Final hop to the handler.
    ToHandler2 {
        /// The live node.
        v: u64,
        /// Block index.
        i: u32,
        /// The gossiped color.
        color: u32,
    },
    /// Handler's report: colors of block `i` it did **not** hear.
    Report {
        /// Block index.
        i: u32,
        /// Missing colors (batch).
        missing: ColorBatch,
    },
    /// Report for block `i` complete.
    ReportEnd {
        /// Block index.
        i: u32,
    },
    /// Step 7: batch of candidate-missing colors.
    TQuery(ColorBatch),
    /// Step 7: candidate transmission complete.
    TQueryEnd,
    /// Step 7: which of the candidates the replier sees in use.
    TReply(ColorBatch),
    /// Step 7: reply complete.
    TReplyEnd,
}

impl Message for LpMsg {
    fn bits(&self) -> u64 {
        let tag = BitCost::tag(15);
        match self {
            LpMsg::Live | LpMsg::LiveEnd | LpMsg::TQueryEnd | LpMsg::TReplyEnd => tag,
            LpMsg::LiveList(ids) => tag + 8 + ids.iter().map(|&x| BitCost::uint(x)).sum::<u64>(),
            LpMsg::Assign { i } | LpMsg::ReportEnd { i } => tag + BitCost::uint(u64::from(*i)),
            LpMsg::Inform { v, i } | LpMsg::Inform2 { v, i } => {
                tag + BitCost::uint(*v) + BitCost::uint(u64::from(*i))
            }
            LpMsg::Gossip { v, color } | LpMsg::Gossip2 { v, color } => {
                tag + BitCost::uint(*v) + BitCost::uint(u64::from(*color))
            }
            LpMsg::ToHandler { v, i, color } | LpMsg::ToHandler2 { v, i, color } => {
                tag + BitCost::uint(*v)
                    + BitCost::uint(u64::from(*i))
                    + BitCost::uint(u64::from(*color))
            }
            LpMsg::Report { i, missing } => {
                tag + BitCost::uint(u64::from(*i))
                    + 8
                    + missing
                        .iter()
                        .map(|&c| BitCost::uint(u64::from(c)))
                        .sum::<u64>()
            }
            LpMsg::TQuery(cs) | LpMsg::TReply(cs) => {
                tag + 8 + cs.iter().map(|&c| BitCost::uint(u64::from(c))).sum::<u64>()
            }
        }
    }
}

impl Wire for LpMsg {
    fn put(&self, buf: &mut Vec<u8>) {
        match self {
            LpMsg::Live => buf.push(0),
            LpMsg::LiveList(ids) => {
                buf.push(1);
                ids.put(buf);
            }
            LpMsg::LiveEnd => buf.push(2),
            LpMsg::Assign { i } => {
                buf.push(3);
                i.put(buf);
            }
            LpMsg::Inform { v, i } => {
                buf.push(4);
                v.put(buf);
                i.put(buf);
            }
            LpMsg::Inform2 { v, i } => {
                buf.push(5);
                v.put(buf);
                i.put(buf);
            }
            LpMsg::Gossip { v, color } => {
                buf.push(6);
                v.put(buf);
                color.put(buf);
            }
            LpMsg::Gossip2 { v, color } => {
                buf.push(7);
                v.put(buf);
                color.put(buf);
            }
            LpMsg::ToHandler { v, i, color } => {
                buf.push(8);
                v.put(buf);
                i.put(buf);
                color.put(buf);
            }
            LpMsg::ToHandler2 { v, i, color } => {
                buf.push(9);
                v.put(buf);
                i.put(buf);
                color.put(buf);
            }
            LpMsg::Report { i, missing } => {
                buf.push(10);
                i.put(buf);
                missing.put(buf);
            }
            LpMsg::ReportEnd { i } => {
                buf.push(11);
                i.put(buf);
            }
            LpMsg::TQuery(cs) => {
                buf.push(12);
                cs.put(buf);
            }
            LpMsg::TQueryEnd => buf.push(13),
            LpMsg::TReply(cs) => {
                buf.push(14);
                cs.put(buf);
            }
            LpMsg::TReplyEnd => buf.push(15),
        }
    }

    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::take(r)? {
            0 => LpMsg::Live,
            1 => LpMsg::LiveList(IdBatch::take(r)?),
            2 => LpMsg::LiveEnd,
            3 => LpMsg::Assign { i: u32::take(r)? },
            4 => LpMsg::Inform {
                v: u64::take(r)?,
                i: u32::take(r)?,
            },
            5 => LpMsg::Inform2 {
                v: u64::take(r)?,
                i: u32::take(r)?,
            },
            6 => LpMsg::Gossip {
                v: u64::take(r)?,
                color: u32::take(r)?,
            },
            7 => LpMsg::Gossip2 {
                v: u64::take(r)?,
                color: u32::take(r)?,
            },
            8 => LpMsg::ToHandler {
                v: u64::take(r)?,
                i: u32::take(r)?,
                color: u32::take(r)?,
            },
            9 => LpMsg::ToHandler2 {
                v: u64::take(r)?,
                i: u32::take(r)?,
                color: u32::take(r)?,
            },
            10 => LpMsg::Report {
                i: u32::take(r)?,
                missing: ColorBatch::take(r)?,
            },
            11 => LpMsg::ReportEnd { i: u32::take(r)? },
            12 => LpMsg::TQuery(ColorBatch::take(r)?),
            13 => LpMsg::TQueryEnd,
            14 => LpMsg::TReply(ColorBatch::take(r)?),
            15 => LpMsg::TReplyEnd,
            tag => return Err(WireError::BadTag { what: "LpMsg", tag }),
        })
    }
}

/// The `LearnPalette` protocol.
#[derive(Debug)]
pub struct LearnPalette {
    /// Palette size (`∆_c + 1`).
    pub palette: u32,
    /// Number of color blocks `Z`.
    pub z_blocks: u32,
    knowledge: Vec<(u32, Vec<u32>)>,
    sim: std::sync::Arc<Vec<SimilarityKnowledge>>,
    w_live: u64,
    w_assign: u64,
    w_inform: u64,
    w_gossip: u64,
    batch: usize,
    period: u64,
}

impl LearnPalette {
    /// Builds the protocol from the pipeline knowledge and similarity
    /// graphs.
    #[must_use]
    pub fn new(
        params: &Params,
        g: &graphs::Graph,
        palette: u32,
        budget: u64,
        knowledge: Vec<(u32, Vec<u32>)>,
        sim: std::sync::Arc<Vec<SimilarityKnowledge>>,
    ) -> Self {
        let n = g.n().max(2);
        let delta = g.max_degree().max(1);
        let ln_n = (n as f64).ln();
        let period = params.list_sync_period.max(1);
        let z_blocks = ((delta as f64 * params.learn_blocks_per_delta).ceil() as u32).max(1);
        // Windows are measured in *communication* rounds (`sync_period`
        // slots); the batch capacity reflects the aggregated per-message
        // budget `p·B`, so the list phases keep the same simulator-round
        // footprint while moving p x fewer messages.
        let batch = ((budget.saturating_mul(period).saturating_sub(16)) / graphs::id_bits(n).max(1))
            .max(1) as usize;
        let w_live = (delta as u64).div_ceil(batch as u64) + 3;
        let w_assign = u64::from(z_blocks) + 1;
        let w_inform =
            ((params.learn_fanout_coeff * (delta as f64 * ln_n).sqrt()).ceil() as u64).max(2) + 2;
        let w_gossip = ((params.learn_gossip_coeff * ln_n * (1.0 + (ln_n / delta as f64).sqrt()))
            .ceil() as u64)
            .max(4)
            + 4;
        LearnPalette {
            palette,
            z_blocks,
            knowledge,
            sim,
            w_live,
            w_assign,
            w_inform,
            w_gossip,
            batch,
            period,
        }
    }

    fn block_of(&self, color: u32) -> u32 {
        let size = self.palette.div_ceil(self.z_blocks).max(1);
        (color / size).min(self.z_blocks - 1)
    }

    fn block_colors(&self, i: u32) -> std::ops::Range<u32> {
        let size = self.palette.div_ceil(self.z_blocks).max(1);
        let lo = (i * size).min(self.palette);
        let hi = ((i + 1) * size).min(self.palette);
        lo..hi
    }
}

/// Step-7 progress of the node's own candidate pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    NotStarted,
    SendingBatches,
    SendingEnd,
    AwaitingReplies,
    Complete,
}

/// Per-node state.
#[derive(Debug, Clone)]
pub struct LpState {
    /// Own color (unchanged by this protocol).
    pub color: u32,
    nbr_colors: Vec<u32>,
    /// Live d2-neighbor identifiers (learned in step 2).
    pub live_d2: Vec<u64>,
    /// As live node: the exact free palette (valid at protocol end).
    pub free_palette: Vec<u32>,
    /// As live node: |T_v| — the candidate set size of Lemma 2.15.
    pub t_v_size: usize,
    // step 2 plumbing
    live_send: Vec<u64>,
    live_sent_end: bool,
    // handler side
    handled: HashMap<(u64, u32), (Port, Vec<u32>)>,
    informs_to_spray: Vec<(u64, u32)>,
    inform_ptr: HashMap<(u64, u32), Port>,
    // gossip relays
    gossip_queue: Vec<(u64, u32)>,
    relay1: Vec<(u64, u32)>,
    relay2: Vec<(u64, u32)>,
    capture_queue: Vec<(Port, LpMsg)>,
    // reports
    report_queue: Vec<(Port, u32, Vec<u32>, bool)>,
    reports_seen: u32,
    t_candidates: Vec<u32>,
    // step 7 — own pass
    pass: Pass,
    t7_send: Vec<u32>,
    t7_reply_end: Vec<bool>,
    t7_used: Vec<u32>,
    // step 7 — serving others
    t7_reply_queues: Vec<Vec<u32>>,
    t7_pending_end: Vec<bool>,
    my_handler_port: Vec<Port>,
    /// Per-round used-port scratch, recycled across rounds.
    used: Vec<bool>,
}

impl Protocol for LearnPalette {
    type State = LpState;
    type Msg = LpMsg;

    fn init(&self, ctx: &NodeCtx, _rng: &mut NodeRng) -> LpState {
        let (color, nbr_colors) = self.knowledge[ctx.index as usize].clone();
        let degree = ctx.degree();
        LpState {
            color,
            nbr_colors,
            live_d2: Vec::new(),
            free_palette: Vec::new(),
            t_v_size: 0,
            live_send: Vec::new(),
            live_sent_end: false,
            handled: HashMap::new(),
            informs_to_spray: Vec::new(),
            inform_ptr: HashMap::new(),
            gossip_queue: Vec::new(),
            relay1: Vec::new(),
            relay2: Vec::new(),
            capture_queue: Vec::new(),
            report_queue: Vec::new(),
            reports_seen: 0,
            t_candidates: Vec::new(),
            pass: Pass::NotStarted,
            t7_send: Vec::new(),
            t7_reply_end: vec![false; degree],
            t7_used: Vec::new(),
            t7_reply_queues: vec![Vec::new(); degree],
            t7_pending_end: vec![false; degree],
            my_handler_port: Vec::new(),
            used: Vec::new(),
        }
    }

    fn sync_period(&self) -> u64 {
        self.period
    }

    #[allow(clippy::too_many_lines)]
    fn round(
        &self,
        st: &mut LpState,
        ctx: &NodeCtx,
        rng: &mut NodeRng,
        inbox: &Inbox<LpMsg>,
        out: &mut Outbox<LpMsg>,
    ) -> Status {
        let degree = ctx.degree();
        let live = st.color == UNCOLORED;
        let sim = &self.sim[ctx.index as usize];
        let b_live = self.w_live;
        let b_assign = b_live + self.w_assign;
        let b_inform = b_assign + self.w_inform;
        let b_gossip = b_inform + self.w_gossip;

        // ---- Fold arrivals (every round: messages sent at a
        // communication round land on the following, possibly silent,
        // round).
        for (p, m) in inbox.iter() {
            let p = *p;
            match m {
                LpMsg::Live => {
                    let id = ctx.neighbor_idents()[p as usize];
                    st.live_d2.push(id);
                    st.live_send.push(id);
                }
                LpMsg::LiveList(ids) => st.live_d2.extend_from_slice(ids.as_slice()),
                LpMsg::LiveEnd => {}
                LpMsg::Assign { i } => {
                    let vid = ctx.neighbor_idents()[p as usize];
                    st.handled.insert((vid, *i), (p, Vec::new()));
                    st.informs_to_spray.push((vid, *i));
                }
                LpMsg::Inform { v, i } => st.relay1.push((*v, *i)),
                LpMsg::Inform2 { v, i } => {
                    st.inform_ptr.insert((*v, *i), p);
                }
                LpMsg::Gossip { v, color } => st.relay2.push((*v, *color)),
                LpMsg::Gossip2 { v, color } => {
                    let i = self.block_of(*color);
                    if let Some(&ptr) = st.inform_ptr.get(&(*v, i)) {
                        st.capture_queue.push((
                            ptr,
                            LpMsg::ToHandler {
                                v: *v,
                                i,
                                color: *color,
                            },
                        ));
                    } else if let Some(entry) = st.handled.get_mut(&(*v, i)) {
                        entry.1.push(*color);
                    }
                }
                LpMsg::ToHandler { v, i, color } => {
                    if let Some(entry) = st.handled.get_mut(&(*v, *i)) {
                        entry.1.push(*color);
                    } else if let Some(&ptr) = st.inform_ptr.get(&(*v, *i)) {
                        st.capture_queue.push((
                            ptr,
                            LpMsg::ToHandler2 {
                                v: *v,
                                i: *i,
                                color: *color,
                            },
                        ));
                    }
                }
                LpMsg::ToHandler2 { v, i, color } => {
                    if let Some(entry) = st.handled.get_mut(&(*v, *i)) {
                        entry.1.push(*color);
                    }
                }
                LpMsg::Report { missing, .. } => {
                    st.t_candidates.extend_from_slice(missing.as_slice());
                }
                LpMsg::ReportEnd { .. } => st.reports_seen += 1,
                LpMsg::TQuery(cs) => {
                    let used: Vec<u32> = cs
                        .iter()
                        .copied()
                        .filter(|&c| c == st.color || st.nbr_colors.contains(&c))
                        .collect();
                    st.t7_reply_queues[p as usize].extend(used);
                }
                LpMsg::TQueryEnd => st.t7_pending_end[p as usize] = true,
                LpMsg::TReply(cs) => st.t7_used.extend_from_slice(cs.as_slice()),
                LpMsg::TReplyEnd => st.t7_reply_end[p as usize] = true,
            }
        }

        // Silent rounds end here: all sending (and the window clock)
        // advances on communication rounds only.
        if !ctx.round.is_multiple_of(self.period) {
            return Status::Running;
        }
        let r = ctx.round / self.period;
        // ======== Step 2: live announcements and relayed lists.
        if r == 0 {
            if live {
                for p in 0..degree as Port {
                    out.send(p, LpMsg::Live);
                }
            }
            return Status::Running;
        }
        if r < b_live {
            if r >= 2 && !st.live_sent_end {
                if st.live_send.is_empty() {
                    for p in 0..degree as Port {
                        out.send(p, LpMsg::LiveEnd);
                    }
                    st.live_sent_end = true;
                } else {
                    let take = self.batch.min(st.live_send.len());
                    let batch = IdBatch::from_slice(&st.live_send[..take]);
                    st.live_send.drain(..take);
                    // Clone for all ports but the last; the final send
                    // moves the batch (inline clones are memcpys).
                    for p in 0..degree.saturating_sub(1) as Port {
                        out.send(p, LpMsg::LiveList(batch.clone()));
                    }
                    if degree > 0 {
                        out.send(degree as Port - 1, LpMsg::LiveList(batch));
                    }
                }
            }
            return Status::Running;
        }
        if r == b_live {
            st.live_d2.sort_unstable();
            st.live_d2.dedup();
            if let Ok(i) = st.live_d2.binary_search(&ctx.ident) {
                st.live_d2.remove(i);
            }
            if live && degree > 0 {
                let h_ports: Vec<Port> = (0..degree as Port)
                    .filter(|&p| sim.h_with_self(p))
                    .collect();
                let pool: Vec<Port> = if h_ports.is_empty() {
                    (0..degree as Port).collect()
                } else {
                    h_ports
                };
                st.my_handler_port = (0..self.z_blocks)
                    .map(|i| pool[i as usize % pool.len()])
                    .collect();
            }
            if !live {
                let copies = 3usize;
                for &vid in &st.live_d2.clone() {
                    for _ in 0..copies {
                        st.gossip_queue.push((vid, st.color));
                    }
                }
            }
            return Status::Running;
        }
        // ======== Steps 3–4: handler assignment, inform spray.
        if r < b_assign {
            let i = (r - b_live - 1) as u32;
            if live && i < self.z_blocks && degree > 0 {
                out.send(st.my_handler_port[i as usize], LpMsg::Assign { i });
            }
            return Status::Running;
        }
        if r < b_inform {
            st.used.clear();
            st.used.resize(degree, false);
            for (vid, i) in std::mem::take(&mut st.relay1) {
                if degree > 0 {
                    let p = rng.gen_range(0..degree);
                    if !st.used[p] {
                        st.used[p] = true;
                        out.send(p as Port, LpMsg::Inform2 { v: vid, i });
                    }
                }
            }
            if !st.informs_to_spray.is_empty() && degree > 0 {
                for k in 0..degree {
                    let (vid, i) = st.informs_to_spray[k % st.informs_to_spray.len()];
                    let p = rng.gen_range(0..degree);
                    if !st.used[p] {
                        st.used[p] = true;
                        out.send(p as Port, LpMsg::Inform { v: vid, i });
                    }
                }
            }
            return Status::Running;
        }
        // ======== Step 5: gossip window.
        if r < b_gossip {
            st.used.clear();
            st.used.resize(degree, false);
            let captures = std::mem::take(&mut st.capture_queue);
            for (ptr, msg) in captures {
                if st.used[ptr as usize] {
                    st.capture_queue.push((ptr, msg));
                } else {
                    st.used[ptr as usize] = true;
                    out.send(ptr, msg);
                }
            }
            for (vid, color) in std::mem::take(&mut st.relay2) {
                if degree > 0 {
                    let p = rng.gen_range(0..degree);
                    if !st.used[p] {
                        st.used[p] = true;
                        out.send(p as Port, LpMsg::Gossip2 { v: vid, color });
                    }
                }
            }
            while !st.gossip_queue.is_empty() && degree > 0 {
                let p = rng.gen_range(0..degree);
                if st.used[p] {
                    break;
                }
                let (vid, color) = st.gossip_queue.pop().expect("nonempty");
                st.used[p] = true;
                out.send(p as Port, LpMsg::Gossip { v: vid, color });
            }
            return Status::Running;
        }
        // ======== Step 6 + 7: reports, then the exactness pass.
        if r == b_gossip {
            // Build the report queue once.
            let handled = std::mem::take(&mut st.handled);
            for ((_vid, i), (port, mut heard)) in handled {
                heard.sort_unstable();
                heard.dedup();
                let missing: Vec<u32> = self
                    .block_colors(i)
                    .filter(|c| heard.binary_search(c).is_err())
                    .collect();
                st.report_queue.push((port, i, missing, false));
            }
            st.report_queue.sort_by_key(|&(p, i, _, _)| (p, i));
        }
        st.used.clear();
        st.used.resize(degree, false);
        // Leftover capture relays drain here too (late arrivals).
        let captures = std::mem::take(&mut st.capture_queue);
        for (ptr, msg) in captures {
            if st.used[ptr as usize] {
                st.capture_queue.push((ptr, msg));
            } else {
                st.used[ptr as usize] = true;
                out.send(ptr, msg);
            }
        }
        // Reports: one batch per port per round, End after the last batch.
        // Entries stay in place; each send drains a batch-sized chunk off
        // the front of its `missing` list (no per-round re-allocation).
        let mut idx = 0;
        while idx < st.report_queue.len() {
            let entry = &mut st.report_queue[idx];
            let (port, i) = (entry.0, entry.1);
            if st.used[port as usize] {
                idx += 1;
                continue;
            }
            st.used[port as usize] = true;
            if entry.3 {
                out.send(port, LpMsg::ReportEnd { i });
                st.report_queue.remove(idx);
                continue;
            }
            let take = self.batch.min(entry.2.len());
            let chunk = ColorBatch::from_slice(&entry.2[..take]);
            entry.2.drain(..take);
            if entry.2.is_empty() {
                entry.3 = true;
            }
            out.send(port, LpMsg::Report { i, missing: chunk });
            idx += 1;
        }

        // Own step-7 pass.
        let reports_expected = if live && degree > 0 { self.z_blocks } else { 0 };
        if st.pass == Pass::NotStarted && st.reports_seen >= reports_expected {
            if live {
                let mut t = std::mem::take(&mut st.t_candidates);
                if degree == 0 {
                    // No neighbors at all: everything is free.
                    t = (0..self.palette).collect();
                }
                t.sort_unstable();
                t.dedup();
                t.retain(|&c| c != st.color && !st.nbr_colors.contains(&c));
                st.t_v_size = t.len();
                st.t7_send = t.clone();
                st.t_candidates = t;
            }
            st.pass = Pass::SendingBatches;
        }
        if st.pass == Pass::SendingBatches && (0..degree).all(|p| !st.used[p]) {
            if st.t7_send.is_empty() {
                st.pass = Pass::SendingEnd;
            } else {
                let take = self.batch.min(st.t7_send.len());
                let batch = ColorBatch::from_slice(&st.t7_send[..take]);
                st.t7_send.drain(..take);
                for p in 0..degree as Port {
                    st.used[p as usize] = true;
                    out.send(p, LpMsg::TQuery(batch.clone()));
                }
            }
        }
        if st.pass == Pass::SendingEnd && (0..degree).all(|p| !st.used[p]) {
            for p in 0..degree as Port {
                st.used[p as usize] = true;
                out.send(p, LpMsg::TQueryEnd);
            }
            st.pass = Pass::AwaitingReplies;
        }
        // Serve other nodes' passes.
        #[allow(clippy::needless_range_loop)] // `p` indexes three parallel per-port arrays
        for p in 0..degree {
            if st.used[p] {
                continue;
            }
            if !st.t7_reply_queues[p].is_empty() {
                let take = self.batch.min(st.t7_reply_queues[p].len());
                let batch = ColorBatch::from_slice(&st.t7_reply_queues[p][..take]);
                st.t7_reply_queues[p].drain(..take);
                st.used[p] = true;
                out.send(p as Port, LpMsg::TReply(batch));
            } else if st.t7_pending_end[p] {
                st.used[p] = true;
                out.send(p as Port, LpMsg::TReplyEnd);
                st.t7_pending_end[p] = false;
            }
        }
        // Completion.
        if st.pass == Pass::AwaitingReplies && (0..degree).all(|p| st.t7_reply_end[p]) {
            if live {
                let mut used_colors = std::mem::take(&mut st.t7_used);
                used_colors.sort_unstable();
                used_colors.dedup();
                st.free_palette = st
                    .t_candidates
                    .iter()
                    .copied()
                    .filter(|c| used_colors.binary_search(c).is_err())
                    .collect();
            }
            st.pass = Pass::Complete;
        }
        let all_served =
            (0..degree).all(|p| st.t7_reply_queues[p].is_empty() && !st.t7_pending_end[p]);
        if st.pass == Pass::Complete
            && all_served
            && st.report_queue.is_empty()
            && st.capture_queue.is_empty()
        {
            Status::Done
        } else {
            Status::Running
        }
    }

    fn next_wake(&self, _st: &LpState, _ctx: &NodeCtx, status: Status) -> Wake {
        // A `Done` node has finished its own pass and drained every relay
        // queue; all remaining duties (list relay, step-7 replies, gossip)
        // begin with an arrival, and the `Done` vote is stable under
        // empty-inbox steps. Anything short of `Done` keeps local work
        // (window schedules, queue draining) that is not message-driven.
        if status == Status::Done {
            Wake::Message
        } else {
            Wake::Next
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::similarity::ExactSimilarity;
    use crate::rand::trials::{self, RandomTrials};
    use congest::SimConfig;
    use graphs::gen;

    fn run_lp(g: &graphs::Graph, warmup: u64, seed: u64) -> (Vec<LpState>, congest::Metrics, u32) {
        let cfg = SimConfig::seeded(seed);
        let d = g.max_degree();
        let palette = ((d * d).min(g.n().saturating_sub(1)) + 1) as u32;
        let warm = RandomTrials::new(palette, warmup);
        let wstates = congest::run(g, &warm, &cfg).unwrap().states;
        let sim_proto = ExactSimilarity::new(cfg.bandwidth_bits(g.n()));
        let sim = std::sync::Arc::new(
            congest::run(g, &sim_proto, &cfg)
                .unwrap()
                .states
                .into_iter()
                .map(|s| s.knowledge)
                .collect(),
        );
        let lp = LearnPalette::new(
            &Params::practical(),
            g,
            palette,
            cfg.bandwidth_bits(g.n()),
            trials::knowledge(&wstates),
            sim,
        );
        let res = congest::run(g, &lp, &cfg.clone().with_max_rounds(100_000)).unwrap();
        (res.states, res.metrics, palette)
    }

    /// The headline property: for every live node, `free_palette` is
    /// **exactly** the set of colors unused within distance 2.
    #[test]
    fn learned_palette_is_exact() {
        for (g, seed) in [
            (gen::star(10), 1u64),
            (gen::clique_ring(3, 7), 2),
            (gen::gnp_capped(80, 0.1, 6, 3), 3),
        ] {
            let view = graphs::D2View::build(&g);
            let (states, metrics, palette) = run_lp(&g, 2, seed);
            let colors: Vec<u32> = states.iter().map(|s| s.color).collect();
            for v in 0..g.n() as u32 {
                if colors[v as usize] != UNCOLORED {
                    continue;
                }
                let truly_free: Vec<u32> = (0..palette)
                    .filter(|&c| {
                        view.d2_neighbors(v)
                            .iter()
                            .all(|&u| colors[u as usize] != c)
                    })
                    .collect();
                assert_eq!(
                    states[v as usize].free_palette, truly_free,
                    "node {v}: learned palette differs from ground truth"
                );
            }
            assert!(metrics.is_congest_compliant());
        }
    }

    /// Live-neighbor discovery (step 2) must be exact.
    #[test]
    fn live_d2_lists_are_exact() {
        let g = gen::grid(5, 5);
        let view = graphs::D2View::build(&g);
        let cfg = SimConfig::seeded(9);
        let (states, _, _) = run_lp(&g, 1, 9);
        let idents = congest::assigned_idents(&g, &cfg);
        let colors: Vec<u32> = states.iter().map(|s| s.color).collect();
        for v in 0..g.n() as u32 {
            let mut expect: Vec<u64> = view
                .d2_neighbors(v)
                .iter()
                .copied()
                .filter(|&u| colors[u as usize] == UNCOLORED)
                .map(|u| idents[u as usize])
                .collect();
            expect.sort_unstable();
            assert_eq!(states[v as usize].live_d2, expect, "node {v} live list");
        }
    }

    /// With everyone colored, the protocol still terminates cleanly.
    #[test]
    fn no_live_nodes_terminates() {
        let g = gen::path(6);
        let (states, _, _) = run_lp(&g, 60, 4);
        assert!(states.iter().all(|s| s.color != UNCOLORED));
    }

    /// `LpMsg` list payloads are bits- and contents-identical across the
    /// inline/spilled representations, straddling the cap.
    #[test]
    fn lp_list_payload_bits_are_representation_invariant() {
        use congest::{BitCost, Message, SmallIds};
        for len in [0usize, 1, 31, 32, 33, 40] {
            let colors: Vec<u32> = (0..len as u32).map(|i| i * 13 + 1).collect();
            let inline_or_not = LpMsg::TQuery(ColorBatch::from_slice(&colors));
            let spilled = LpMsg::TQuery(SmallIds::Spilled(colors.clone()));
            assert_eq!(inline_or_not, spilled);
            let expected = BitCost::tag(15)
                + 8
                + colors
                    .iter()
                    .map(|&c| BitCost::uint(u64::from(c)))
                    .sum::<u64>();
            assert_eq!(inline_or_not.bits(), expected, "len {len}");
            assert_eq!(spilled.bits(), expected, "spilled len {len}");

            let ids: Vec<u64> = (0..len as u64).map(|i| i * 7 + 3).collect();
            let a = LpMsg::LiveList(IdBatch::from_slice(&ids));
            let b = LpMsg::LiveList(SmallIds::Spilled(ids.clone()));
            assert_eq!(a, b);
            assert_eq!(a.bits(), b.bits(), "LiveList len {len}");
        }
    }

    /// Isolated live node: the whole palette is free.
    #[test]
    fn isolated_node_gets_full_palette() {
        let g = gen::empty(3);
        let (states, _, palette) = run_lp(&g, 0, 5);
        for s in &states {
            if s.color == UNCOLORED {
                assert_eq!(s.free_palette.len(), palette as usize);
            }
        }
    }
}
