//! Top-level randomized drivers: `d2-Color` (Corollary 2.1) and
//! `Improved-d2-Color` (Theorem 1.1).
//!
//! ```text
//! 0. if ∆² < c₂ log n:  deterministic algorithm (Theorem 1.2), halt
//! 1. form similarity graphs H, Ĥ
//! 2. c₀ log n rounds of uniform random trials
//! 3. for (τ = c₁∆²; τ > c₂ log n; τ /= 2):  Reduce(2τ, τ)
//! 4. basic:    Reduce(c₂ log n, 1)
//!    improved: LearnPalette(); FinishColoring()
//! ```
//!
//! At laptop scale the w.h.p. guarantees of the randomized phases do not
//! always fire; the drivers therefore end with a completion backstop
//! (`FinishColoring` in the improved variant is already one; the basic
//! variant appends palette-wide random trials). Backstop rounds are
//! reported as their own phase so experiments can separate them.

use super::finish::{self, FinishColoring};
use super::learn_palette::LearnPalette;
use super::reduce::{self, Reduce};
use super::similarity::{ExactSimilarity, SampledSimilarity, SimilarityKnowledge};
use super::trials::{self, RandomTrials};
use crate::det::{small, Scope};
use crate::{ColoringOutcome, Driver, Params, UNCOLORED};
use congest::{SimConfig, SimError};
use graphs::Graph;

/// Which final phase to run after the `Reduce` cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Corollary 2.1: `Reduce(c₂ log n, 1)` — `O(log³ n)` rounds.
    Basic,
    /// Theorem 1.1: `LearnPalette` + `FinishColoring` —
    /// `O(log ∆ · log n)` rounds.
    Improved,
}

/// Runs the basic randomized algorithm (Corollary 2.1).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn basic(g: &Graph, params: &Params, cfg: &SimConfig) -> Result<ColoringOutcome, SimError> {
    run(g, params, cfg, Variant::Basic)
}

/// Runs the improved randomized algorithm (Theorem 1.1).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn improved(g: &Graph, params: &Params, cfg: &SimConfig) -> Result<ColoringOutcome, SimError> {
    run(g, params, cfg, Variant::Improved)
}

/// Shared driver.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(
    g: &Graph,
    params: &Params,
    cfg: &SimConfig,
    variant: Variant,
) -> Result<ColoringOutcome, SimError> {
    let n = g.n();
    if n == 0 {
        return Ok(Driver::new(g, cfg.clone()).finish(Vec::new()));
    }
    let d = g.max_degree();
    let dc = (d * d).min(n - 1);
    let palette = dc as u32 + 1;
    let mut driver = Driver::new(g, cfg.clone());

    // Step 0: low-degree graphs go deterministic.
    if (dc as f64) < params.c2_log_n(n) {
        let scope = Scope::full_d2(g);
        let colors = small::pipeline(&mut driver, &scope)?;
        return Ok(driver.finish(colors));
    }

    // Step 2 (initial random trials) — run before similarity, matching
    // Improved-d2-Color's ordering; both orders are valid for d2-Color.
    let cycles = params.initial_trials(n);
    let st = driver.run_phase(
        format!("initial-trials(x{cycles})"),
        &RandomTrials::new(palette, cycles),
    )?;
    let mut know = trials::knowledge(&st);
    // Knowledge vectors feed subsequent protocol constructors (and the
    // vacuous-phase checkpoints below), which read *all* rows; under the
    // netplane each shard only stepped its own nodes, so every
    // states-derived vector is re-authorized across shards (no-op
    // in-process). The synced rows also make the checkpoints globally
    // correct in every shard without a separate vote.
    congest::netplane::sync_rows(&mut know);

    // Vacuous-phase skip: every later phase exists to color *live* nodes
    // (similarity graphs are only ever queried by Reduce / LearnPalette on
    // behalf of live nodes), so when a checkpoint finds none, the driver
    // returns immediately instead of stepping the remaining phases'
    // worst-case round schedules through the simulator. A distributed
    // implementation detects the same condition with an O(diameter)
    // termination convergecast; on sparse benchmark workloads the skip
    // removes thousands of structurally empty rounds (the trials phase
    // alone finishes `gnp_capped` graphs at ∆ = 16 w.h.p.).
    let all_colored = |know: &[(u32, Vec<u32>)]| know.iter().all(|(c, _)| *c != UNCOLORED);
    if all_colored(&know) {
        return Ok(driver.finish(know.into_iter().map(|(c, _)| c).collect()));
    }

    // Step 1: similarity graphs. The knowledge is immutable from here on
    // and every later phase reads it, so it is Arc-shared across the
    // whole cascade instead of cloned per `Reduce` call.
    let budget = cfg.bandwidth_bits(n);
    let mut sim: Vec<SimilarityKnowledge> = if dc <= params.exact_similarity_threshold {
        let proto = ExactSimilarity::new(budget).with_period(params.list_sync_period);
        driver
            .run_phase("similarity(exact)", &proto)?
            .into_iter()
            .map(|s| s.knowledge)
            .collect()
    } else {
        let p = params.sample_prob(n, dc);
        let proto = SampledSimilarity::new(p, dc, budget).with_period(params.list_sync_period);
        driver
            .run_phase(format!("similarity(sampled p={p:.3})"), &proto)?
            .into_iter()
            .map(|s| s.knowledge)
            .collect()
    };
    congest::netplane::sync_rows(&mut sim);
    let sim = std::sync::Arc::new(sim);

    // Step 3: the Reduce cascade.
    let c2ln = params.c2_log_n(n);
    let mut tau = params.c1_leeway_frac * dc as f64;
    while tau > c2ln {
        let proto = Reduce::new(params, n, palette, 2.0 * tau, tau, know, sim.clone());
        let st = driver.run_phase(format!("reduce({:.0},{:.0})", 2.0 * tau, tau), &proto)?;
        know = reduce::knowledge(&st);
        congest::netplane::sync_rows(&mut know);
        tau /= 2.0;
        if all_colored(&know) {
            return Ok(driver.finish(know.into_iter().map(|(c, _)| c).collect()));
        }
    }

    // Step 4: final phase.
    match variant {
        Variant::Basic => {
            let phi = c2ln.max(2.0);
            let proto = Reduce::new(params, n, palette, phi, 1.0, know, sim);
            let st = driver.run_phase(format!("reduce({phi:.0},1)"), &proto)?;
            know = reduce::knowledge(&st);
            congest::netplane::sync_rows(&mut know);
            if know.iter().any(|(c, _)| *c == UNCOLORED) {
                let proto = RandomTrials::to_completion(palette).resuming(know);
                let st = driver.run_phase("backstop-trials", &proto)?;
                know = trials::knowledge(&st);
                congest::netplane::sync_rows(&mut know);
            }
        }
        Variant::Improved => {
            let lp = LearnPalette::new(params, g, palette, budget, know.clone(), sim);
            let st = driver.run_phase("learn-palette", &lp)?;
            let mut free: Vec<Vec<u32>> = st.iter().map(|s| s.free_palette.clone()).collect();
            congest::netplane::sync_rows(&mut free);
            let fin = FinishColoring::new(palette, know, free);
            let st = driver.run_phase("finish-coloring", &fin)?;
            know = finish::knowledge(&st);
            congest::netplane::sync_rows(&mut know);
        }
    }
    Ok(driver.finish(know.into_iter().map(|(c, _)| c).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{gen, verify};

    fn check(g: &Graph, variant: Variant, seed: u64) -> ColoringOutcome {
        let out = run(g, &Params::practical(), &SimConfig::seeded(seed), variant).unwrap();
        assert!(
            verify::is_valid_d2_coloring(g, &out.colors),
            "{variant:?} invalid on {g:?}"
        );
        let d = g.max_degree();
        let bound = (d * d).min(g.n().saturating_sub(1)) + 1;
        assert!(
            out.palette_bound() <= bound,
            "{variant:?} palette {} > ∆²+1 = {bound} on {g:?}",
            out.palette_bound()
        );
        assert!(out.metrics.is_congest_compliant());
        out
    }

    #[test]
    fn improved_on_random_graphs() {
        for (n, p, cap, seed) in [(120, 0.08, 5, 1), (200, 0.05, 6, 2)] {
            let g = gen::gnp_capped(n, p, cap, seed);
            check(&g, Variant::Improved, seed);
        }
    }

    #[test]
    fn basic_on_random_graph() {
        let g = gen::gnp_capped(150, 0.06, 5, 3);
        check(&g, Variant::Basic, 3);
    }

    #[test]
    fn improved_on_dense_graphs() {
        check(&gen::star(12), Variant::Improved, 4);
        check(&gen::clique_ring(3, 8), Variant::Improved, 5);
        check(&gen::clique(14), Variant::Improved, 6);
    }

    #[test]
    fn small_degree_falls_back_to_deterministic() {
        let g = gen::cycle(30); // ∆² = 4 < c₂ log n
        let out = check(&g, Variant::Improved, 7);
        // ∆² = 16 < c₂ log n → deterministic path: phases from Thm 1.2.
        assert!(out.phases.iter().any(|p| p.name.starts_with("loc-iter")));
    }

    #[test]
    fn degenerate_graphs() {
        check(&gen::empty(4), Variant::Improved, 1);
        check(&gen::path(2), Variant::Basic, 2);
        let g = gen::empty(0);
        let out = run(
            &g,
            &Params::practical(),
            &SimConfig::seeded(1),
            Variant::Improved,
        )
        .unwrap();
        assert!(out.colors.is_empty());
    }

    #[test]
    fn seeds_vary_but_stay_valid() {
        let g = gen::gnp_capped(100, 0.1, 6, 9);
        for seed in [11, 22, 33] {
            check(&g, Variant::Improved, seed);
        }
    }
}
